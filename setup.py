"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e . --no-use-pep517`` works on offline machines
that lack the ``wheel`` package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
