"""Counters, gauges and fixed-bucket histograms behind one registry.

The registry is the *numeric* half of the telemetry subsystem (spans are the
other, see :mod:`repro.telemetry.trace`): instrumented sites record how often
something happened (`store.hit`), a current level (`executor.pool_size`) or a
distribution (`utility.eval_seconds`), and the registry folds those into
constant-size state — a histogram is a fixed bucket vector plus running
count/sum/min/max, never a sample list, so a million observations cost the
same memory as ten.

Quantiles (p50/p90/p99) are estimated from the bucket counts by linear
interpolation inside the containing bucket, clamped to the observed min/max.
That is the standard fixed-bucket trade: cheap, mergeable across processes,
and accurate to bucket resolution — good enough for "is p99 snapshot latency
under a second", which is what the ROADMAP service PR needs to measure.

Determinism contract: nothing in this module may feed back into computed
values, store keys or seeds.  Metrics are *observations about* a run, written
to the run journal; the valuation pipeline never reads them back.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: default bucket upper bounds for duration metrics, in seconds (100 µs .. 60 s)
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: default bucket upper bounds for cardinalities (batch sizes, counts)
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)

#: default bucket upper bounds for byte quantities (64 B .. 256 MiB)
BYTES_BUCKETS: Tuple[float, ...] = tuple(float(64 * 4**k) for k in range(12))


class Counter:
    """Monotonically increasing count (thread-safe via the registry lock)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, payload: dict) -> None:
        self.value += float(payload.get("value", 0.0))


class Gauge:
    """Last-write-wins level (pool sizes, queue depths, RSS)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, payload: dict) -> None:
        # Gauges have no cross-process ordering; keep the larger level, which
        # is the conservative answer for capacity-style gauges.
        self.value = max(self.value, float(payload.get("value", 0.0)))


class Histogram:
    """Fixed-bucket distribution with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds in increasing order; observations
    above the last bound land in an implicit overflow bucket.  Bucket layout
    is part of a histogram's identity — merging or re-registering the same
    name with different buckets is a programming error and raises.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = SECONDS_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(float(b) for b in buckets):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets!r}")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket vectors are short (~18 entries) and the scan is
        # branch-predictable; bisect would allocate nothing either but wins
        # nothing at this size.
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q < 1``) from the buckets.

        Linear interpolation within the containing bucket, clamped to the
        observed min/max so tiny samples never report a bound the data
        never reached.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {q}")
        if self.count == 0 or self.min is None or self.max is None:
            return None
        rank = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[index - 1] if index > 0 else self.min
                upper = (
                    self.buckets[index] if index < len(self.buckets) else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def summary(self) -> dict:
        """Compact human/JSON-facing digest: count, sum, min/max, p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: dict) -> None:
        if list(payload.get("buckets", [])) != list(self.buckets):
            raise ValueError(
                f"histogram {self.name!r} bucket layout mismatch on merge"
            )
        self.counts = [a + b for a, b in zip(self.counts, payload["counts"])]
        self.count += int(payload.get("count", 0))
        self.sum += float(payload.get("sum", 0.0))
        for attribute, pick in (("min", min), ("max", max)):
            theirs = payload.get(attribute)
            if theirs is None:
                continue
            ours = getattr(self, attribute)
            setattr(self, attribute, theirs if ours is None else pick(ours, theirs))


Metric = Union[Counter, Gauge, Histogram]

_METRIC_KINDS: Dict[str, type] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Thread-safe name → metric map with get-or-create accessors.

    One registry per :class:`~repro.telemetry.Telemetry` handle.  Accessors
    are idempotent — ``registry.counter("store.hit")`` returns the same
    object every call — but re-registering a name as a different kind (or a
    histogram with different buckets) raises: silent kind drift would
    corrupt every downstream summary.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float] = SECONDS_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a histogram"
                )
            elif metric.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} re-registered with different buckets"
                )
            return metric

    def _get_or_create(self, name: str, kind: type) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a {kind.kind}"  # type: ignore[attr-defined]
                )
            return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # ------------------------------------------------------------------ #
    # Snapshots, deltas, merging
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Full JSON-safe state (the journal ``metrics`` record payload)."""
        with self._lock:
            return {
                name: self._metrics[name].to_dict() for name in sorted(self._metrics)
            }

    def summaries(self) -> dict:
        """Human-facing digest: counters/gauges as numbers, histograms summarised."""
        with self._lock:
            digest = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, Histogram):
                    digest[name] = metric.summary()
                else:
                    digest[name] = metric.value
            return digest

    def merge(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` payload (e.g. from a worker journal) in."""
        for name in sorted(payload):
            state = payload[name]
            kind = state.get("kind")
            cls = _METRIC_KINDS.get(kind)
            if cls is None:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            if cls is Histogram:
                metric = self.histogram(name, state["buckets"])
            elif cls is Gauge:
                metric = self.gauge(name)
            else:
                metric = self.counter(name)
            with self._lock:
                metric.merge(state)

    def delta_since(self, before: dict) -> dict:
        """Scalar changes since a :meth:`to_dict` snapshot, zero-deltas elided.

        Counters and histogram count/sum report their increase; gauges report
        their current level.  The result is flat (name → number or small
        dict), which is what per-cell manifest blocks and ``--json-stream``
        events embed.
        """
        delta: dict = {}
        for name, state in self.to_dict().items():
            previous = before.get(name, {})
            if state["kind"] == "histogram":
                count = state["count"] - previous.get("count", 0)
                if count:
                    delta[name] = {
                        "count": count,
                        "sum": state["sum"] - previous.get("sum", 0.0),
                    }
            elif state["kind"] == "gauge":
                if state["value"] != previous.get("value"):
                    delta[name] = state["value"]
            else:
                change = state["value"] - previous.get("value", 0.0)
                if change:
                    delta[name] = change
        return delta


def registry_from_dict(payload: dict) -> MetricsRegistry:
    """Rebuild a registry from a journal ``metrics`` record payload."""
    registry = MetricsRegistry()
    registry.merge(payload)
    return registry


def prometheus_text(registry_state: dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.to_dict` payload as Prometheus text.

    Metric names map ``store.hit`` → ``repro_store_hit``; histograms emit the
    standard ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
    labels.  This is an export format for scraping finished/live run
    journals — no client library involved.
    """
    lines: List[str] = []
    for name in sorted(registry_state):
        state = registry_state[name]
        flat = f"{prefix}_{name.replace('.', '_').replace('-', '_')}"
        kind = state["kind"]
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {flat} {kind}")
            lines.append(f"{flat} {_format_number(state['value'])}")
            continue
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, count in zip(state["buckets"], state["counts"]):
            cumulative += count
            lines.append(f'{flat}_bucket{{le="{_format_number(bound)}"}} {cumulative}')
        cumulative += state["counts"][-1]
        lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{flat}_sum {_format_number(state['sum'])}")
        lines.append(f"{flat}_count {state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_number(value: Union[int, float]) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "prometheus_text",
    "registry_from_dict",
]
