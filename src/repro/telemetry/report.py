"""Turn a run journal back into span trees, critical paths and stat tables.

Everything here is read-side: the inputs are the records
:func:`repro.telemetry.journal.read_journal` returns, the outputs are plain
data structures (:class:`SpanNode` trees, metric summary dicts) and rendered
text for the ``repro trace`` / ``repro stats`` CLI verbs.  Nothing in this
module runs during a valuation — it cannot perturb one.

Journals may contain spans from several processes (the process executor
backend) whose records interleave arbitrarily; reconstruction is therefore
order-insensitive: spans link to parents by id, spans whose parent never
finished (crash) or lives in a lost torn line become roots, and siblings sort
by wall-clock start so the tree reads in the order things happened.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.metrics import MetricsRegistry, registry_from_dict


class SpanNode:
    """One reconstructed span with its children attached."""

    __slots__ = ("name", "span_id", "parent_id", "start", "duration", "status", "attrs", "children")

    def __init__(self, record: dict) -> None:
        self.name = str(record.get("name", "?"))
        self.span_id = str(record.get("span", ""))
        parent = record.get("parent")
        self.parent_id: Optional[str] = str(parent) if parent is not None else None
        self.start = float(record.get("start", 0.0))
        self.duration = float(record.get("dur_s", 0.0))
        self.status = str(record.get("status", "ok"))
        self.attrs = dict(record.get("attrs") or {})
        self.children: List["SpanNode"] = []

    @property
    def self_seconds(self) -> float:
        """Duration not accounted for by children (clamped at zero)."""
        return max(0.0, self.duration - sum(child.duration for child in self.children))


def build_span_tree(records: Sequence[dict]) -> List[SpanNode]:
    """Link span records into a forest of :class:`SpanNode` roots.

    Records whose parent id is absent from the journal (lost line, crashed
    parent, span emitted outside any enclosing span) become roots.  Children
    and roots are ordered by wall-clock start time, ties broken by span id so
    the layout is stable across re-renders.
    """
    nodes: Dict[str, SpanNode] = {}
    spans: List[SpanNode] = []
    for record in records:
        if record.get("event") != "span":
            continue
        node = SpanNode(record)
        spans.append(node)
        if node.span_id:
            nodes[node.span_id] = node
    roots: List[SpanNode] = []
    for node in spans:
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in spans:
        node.children.sort(key=lambda child: (child.start, child.span_id))
    roots.sort(key=lambda root: (root.start, root.span_id))
    return roots


def critical_path(roots: Sequence[SpanNode]) -> List[SpanNode]:
    """The chain of longest spans: heaviest root, then its heaviest child, down.

    This is the wall-clock critical path under the span model (children run
    within their parent): shaving time anywhere else cannot shorten the run
    by more than the slack between a node and its heaviest child.
    """
    if not roots:
        return []
    path: List[SpanNode] = []
    node: Optional[SpanNode] = max(roots, key=lambda root: root.duration)
    while node is not None:
        path.append(node)
        node = max(node.children, key=lambda child: child.duration) if node.children else None
    return path


def load_metrics(records: Sequence[dict]) -> MetricsRegistry:
    """Rebuild the metrics registry from a journal's ``metrics`` records.

    The run flushes its full cumulative registry (possibly several times —
    e.g. once per task cell and once at exit), so later flushes supersede
    earlier ones; the last complete record wins.
    """
    payload: Optional[dict] = None
    for record in records:
        if record.get("event") == "metrics" and isinstance(record.get("registry"), dict):
            payload = record["registry"]
    return registry_from_dict(payload) if payload is not None else MetricsRegistry()


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #

def format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 0.001:
        return f"{value * 1000:.1f}ms"
    return f"{value * 1e6:.0f}µs"


def _attr_text(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = ", ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  [{parts}]"


def render_trace(
    roots: Sequence[SpanNode],
    max_children: int = 12,
) -> str:
    """ASCII span tree plus the critical path, for ``repro trace``.

    Long sibling runs (hundreds of ``worker.eval`` spans) collapse after
    ``max_children`` into one ``… (+N more, total)`` line — the tree is for
    orientation; exhaustive numbers live in ``repro stats``.
    """
    lines: List[str] = []
    total = sum(root.duration for root in roots)
    lines.append(f"{len(roots)} root span(s), {format_seconds(total)} total")
    lines.append("")
    for root in roots:
        _render_node(root, "", True, lines, max_children)
    path = critical_path(roots)
    if path:
        lines.append("")
        lines.append("critical path:")
        for node in path:
            lines.append(
                f"  {format_seconds(node.duration):>9}  {node.name}"
                f"  (self {format_seconds(node.self_seconds)})"
            )
    return "\n".join(lines) + "\n"


def _render_node(
    node: SpanNode,
    indent: str,
    is_last: bool,
    lines: List[str],
    max_children: int,
) -> None:
    connector = "└─ " if is_last else "├─ "
    marker = "" if node.status == "ok" else f"  !{node.status}"
    lines.append(
        f"{indent}{connector}{node.name}  {format_seconds(node.duration)}"
        f"{marker}{_attr_text(node.attrs)}"
    )
    child_indent = indent + ("   " if is_last else "│  ")
    shown = node.children[:max_children]
    hidden = node.children[max_children:]
    for index, child in enumerate(shown):
        last = index == len(shown) - 1 and not hidden
        _render_node(child, child_indent, last, lines, max_children)
    if hidden:
        hidden_total = sum(child.duration for child in hidden)
        lines.append(
            f"{child_indent}└─ … (+{len(hidden)} more, {format_seconds(hidden_total)})"
        )


def _histogram_formatter(name: str):
    """Durations render as 1.2ms; sizes/bytes/counts render as plain numbers."""
    if name.endswith("seconds") or name.endswith("_s"):
        return format_seconds

    def plain(value: Optional[float]) -> str:
        if value is None:
            return "-"
        return f"{value:g}"

    return plain


def render_stats(registry: MetricsRegistry) -> str:
    """Aligned text table of metric summaries, for ``repro stats``."""
    summaries = registry.summaries()
    if not summaries:
        return "no metrics recorded\n"
    lines: List[str] = []
    scalar_width = max(
        [len(name) for name, value in summaries.items() if not isinstance(value, dict)],
        default=0,
    )
    hist_names = [name for name, value in summaries.items() if isinstance(value, dict)]
    for name in sorted(summaries):
        value = summaries[name]
        if isinstance(value, dict):
            continue
        rendered = f"{value:g}"
        lines.append(f"{name:<{scalar_width}}  {rendered}")
    if hist_names:
        if lines:
            lines.append("")
        width = max(len(name) for name in hist_names)
        header = (
            f"{'histogram':<{width}}  {'count':>8}  {'sum':>10}"
            f"  {'p50':>9}  {'p90':>9}  {'p99':>9}  {'max':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(hist_names):
            digest = summaries[name]
            fmt = _histogram_formatter(name)
            lines.append(
                f"{name:<{width}}  {digest['count']:>8}"
                f"  {fmt(digest['sum']):>10}"
                f"  {fmt(digest['p50']):>9}"
                f"  {fmt(digest['p90']):>9}"
                f"  {fmt(digest['p99']):>9}"
                f"  {fmt(digest['max']):>9}"
            )
    return "\n".join(lines) + "\n"


__all__ = [
    "SpanNode",
    "build_span_tree",
    "critical_path",
    "format_seconds",
    "load_metrics",
    "render_stats",
    "render_trace",
]
