"""Telemetry: structured tracing, metrics and run journals.

The subsystem has three layers:

* :mod:`repro.telemetry.metrics` — counters/gauges/fixed-bucket histograms
  behind a :class:`MetricsRegistry` (p50/p90/p99 summaries, Prometheus text
  export, cross-process merge);
* :mod:`repro.telemetry.trace` — ``with telemetry.span("oracle.batch"): …``
  nested spans with monotonic durations;
* :mod:`repro.telemetry.journal` — the process-safe JSONL sink under
  ``<run-dir>/telemetry/`` that both layers write to, readable back via
  :mod:`repro.telemetry.report` and the ``repro trace`` / ``repro stats``
  CLI verbs.

The single entry point is the :class:`Telemetry` handle, threaded
*explicitly* through constructors (``BatchUtilityOracle(…, telemetry=t)``) —
there is no ambient global, because an ambient registry is exactly the kind
of hidden state the repo's determinism gates exist to keep out of valuation
code.  Two invariants every instrumented site must preserve:

1. **Fingerprint neutrality.**  No telemetry value may influence a store
   key, a seed, an RNG draw, or an estimator payload.  Telemetry observes
   the run; the run never reads it back.  The CI telemetry smoke gate
   enforces this bitwise (same values, same store keys, telemetry on/off).
2. **Disabled means free.**  ``telemetry=None`` is the disabled form; call
   sites guard with ``if telemetry is not None`` so a disabled run executes
   zero extra attribute lookups on hot paths.  (A constructed-but-disabled
   handle also no-ops, for call sites that prefer unconditional calls.)
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from repro.telemetry.journal import (
    JOURNAL_NAME,
    TELEMETRY_DIR,
    RunJournal,
    journal_path,
    read_journal,
)
from repro.telemetry.metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    prometheus_text,
    registry_from_dict,
)
from repro.telemetry.trace import NULL_SPAN, Span, TracedEvaluator, Tracer, _NullSpan


class Telemetry:
    """The explicit handle instrumented components receive.

    Bundles a metrics registry, a tracer and (optionally) a journal.  Build
    one with :meth:`for_run_dir` for a real run (spans and metric flushes
    stream to ``<run-dir>/telemetry/journal.jsonl``) or :meth:`in_memory`
    for tests and library embedding (spans buffer on ``tracer.records``).
    """

    def __init__(
        self,
        journal: Optional[RunJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.journal = journal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(journal)

    @classmethod
    def for_run_dir(cls, run_dir: str) -> "Telemetry":
        """Journal-backed handle writing under ``<run_dir>/telemetry/``."""
        return cls(journal=RunJournal(journal_path(run_dir)))

    @classmethod
    def in_memory(cls) -> "Telemetry":
        """Journal-less handle; spans buffer on ``tracer.records``."""
        return cls(journal=None)

    # ------------------------------------------------------------------ #
    # Guarded convenience recorders
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: Any) -> Union[Span, _NullSpan]:
        """A traced section, or the shared no-op span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(
        self,
        name: str,
        value: Union[int, float],
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> None:
        if self.enabled:
            self.metrics.histogram(name, buckets).observe(value)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------ #
    # Snapshots and persistence
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Full registry state; pair with :meth:`delta_since` for live deltas."""
        return self.metrics.to_dict()

    def delta_since(self, before: dict) -> dict:
        return self.metrics.delta_since(before)

    def flush(self) -> None:
        """Write the cumulative registry to the journal (last record wins)."""
        if self.enabled and self.journal is not None:
            self.journal.write({"event": "metrics", "registry": self.metrics.to_dict()})

    def close(self) -> None:
        self.flush()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker-process support
    # ------------------------------------------------------------------ #
    def wrap_worker_evaluator(
        self, evaluator: Callable[[frozenset], float]
    ) -> Callable[[frozenset], float]:
        """Wrap an evaluator bound for worker processes in per-eval spans.

        Only meaningful with a journal (workers cannot reach an in-memory
        tracer); without one, or when disabled, the evaluator passes through
        untouched so the pickled payload stays identical to the
        no-telemetry case.
        """
        if not self.enabled or self.journal is None:
            return evaluator
        return TracedEvaluator(
            evaluator, RunJournal(self.journal.path), self.tracer.current_span_id()
        )


__all__ = [
    "BYTES_BUCKETS",
    "JOURNAL_NAME",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunJournal",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "Span",
    "TELEMETRY_DIR",
    "TracedEvaluator",
    "Tracer",
    "Telemetry",
    "journal_path",
    "prometheus_text",
    "read_journal",
    "registry_from_dict",
]
