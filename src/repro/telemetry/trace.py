"""Span-based tracing: nested timed sections emitted to the run journal.

A *span* is one named, timed section of work — ``oracle.batch``,
``executor.map``, ``pipeline.cell`` — with free-form attributes (batch sizes,
backend names, task labels).  Spans nest: a per-thread stack links each span
to its parent, so the journal reconstructs the run as a tree
(:mod:`repro.telemetry.report`).  Durations come from ``perf_counter`` (the
monotonic clock; wall-clock only stamps *when* a span started, for humans
reading journals, never for arithmetic).

Two clocks, two rules:

* ``dur_s`` is monotonic and is what every report aggregates;
* ``start`` is wall-clock telemetry under the documented RPR002 pragma —
  nothing derived from it may reach a fingerprint, seed or estimator payload.

:class:`TracedEvaluator` is the process-backend shim: it wraps a picklable
evaluator together with the journal (which pickles down to its path) so each
worker-process evaluation emits a ``worker.eval`` span into the *parent
run's* journal, parented under the batch span that dispatched it.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.journal import RunJournal


class Span:
    """One in-flight traced section; use via ``tracer.span(...)``."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_t0", "_start", "status")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: str,
        parent_id: Optional[str],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._t0 = 0.0
        self._start = 0.0
        self.status = "ok"

    def __enter__(self) -> "Span":
        self._start = time.time()  # repro: allow[RPR002] reason=span wall-clock timestamp is journal telemetry
        self._t0 = time.perf_counter()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error_type", getattr(exc_type, "__name__", str(exc_type)))
        self.tracer._pop(self)
        self.tracer._emit(self, duration)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (e.g. a fallback reason)."""
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """Shared no-op span: what a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans and emits their records to the journal.

    With no journal attached, finished spans accumulate in :attr:`records`
    (handy for tests and library embedding); with one attached, records
    stream straight to disk and the in-memory list stays empty.
    """

    def __init__(self, journal: Optional[RunJournal] = None) -> None:
        self.journal = journal
        self.records: List[dict] = []
        self._local = threading.local()
        # next() on a C-level iterator is atomic in CPython, so concurrent
        # span() calls get distinct sequence numbers without a lock; the
        # parent stack is thread-local and needs none either.
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a traced section: ``with tracer.span("oracle.batch", n=64): ...``"""
        sequence = next(self._ids)
        # The pid namespaces span ids across executor worker processes; it is
        # journal telemetry and never reaches fingerprints or seeds.
        pid = os.getpid()  # repro: allow[RPR002] reason=span-id namespacing across worker processes, telemetry-only
        span_id = f"{pid:x}.{sequence:x}"
        return Span(self, name, dict(attrs), span_id, self.current_span_id())

    def current_span_id(self) -> Optional[str]:
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1].span_id

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _emit(self, span: Span, duration: float) -> None:
        record = {
            "event": "span",
            "name": span.name,
            "span": span.span_id,
            "parent": span.parent_id,
            "start": span._start,
            "dur_s": duration,
            "status": span.status,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if self.journal is not None:
            self.journal.write(record)
        else:
            self.records.append(record)


class TracedEvaluator:
    """Picklable evaluator wrapper emitting per-evaluation worker spans.

    The process executor backend ships the evaluator to worker processes; a
    plain tracer (thread-local stacks, open file handles) cannot follow it,
    but the journal can — it pickles to its path.  Each call times one
    coalition evaluation and appends a ``worker.eval`` span to the parent
    run's journal, parented under ``parent_id`` (the dispatching batch span),
    so ``repro trace`` shows worker evaluations nested where they belong.
    """

    def __init__(
        self,
        evaluator: Callable[[frozenset], float],
        journal: RunJournal,
        parent_id: Optional[str] = None,
    ) -> None:
        self.evaluator = evaluator
        self.journal = journal
        self.parent_id = parent_id

    def __call__(self, coalition: frozenset) -> float:
        start = time.time()  # repro: allow[RPR002] reason=worker span wall-clock timestamp, journal telemetry
        t0 = time.perf_counter()
        status = "ok"
        try:
            return float(self.evaluator(coalition))
        except BaseException:
            status = "error"
            raise
        finally:
            duration = time.perf_counter() - t0
            pid = os.getpid()  # repro: allow[RPR002] reason=worker span pid tag, telemetry-only
            self.journal.write(
                {
                    "event": "span",
                    "name": "worker.eval",
                    "span": f"{pid:x}.w{id(self) & 0xffff:x}.{t0:.6f}",
                    "parent": self.parent_id,
                    "start": start,
                    "dur_s": duration,
                    "status": status,
                    "attrs": {"coalition_size": len(coalition), "pid": pid},
                }
            )
            # One evaluation is a whole FL training; re-opening the append
            # handle per call is free, and nothing owns this wrapper's copies
            # (worker processes, unpickled clones) long enough to close them.
            self.journal.close()


__all__ = ["NULL_SPAN", "Span", "TracedEvaluator", "Tracer"]
