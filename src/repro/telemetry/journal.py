"""The run journal: a process-safe JSONL sink under the run directory.

Every telemetry record of a run — spans, metric flushes, annotations — is one
JSON line in ``<run-dir>/telemetry/journal.jsonl``.  Writes are single
``O_APPEND`` appends of whole lines, the same atomicity argument the JSONL
utility store relies on (POSIX guarantees small appends interleave as whole
lines, never tear), so executor worker *processes* can append to the same
journal as the parent run: the journal object pickles down to its path and
re-opens its own handle lazily on first write in the worker — and re-opens
after a ``fork()`` as well (handle sharing across a fork would interleave
buffered partial lines).

Reading (:func:`read_journal`) tolerates corrupt lines — a crash mid-append
must never make a run's telemetry unreadable — and returns records in file
order, which for a single-process run is emission order.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, List, Optional

#: subdirectory of a run dir holding telemetry artifacts
TELEMETRY_DIR = "telemetry"

#: the journal file name inside :data:`TELEMETRY_DIR`
JOURNAL_NAME = "journal.jsonl"


def journal_path(run_dir: str) -> str:
    """Canonical journal location for a run directory."""
    return os.path.join(run_dir, TELEMETRY_DIR, JOURNAL_NAME)


class RunJournal:
    """Append-only JSONL record sink, safe across threads, forks and pickling.

    The journal is identified by its *path*; the open handle is an
    implementation detail that is dropped on pickle and recreated per
    process, so a journal captured inside a pickled evaluator (the process
    executor backend) writes to the same file as the parent.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[IO[str]] = None
        self._pid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def write(self, record: dict) -> None:
        """Append one record as a single JSON line (atomic via O_APPEND)."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        handle = self._ensure_handle()
        handle.write(line + "\n")
        handle.flush()

    def write_many(self, records: Iterable[dict]) -> None:
        for record in records:
            self.write(record)

    def _ensure_handle(self) -> IO[str]:
        # Journal lines record *when* things happened; nothing derived from
        # the pid ever reaches a fingerprint, seed or valuation payload.
        pid = os.getpid()  # repro: allow[RPR002] reason=fork detection for the append handle, telemetry-only
        if self._handle is None or self._pid != pid:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover - best-effort close
                    pass
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            self._pid = pid
        return self._handle

    # ------------------------------------------------------------------ #
    # Lifecycle / pickling
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
                self._pid = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._handle = None
        self._pid = None


def read_journal(path_or_run_dir: str) -> List[dict]:
    """Load a journal's records, skipping corrupt lines.

    Accepts either the journal file itself or a run directory (resolved via
    :func:`journal_path`).  Raises :class:`FileNotFoundError` when neither
    exists — an absent journal means the run executed with telemetry
    disabled, and callers (the ``repro trace``/``repro stats`` verbs) turn
    that into a helpful message.
    """
    path = path_or_run_dir
    if os.path.isdir(path):
        path = journal_path(path)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no telemetry journal at {path!r}; was the run executed with "
            "telemetry disabled (--no-telemetry)?"
        )
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn append; the record is lost, the run is not
            if isinstance(record, dict):
                records.append(record)
    return records


__all__ = ["JOURNAL_NAME", "RunJournal", "TELEMETRY_DIR", "journal_path", "read_journal"]
