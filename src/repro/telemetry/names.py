"""Well-known span and metric names emitted by instrumented subsystems.

One module instead of string literals scattered across call sites, so the
observability docs, the Prometheus exposition and the instrumented code
cannot drift apart.  Names follow ``<subsystem>.<measurement>``; histograms
carry their unit as the trailing path segment (``_seconds`` / ``_bytes``
after Prometheus mangling — see :func:`repro.telemetry.metrics.prometheus_text`).

Only the service names live here for now (the service was instrumented after
this module existed); older subsystems keep their literals, with this module
as the destination when they are next touched.  The catalog of *all* names is
``docs/observability.md``.
"""

from __future__ import annotations

# --------------------------------------------------------------------------- #
# Valuation service (repro serve — see repro.service and docs/service.md)
# --------------------------------------------------------------------------- #
#: span around one scheduler execution attempt of a job (a preempted job
#: opens a new span per attempt; attrs: job, tenant, algorithm, attempt)
SERVICE_JOB_SPAN = "service.job"

#: counter: jobs accepted by POST /v1/jobs (or ValuationService.submit)
SERVICE_JOBS_SUBMITTED = "service.jobs_submitted"
#: counter: jobs that reached the ``done`` state
SERVICE_JOBS_COMPLETED = "service.jobs_completed"
#: counter: jobs that reached the ``failed`` state
SERVICE_JOBS_FAILED = "service.jobs_failed"
#: counter: jobs cancelled by the client (queued or running)
SERVICE_JOBS_CANCELLED = "service.jobs_cancelled"
#: counter: graceful preemptions (a running job checkpointed and requeued
#: to make room for a higher-priority one)
SERVICE_PREEMPTIONS = "service.preemptions"
#: counter: jobs found mid-run at startup and requeued from their checkpoint
SERVICE_JOBS_RECOVERED = "service.jobs_recovered"
#: counter: HTTP requests served, any route or method
SERVICE_HTTP_REQUESTS = "service.http_requests"

#: gauge: jobs waiting in the queue (status ``queued``)
SERVICE_QUEUE_DEPTH = "service.queue_depth"
#: gauge: jobs currently executing on a scheduler worker
SERVICE_RUNNING = "service.running"

#: histogram (seconds): submit → first snapshot of a job's first attempt —
#: the service's p50/p99 first-result latency
SERVICE_FIRST_SNAPSHOT_SECONDS = "service.first_snapshot_seconds"
#: histogram (seconds): execution time of one job attempt
SERVICE_JOB_SECONDS = "service.job_seconds"
#: histogram (seconds): submit (or requeue) → claim wait per attempt
SERVICE_QUEUE_WAIT_SECONDS = "service.queue_wait_seconds"

__all__ = [
    "SERVICE_FIRST_SNAPSHOT_SECONDS",
    "SERVICE_HTTP_REQUESTS",
    "SERVICE_JOBS_CANCELLED",
    "SERVICE_JOBS_COMPLETED",
    "SERVICE_JOBS_FAILED",
    "SERVICE_JOBS_RECOVERED",
    "SERVICE_JOBS_SUBMITTED",
    "SERVICE_JOB_SECONDS",
    "SERVICE_JOB_SPAN",
    "SERVICE_PREEMPTIONS",
    "SERVICE_QUEUE_DEPTH",
    "SERVICE_QUEUE_WAIT_SECONDS",
    "SERVICE_RUNNING",
]
