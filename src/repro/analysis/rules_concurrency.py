"""Concurrency & backend-parity rules: picklability, locking, error swallowing.

These protect the guarantees of the parallel engine and the persistent store
(PRs 1-2, 4): every backend computes the same values, shared state is mutated
only under its lock, and corruption recovery never silently eats an error it
did not anticipate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

#: call/method names that hand a callable to an executor submission path
_SUBMISSION_FUNCS = frozenset({"evaluate_batch", "map_utilities", "submit"})

#: keyword arguments whose value crosses the process boundary (the evaluator
#: an executor pickles, the model factory a spec rebuilds in a worker)
_PICKLED_KEYWORDS = frozenset({"evaluator", "model_factory"})


@register_rule
class UnpicklableCallable(Rule):
    """RPR004 — callables crossing the process backend must be picklable.

    Lambdas and locally-defined functions cannot be pickled; handing one to an
    executor submission path, or storing one as a spec's ``model_factory`` /
    an oracle's ``evaluator``, works under the serial and thread backends and
    then breaks the moment ``--backend process`` is selected (the regression
    class fixed in the PR 4 review).  Use a module-level function or
    ``functools.partial`` — the round-trip contract is pinned by
    ``tests/test_picklability.py``.
    """

    code = "RPR004"
    name = "unpicklable-callable"
    summary = (
        "lambdas / local functions must not cross the process backend: use "
        "module-level functions or functools.partial "
        "(contract: tests/test_picklability.py)"
    )
    applies_in_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Visit each call exactly once, under its *innermost* enclosing
        # function scope — that scope's nested defs are the unpicklable ones.
        yield from self._check_scope(ctx, ctx.tree, local_defs=frozenset())

    def _check_scope(
        self, ctx: ModuleContext, scope: ast.AST, local_defs: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = frozenset(
                    stmt.name
                    for stmt in ast.walk(node)
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt is not node
                )
                yield from self._check_scope(ctx, node, nested)
                continue
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, local_defs)
            yield from self._check_scope(ctx, node, local_defs)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, local_defs: frozenset[str]
    ) -> Iterator[Finding]:
        func_name = None
        if isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        elif isinstance(node.func, ast.Name):
            func_name = node.func.id
        if func_name in _SUBMISSION_FUNCS:
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                yield from self._check_value(ctx, arg, local_defs, func_name)
            return  # keywords already covered; don't report the same value twice
        for keyword in node.keywords:
            if keyword.arg in _PICKLED_KEYWORDS:
                yield from self._check_value(
                    ctx, keyword.value, local_defs, f"{keyword.arg}="
                )

    def _check_value(
        self, ctx: ModuleContext, value: ast.AST, local_defs: frozenset[str], where: str
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx,
                value,
                f"lambda passed to {where}: the process backend must pickle "
                "this callable and lambdas cannot be pickled; use a "
                "module-level function or functools.partial "
                "(see tests/test_picklability.py)",
            )
        elif isinstance(value, ast.Name) and value.id in local_defs:
            yield self.finding(
                ctx,
                value,
                f"locally-defined function {value.id!r} passed to {where}: "
                "closures cannot be pickled by the process backend; hoist it "
                "to module level or use functools.partial "
                "(see tests/test_picklability.py)",
            )


def _mentions_lock(node: ast.AST) -> bool:
    """Whether an expression references something lock-like by name."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and "lock" in child.attr.lower():
            return True
        if isinstance(child, ast.Name) and "lock" in child.id.lower():
            return True
    return False


def _self_attribute_root(node: ast.AST) -> Optional[str]:
    """Name of the ``self.<attr>...`` chain a mutation target roots at."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


_LOCK_TRANSFER_MARKER = "must hold the lock"


@register_rule
class UnlockedSharedMutation(Rule):
    """RPR006 — lock-disciplined classes mutate shared state only under lock.

    A class that owns a lock (``self._lock`` or any lock-named attribute) has
    declared that its attributes are shared across threads; every write to
    ``self``-rooted state in its methods must then happen inside a
    ``with <lock>:`` block.  ``__init__``/``__post_init__`` run before the
    object is shared and are exempt, and a helper whose docstring states the
    convention "caller must hold the lock" transfers the obligation to its
    callers (the :class:`repro.utils.cache.UtilityCache` idiom).
    """

    code = "RPR006"
    name = "unlocked-shared-mutation"
    summary = (
        "classes owning a lock must mutate self-rooted state inside "
        "`with <lock>:` (or document 'caller must hold the lock')"
    )
    applies_in_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._owns_lock(node):
                yield from self._check_class(ctx, node)

    @staticmethod
    def _owns_lock(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) and "lock" in node.attr.lower():
                value = node.value
                if isinstance(value, ast.Name) and value.id == "self":
                    return True
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if "lock" in node.target.id.lower():
                    return True
        return False

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in {"__init__", "__post_init__"}:
                continue
            docstring = ast.get_docstring(method) or ""
            if _LOCK_TRANSFER_MARKER in docstring.lower():
                continue
            yield from self._walk_body(ctx, cls.name, method.body, locked=False)

    def _walk_body(
        self, ctx: ModuleContext, cls_name: str, body: list[ast.stmt], locked: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            inner_locked = locked
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if any(_mentions_lock(item.context_expr) for item in stmt.items):
                    inner_locked = True
            yield from self._check_statement(ctx, cls_name, stmt, locked)
            for field_name, value in ast.iter_fields(stmt):
                if field_name in {"body", "orelse", "finalbody"} and isinstance(
                    value, list
                ):
                    yield from self._walk_body(ctx, cls_name, value, inner_locked)
                elif field_name == "handlers" and isinstance(value, list):
                    for handler in value:
                        yield from self._walk_body(
                            ctx, cls_name, handler.body, inner_locked
                        )

    def _check_statement(
        self, ctx: ModuleContext, cls_name: str, stmt: ast.stmt, locked: bool
    ) -> Iterator[Finding]:
        if locked:
            return
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            attr = _self_attribute_root(target)
            if attr is None or "lock" in attr.lower():
                continue
            yield self.finding(
                ctx,
                target,
                f"{cls_name} owns a lock but mutates self.{attr} outside a "
                "`with <lock>:` block; either take the lock or document the "
                "helper with 'caller must hold the lock'",
            )


#: a swallowing handler must at least do one of these with the error
_LOG_CALL_NAMES = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical",
     "log", "print"}
)


@register_rule
class SwallowedBroadException(Rule):
    """RPR007 — recovery paths must not silently swallow broad exceptions.

    Corruption recovery in the store deliberately treats *anticipated* decode
    and I/O failures as cache misses — but only under narrow exception types
    (``OSError``, ``sqlite3.DatabaseError``, JSON/value errors).  A bare
    ``except:`` or ``except Exception:`` that neither re-raises nor reports
    converts every future bug (including ``KeyboardInterrupt`` for the bare
    form) into a silent wrong answer.
    """

    code = "RPR007"
    name = "swallowed-broad-exception"
    summary = (
        "bare/over-broad except blocks must re-raise or report; narrow the "
        "exception type in corruption-recovery paths"
    )
    applies_in_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and self._is_broad(node):
                if not self._reports_or_reraises(node):
                    label = (
                        "bare except:"
                        if node.type is None
                        else f"except {ast.unparse(node.type)}:"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"{label} neither re-raises nor reports; narrow it to "
                        "the anticipated exception types (corruption recovery "
                        "catches decode/IO errors, not everything) or log and "
                        "re-raise",
                    )

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        for node in types:
            name = node.attr if isinstance(node, ast.Attribute) else getattr(
                node, "id", None
            )
            if name in {"Exception", "BaseException"}:
                return True
        return False

    @staticmethod
    def _reports_or_reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else getattr(
                    func, "id", None
                )
                if name in _LOG_CALL_NAMES:
                    return True
        return False
