"""The checker driver: collect files, parse, run rules, suppress, report.

:func:`check_paths` is the library face of ``repro check``: it walks the
given files/directories, parses each Python module once, runs every selected
rule over the shared :class:`~repro.analysis.context.ModuleContext`, applies
pragma suppressions and the optional baseline, and returns a
:class:`CheckReport`.  Unparseable files are findings, not crashes — a gate
that dies on bad input is a gate that gets disabled.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

# The rule modules register themselves on import; keep these imports even
# though nothing references them by name.
from repro.analysis import (  # noqa: F401
    rules_concurrency,
    rules_determinism,
    rules_protocol,
)
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import META_CODE, Finding
from repro.analysis.pragmas import apply_suppressions, scan_pragmas
from repro.analysis.rules import RULES, Rule, resolve_selection

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_by_pragma: int = 0
    suppressed_by_baseline: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed_by_pragma": self.suppressed_by_pragma,
            "suppressed_by_baseline": self.suppressed_by_baseline,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                yield candidate


def _relpath(path: Path) -> str:
    """Posix-style path as reported in findings (relative to cwd if below it)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_file(path: Path, rules: Sequence[Rule]) -> tuple[list[Finding], int]:
    """Run the selected rules over one file; returns (findings, suppressed)."""
    relpath = _relpath(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=relpath,
                    line=int(error.lineno or 1),
                    col=int(error.offset or 1),
                    code=META_CODE,
                    message=f"file does not parse: {error.msg}",
                )
            ],
            0,
        )
    ctx = ModuleContext(path=path, relpath=relpath, source=source, tree=tree)
    pragmas, pragma_errors = scan_pragmas(relpath, source, set(RULES))
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    kept, suppressed = apply_suppressions(findings, pragmas)
    # Pragma errors are appended *after* suppression: a malformed pragma must
    # not be able to suppress the finding that reports it.
    kept.extend(pragma_errors)
    return sorted(kept), suppressed


def check_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
) -> CheckReport:
    """Check every Python file under ``paths`` and assemble the report."""
    rules = resolve_selection(select, ignore)
    report = CheckReport()
    for path in iter_python_files(paths):
        findings, suppressed = check_file(path, rules)
        report.findings.extend(findings)
        report.suppressed_by_pragma += suppressed
        report.files_checked += 1
    if baseline is not None:
        entries = load_baseline(baseline)
        report.findings, suppressed = apply_baseline(
            report.findings, entries, baseline
        )
        report.suppressed_by_baseline = suppressed
    report.findings.sort()
    return report
