"""Per-module context shared by every rule: source, AST, resolved imports.

The rules never guess what a name means from its spelling alone — ``np.random``
is only numpy's legacy RNG module if ``np`` was actually bound by
``import numpy as np``.  :class:`ImportMap` records what every imported local
name stands for, and :meth:`ImportMap.resolve` turns an attribute chain such
as ``np.random.default_rng`` back into its canonical dotted path
(``numpy.random.default_rng``).  Names bound by assignment or as parameters
resolve to ``None`` and rules skip them: the checker prefers silence over a
false positive it cannot prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: modules whose output *is* content identity: any ambient read here would
#: silently change fingerprints (see RPR002 and docs/static-analysis.md)
FINGERPRINT_MODULES = (
    "repro/store/fingerprint.py",
    "repro/experiments/specs.py",
    "repro/scenarios/scenario.py",
)


def dotted_parts(node: ast.AST) -> Optional[list[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; ``None`` if not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ImportMap:
    """Maps local names to the canonical dotted module path they were bound to."""

    def __init__(self, tree: ast.AST) -> None:
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.names[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds only the root name ``a``.
                        root = alias.name.split(".", 1)[0]
                        self.names[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of an expression, or ``None`` if unprovable."""
        parts = dotted_parts(node)
        if not parts:
            return None
        base = self.names.get(parts[0])
        if base is None:
            return None
        return ".".join([base, *parts[1:]])


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed source file."""

    path: Path
    relpath: str  # posix-style path as reported in findings
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)
    lines: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)
        self.lines = self.source.splitlines()

    @property
    def is_test(self) -> bool:
        """Whether this file is test code (rules may scope themselves out)."""
        parts = Path(self.relpath).parts
        return "tests" in parts or Path(self.relpath).name.startswith("test_")

    @property
    def is_fingerprint_module(self) -> bool:
        """Whether this module's output participates in content identity."""
        return self.relpath.endswith(FINGERPRINT_MODULES)

    def resolve(self, node: ast.AST) -> Optional[str]:
        return self.imports.resolve(node)
