"""Committed finding baselines with stale-entry detection.

A baseline lets ``repro check`` gate *new* findings while a known backlog is
being worked off: entries in the file suppress their matching findings.  Two
properties keep a baseline from rotting into a blanket waiver:

* an entry matches one finding occurrence at most — a second finding of the
  same code on another line is new and fails the gate;
* an entry whose finding no longer exists is **stale** and itself fails the
  gate (as a :data:`~repro.analysis.findings.META_CODE` finding), so the
  baseline can only ever shrink toward the committed goal of being empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import META_CODE, Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> list[Finding]:
    """Read a baseline file written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    return [Finding.from_dict(entry) for entry in payload.get("findings", [])]


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Persist the current findings as the new accepted baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Finding], baseline_path: Path
) -> tuple[list[Finding], int]:
    """Split findings into (kept + stale-entry findings, suppressed count).

    Matching is by :meth:`Finding.baseline_key` — (path, code, line) — and
    one entry consumes one finding.  Unconsumed entries become stale-baseline
    findings anchored at the baseline file itself.
    """
    budget: dict[tuple[str, str, int], int] = {}
    for entry in baseline:
        key = entry.baseline_key()
        budget[key] = budget.get(key, 0) + 1
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    for entry in baseline:
        key = entry.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            kept.append(
                Finding(
                    path=str(baseline_path),
                    line=1,
                    col=1,
                    code=META_CODE,
                    message=(
                        f"stale baseline entry {entry.path}:{entry.line} "
                        f"[{entry.code}]: the finding no longer fires; remove "
                        "the entry so the baseline keeps shrinking"
                    ),
                )
            )
    return kept, suppressed
