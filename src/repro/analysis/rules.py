"""Rule framework: base class, registry, selection.

A rule is one machine-checked repository contract.  Each has a stable
``RPR0xx`` code (used in output, pragmas, ``--select``/``--ignore`` and the
baseline file), a one-line summary shown by ``repro check --list-rules``, and
a :meth:`Rule.check` that walks one module's AST and yields findings.

Rules must be *provably right* before they speak: the conventions in
:mod:`repro.analysis.context` (resolve imports, skip what cannot be proven)
mean a finding is always an actual occurrence of the flagged pattern, never a
spelling coincidence.  Intentional occurrences are then suppressed explicitly
with a ``# repro: allow[...] reason=...`` pragma — visible, justified, and
checked for staleness — rather than by loosening the rule.
"""

from __future__ import annotations

import abc
import ast
from typing import Iterable, Iterator, Optional, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding


class Rule(abc.ABC):
    """One contract check over a single module."""

    #: stable RPR0xx identifier (pragmas, selection, baseline entries)
    code: str = "RPR999"

    #: short kebab-case name used in docs and ``--list-rules``
    name: str = "unnamed-rule"

    #: one-line description of the contract the rule protects
    summary: str = ""

    #: whether the rule also applies to test code; contract rules that only
    #: guard library invariants (fingerprint purity, executor picklability)
    #: stay out of tests, where e.g. lambdas fed to a serial backend are fine
    applies_in_tests: bool = True

    def applies_to(self, ctx: ModuleContext) -> bool:
        return self.applies_in_tests or not ctx.is_test

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in one module."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.relpath,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)) + 1,
            code=self.code,
            message=message,
        )


#: registry: code -> rule instance, populated by :func:`register_rule`
RULES: dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (one instance per code)."""
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULES[cls.code] = cls()
    return cls


def all_codes() -> list[str]:
    return sorted(RULES)


def resolve_selection(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> list[Rule]:
    """Resolve ``--select``/``--ignore`` code lists into rule instances."""
    selected = set(RULES) if select is None else {code.strip() for code in select}
    ignored = set() if ignore is None else {code.strip() for code in ignore}
    unknown = sorted((selected | ignored) - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {', '.join(unknown)}; known: {', '.join(all_codes())}"
        )
    return [RULES[code] for code in sorted(selected - ignored)]
