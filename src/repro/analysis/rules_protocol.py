"""Estimator-protocol rules: checkpoint completeness for anytime valuation.

Protects the PR 5 contract: an interrupted ``iter_run`` serialized through
:class:`repro.core.anytime.EstimatorState` and restored later finishes with
values bitwise-identical to an uninterrupted run.  That only holds if *all*
mutable estimation state lives in the checkpointable payload and all
randomness flows through the framework-managed generator (which
``iter_run`` serializes via ``capture_rng_state`` / ``restore_rng`` after
every chunk).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

_INCREMENTAL_METHODS = frozenset({"_incremental_init", "_incremental_step"})

#: generator constructors that would create RNG state invisible to the
#: checkpoint (iter_run only serializes the generator it passes in)
_RNG_CONSTRUCTORS = frozenset({"RandomState", "default_rng", "spawn_rng", "fixed_rng"})


@register_rule
class CheckpointIncomplete(Rule):
    """RPR005 — incremental estimators must keep checkpoints lossless.

    Three checks on any class implementing the incremental protocol
    (``_incremental_step``):

    * overriding ``_incremental_step`` without ``_incremental_init`` leaves
      the payload unprepared — a restored checkpoint would re-derive initial
      state from a generator that has already advanced;
    * constructing a fresh generator inside the protocol methods creates RNG
      state the checkpoint cannot see; consume the framework-managed ``rng``
      parameter, which ``iter_run`` round-trips via
      ``capture_rng_state``/``restore_rng`` after every chunk;
    * storing the live generator object in the payload would not survive
      JSON serialisation — checkpoint its *state*, never the object.
    """

    code = "RPR005"
    name = "checkpoint-incomplete"
    summary = (
        "incremental estimators must define _incremental_init alongside "
        "_incremental_step, use the framework rng (serialized via "
        "capture_rng_state/restore_rng), and never store live generators "
        "in the payload"
    )
    applies_in_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "_incremental_step" not in methods:
            return
        if "_incremental_init" not in methods:
            yield self.finding(
                ctx,
                methods["_incremental_step"],
                f"{cls.name} overrides _incremental_step without "
                "_incremental_init: the checkpointable payload is never "
                "prepared, so interrupt->resume cannot reproduce the "
                "uninterrupted run (see repro.core.base.ValuationAlgorithm)",
            )
        for name in sorted(_INCREMENTAL_METHODS & set(methods)):
            yield from self._check_method(ctx, cls.name, methods[name])

    def _check_method(
        self, ctx: ModuleContext, cls_name: str, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else getattr(
                    func, "id", None
                )
                if name in _RNG_CONSTRUCTORS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls_name}.{method.name} constructs a generator via "
                        f"{name}(...): its state is invisible to the "
                        "EstimatorState checkpoint; draw from the rng "
                        "parameter instead (iter_run serializes it with "
                        "capture_rng_state/restore_rng every chunk)",
                    )
            elif isinstance(node, ast.Assign):
                yield from self._check_payload_store(ctx, cls_name, method, node)
            elif isinstance(node, (ast.Dict,)):
                for value in node.values:
                    if isinstance(value, ast.Name) and value.id == "rng":
                        yield self._live_rng_finding(ctx, cls_name, method, value)

    def _check_payload_store(
        self,
        ctx: ModuleContext,
        cls_name: str,
        method: ast.FunctionDef,
        node: ast.Assign,
    ) -> Iterator[Finding]:
        if not (isinstance(node.value, ast.Name) and node.value.id == "rng"):
            return
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                yield self._live_rng_finding(ctx, cls_name, method, node.value)

    def _live_rng_finding(
        self, ctx: ModuleContext, cls_name: str, method: ast.FunctionDef, node: ast.AST
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"{cls_name}.{method.name} stores the live rng object in the "
            "payload: generators do not survive JSON checkpointing; "
            "serialize with capture_rng_state and rebuild with restore_rng",
        )
