"""Finding objects produced by the contract checker.

A :class:`Finding` is one rule violation at one source location.  Findings are
value objects: hashable, totally ordered (by path, then line/column, then
code), and round-trippable through JSON — the baseline file and the
``repro check --json`` output are both built from :meth:`Finding.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: code carried by checker-level findings that no rule owns: unparseable
#: files, malformed suppression pragmas, stale baseline entries.
META_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``file:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            code=str(payload["code"]),
            message=str(payload.get("message", "")),
        )

    def baseline_key(self) -> tuple[str, str, int]:
        """Identity used to match a finding against a baseline entry.

        Column and message are excluded: a baseline should survive message
        rewording and small same-line edits, but not code moving to another
        line — a moved finding is a changed finding and must be re-triaged.
        """
        return (self.path, self.code, self.line)
