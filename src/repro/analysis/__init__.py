"""``repro.analysis`` — AST-based determinism & concurrency contract checker.

The reproduction's guarantees (bitwise-identical values across executor
backends, content-addressed store hits, lossless interrupt->resume) rest on
repository-wide conventions that no general-purpose linter knows about.  This
package makes them machine-checked: a rule engine
(:mod:`~repro.analysis.engine`) runs a catalog of ``RPR0xx`` rules over the
source tree, with an explicit suppression pragma
(``# repro: allow[RPR0xx] reason=...``, :mod:`~repro.analysis.pragmas`) and
an optional shrinking baseline (:mod:`~repro.analysis.baseline`).

Rule catalog (details in ``docs/static-analysis.md``):

========  ===========================  =========================================
RPR001    unseeded-randomness          every generator derives from an explicit
                                       seed; no legacy/global RNG, no magic
                                       inline literal seeds in library code
RPR002    ambient-state-read           no wall-clock/environment reads: content
                                       fingerprints are pure functions of
                                       declared inputs
RPR003    unstable-iteration-order     no numeric folds over hash-ordered set
                                       iteration; ``sorted(...)`` first
RPR004    unpicklable-callable         callables crossing the process backend
                                       must pickle (no lambdas/closures)
RPR005    checkpoint-incomplete        incremental estimators keep all state in
                                       the checkpointable payload and the
                                       framework-serialized rng
RPR006    unlocked-shared-mutation     lock-owning classes mutate shared state
                                       only under their lock
RPR007    swallowed-broad-exception    recovery paths never silently swallow
                                       broad exceptions
========  ===========================  =========================================

``RPR000`` is the checker's own meta-code: unparseable files, malformed
pragmas, and stale baseline entries.

Exposed on the CLI as ``repro check [paths] [--json] [--baseline FILE]
[--select/--ignore CODES]``; wired into CI through ``scripts/lint.sh``.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.context import FINGERPRINT_MODULES, ImportMap, ModuleContext
from repro.analysis.engine import (
    CheckReport,
    check_file,
    check_paths,
    iter_python_files,
)
from repro.analysis.findings import META_CODE, Finding
from repro.analysis.pragmas import Pragma, apply_suppressions, scan_pragmas
from repro.analysis.rules import (
    RULES,
    Rule,
    all_codes,
    register_rule,
    resolve_selection,
)

__all__ = [
    "CheckReport",
    "FINGERPRINT_MODULES",
    "Finding",
    "ImportMap",
    "META_CODE",
    "ModuleContext",
    "Pragma",
    "RULES",
    "Rule",
    "all_codes",
    "apply_baseline",
    "apply_suppressions",
    "check_file",
    "check_paths",
    "iter_python_files",
    "load_baseline",
    "register_rule",
    "resolve_selection",
    "scan_pragmas",
    "write_baseline",
]
