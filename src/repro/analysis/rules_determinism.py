"""Determinism rules: seeded randomness, fingerprint purity, stable ordering.

These protect the repository's foundational guarantee (ROADMAP, PRs 1-5):
the same spec at the same seed produces bitwise-identical values across every
executor backend, and content-addressed store entries never alias.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

#: numpy.random attributes that are legitimate in seeded, reproducible code
_NUMPY_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: ambient reads that would leak wall-clock / environment into computed values
_AMBIENT_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.getenv",
        "os.getcwd",
        "os.uname",
        "os.getpid",
        "socket.gethostname",
        "getpass.getuser",
        "platform.node",
        "platform.platform",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: reads of these names are ambient even without a call
_AMBIENT_ATTRIBUTES = frozenset({"os.environ", "sys.argv"})


@register_rule
class UnseededRandomness(Rule):
    """RPR001 — all randomness must flow from an explicit seed.

    Three unconditional bans: ``numpy.random.default_rng()`` with no seed
    argument (OS entropy), the legacy ``numpy.random.*`` module functions
    (global mutable state, shared across threads), and the stdlib ``random``
    module (per-process salted for str/bytes hashing concerns aside, it is
    unseedable per-call-site).  In library code a fourth pattern is flagged:
    a bare integer literal seed inside a function body — magic inline seeds
    are content-identity-bearing and belong in a named, documented
    module-level constant (see e.g. ``repro.datasets.mnist_like``).
    """

    code = "RPR001"
    name = "unseeded-randomness"
    summary = (
        "randomness must come from repro.utils.rng seeds: no unseeded "
        "default_rng(), no legacy np.random.* / stdlib random, no magic "
        "inline literal seeds in library code"
    )
    applies_in_tests = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        in_function = _function_line_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "numpy.random.default_rng":
                yield from self._check_default_rng(ctx, node, in_function)
            elif resolved.startswith("numpy.random."):
                attr = resolved.removeprefix("numpy.random.")
                if "." not in attr and attr not in _NUMPY_RANDOM_OK:
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-state RNG call numpy.random.{attr}(); "
                        "draw from a seeded Generator "
                        "(repro.utils.rng.RandomState) instead",
                    )
            elif resolved.split(".", 1)[0] == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random call {resolved}(); use a seeded "
                    "numpy Generator from repro.utils.rng so the draw is "
                    "reproducible and checkpointable",
                )

    def _check_default_rng(
        self, ctx: ModuleContext, node: ast.Call, in_function: list[tuple[int, int]]
    ) -> Iterator[Finding]:
        if not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node,
                "default_rng() without a seed draws OS entropy; every "
                "generator must derive from an explicit seed "
                "(repro.utils.rng.RandomState / spawn_rng)",
            )
            return
        if ctx.is_test or not node.args:
            return
        seed = node.args[0]
        is_literal_int = isinstance(seed, ast.Constant) and isinstance(seed.value, int)
        inside = any(lo <= node.lineno <= hi for lo, hi in in_function)
        if is_literal_int and inside:
            yield self.finding(
                ctx,
                node,
                f"magic inline seed default_rng({seed.value}); this literal is "
                "content-identity-bearing — hoist it into a named, documented "
                "module-level constant",
            )


def _function_line_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(first, last) line ranges of every function/method body in the module."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


@register_rule
class AmbientStateRead(Rule):
    """RPR002 — no wall-clock or environment reads in library code.

    The store is content-addressed: fingerprints must depend only on declared
    inputs.  An ambient read (``time.time``, ``datetime.now``, ``os.environ``,
    hostnames, uuid4, ...) anywhere in ``src/`` is either a fingerprint-purity
    bug — fatal in the fingerprint-producing modules themselves — or
    intentional telemetry, which must say so with a pragma.
    """

    code = "RPR002"
    name = "ambient-state-read"
    summary = (
        "wall-clock / environment reads are banned in library code; "
        "fingerprinted content must be a pure function of declared inputs "
        "(pragma intentional telemetry)"
    )
    applies_in_tests = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            resolved: Optional[str] = None
            if isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved not in _AMBIENT_CALLS:
                    continue
                what = f"{resolved}()"
            elif isinstance(node, (ast.Attribute, ast.Name)):
                resolved = ctx.resolve(node)
                if resolved not in _AMBIENT_ATTRIBUTES:
                    continue
                what = resolved
            else:
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            if ctx.is_fingerprint_module:
                detail = (
                    "this module produces content fingerprints — an ambient "
                    "read here silently changes content identity and aliases "
                    "store entries"
                )
            else:
                detail = (
                    "values derived from it must never reach a fingerprint; "
                    "if this is telemetry (timestamps, logs), say so with "
                    "`# repro: allow[RPR002] reason=...`"
                )
            yield self.finding(ctx, node, f"ambient state read {what}: {detail}")


def _is_set_expression(node: ast.AST) -> bool:
    """Whether an expression *provably* evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # set algebra results are sets again: s.union(t), s & t spelled out
        return node.func.attr in {"union", "intersection", "difference",
                                  "symmetric_difference"} and _is_set_expression(
            node.func.value
        )
    return False


#: consuming one of these with a set argument folds values in hash order
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "sum", "enumerate"})


@register_rule
class UnstableIterationOrder(Rule):
    """RPR003 — never fold numeric work over hash-ordered iteration.

    Set iteration order is hash-based: salted for strings, and in general not
    part of any compatibility promise.  Feeding it into ordering-sensitive
    numeric work (floating-point sums, array construction, enumeration) makes
    results process-dependent.  Iterating a set expression — in a ``for``
    loop, a comprehension, or an order-sensitive consumer such as ``list``/
    ``sum`` — requires ``sorted(...)``.  Plain dict iteration is deliberately
    not flagged: insertion order is guaranteed and the anytime checkpoint
    codec depends on it (see repro.core.anytime).
    """

    code = "RPR003"
    name = "unstable-iteration-order"
    summary = (
        "iterating a bare set/frozenset feeds hash order into downstream "
        "numeric work; wrap it in sorted(...)"
    )
    applies_in_tests = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    yield self._order_finding(ctx, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expression(gen.iter):
                        yield self._order_finding(ctx, gen.iter, "comprehension")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CONSUMERS
                and node.args
                and _is_set_expression(node.args[0])
            ):
                yield self._order_finding(ctx, node.args[0], f"{node.func.id}(...)")

    def _order_finding(self, ctx: ModuleContext, node: ast.AST, where: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"set iterated in {where}: iteration order is hash-based and not "
            "reproducible across processes; wrap the set in sorted(...) before "
            "any ordering-sensitive (numeric) consumption",
        )
