"""The ``# repro: allow[...]`` suppression pragma.

A finding is suppressed by a pragma on the *same line*, or by a pragma that
is a comment-only line immediately *above* it (for lines too long to carry a
trailing comment)::

    manifest["updated_at"] = time.time()  # repro: allow[RPR002] reason=telemetry

    # repro: allow[RPR002] reason=store timestamps are telemetry, not identity
    entry = {"key": key, "value": value, "ts": time.time()}

Two properties keep pragmas honest, and both are enforced as findings rather
than silently tolerated (:data:`~repro.analysis.findings.META_CODE`):

* every pragma must carry a non-empty ``reason=`` — an unexplained
  suppression is indistinguishable from a silenced bug;
* every code listed must be a registered rule code — a typo'd code would
  suppress nothing while looking like it does.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import AbstractSet, Iterable

from repro.analysis.findings import META_CODE, Finding

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[^\]]*)\]\s*(?:reason=(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    codes: tuple[str, ...]
    reason: str
    own_line: bool  # comment-only line: also covers the line below


def _comment_tokens(source: str) -> list[tokenize.TokenInfo]:
    """Real COMMENT tokens only — pragma-shaped text inside string literals
    and docstrings (e.g. documentation *about* the pragma) must not parse."""
    return [
        token
        for token in tokenize.generate_tokens(io.StringIO(source).readline)
        if token.type == tokenize.COMMENT
    ]


def scan_pragmas(
    relpath: str, source: str, known_codes: AbstractSet[str]
) -> tuple[list[Pragma], list[Finding]]:
    """Parse every pragma in a file; malformed ones come back as findings."""
    pragmas: list[Pragma] = []
    errors: list[Finding] = []
    for token in _comment_tokens(source):
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        col = token.start[1] + match.start() + 1
        line_prefix = source.splitlines()[lineno - 1][: token.start[1]]
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        reason = (match.group("reason") or "").strip()
        unknown = [code for code in codes if code not in known_codes]
        if not codes:
            errors.append(
                Finding(relpath, lineno, col, META_CODE, "pragma lists no rule codes")
            )
            continue
        if unknown:
            errors.append(
                Finding(
                    relpath,
                    lineno,
                    col,
                    META_CODE,
                    f"pragma names unknown rule code(s) {', '.join(unknown)}; "
                    "see `repro check --list-rules`",
                )
            )
            continue
        if not reason:
            errors.append(
                Finding(
                    relpath,
                    lineno,
                    col,
                    META_CODE,
                    "pragma must justify itself: add reason=<why this is allowed>",
                )
            )
            continue
        own_line = line_prefix.strip() == ""
        pragmas.append(Pragma(lineno, codes, reason, own_line))
    return pragmas, errors


def suppressed_lines(pragmas: Iterable[Pragma]) -> dict[int, set[str]]:
    """Map line number -> rule codes suppressed on that line."""
    covered: dict[int, set[str]] = {}
    for pragma in pragmas:
        covered.setdefault(pragma.line, set()).update(pragma.codes)
        if pragma.own_line:
            covered.setdefault(pragma.line + 1, set()).update(pragma.codes)
    return covered


def apply_suppressions(
    findings: Iterable[Finding], pragmas: Iterable[Pragma]
) -> tuple[list[Finding], int]:
    """Drop findings covered by a pragma; return (kept, suppressed count)."""
    covered = suppressed_lines(pragmas)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.code in covered.get(finding.line, ()):  # META_CODE included
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
