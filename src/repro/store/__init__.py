"""Persistent, content-addressed coalition-utility store.

Training an FL model for a coalition (the paper's cost τ) dominates every
experiment, and the in-memory :class:`~repro.utils.cache.UtilityCache` dies
with the process.  This package adds the disk tier beneath it:

* :mod:`repro.store.fingerprint` — stable content fingerprints of task specs
  and coalitions (canonical JSON → SHA-256), so two processes always agree on
  the key of the same training result;
* :class:`UtilityStore` — the backend interface, with
  :class:`MemoryUtilityStore` (reference/tests),
  :class:`JsonlUtilityStore` (sharded append-only JSONL) and
  :class:`SqliteUtilityStore` (one WAL-mode SQLite file, the default);
* :func:`open_store` — path-based factory used by the builders and the
  ``repro`` CLI.

Values stay bitwise-identical to a fresh evaluation, and a store hit performs
zero FL trainings — which is what makes benchmark campaigns resumable and
shardable across processes and machines.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.store.base import GCResult, MemoryUtilityStore, StoreStats, UtilityStore
from repro.store.fingerprint import (
    FINGERPRINT_SCHEMA_VERSION,
    HASHED_KEY_TAG,
    HASHED_KEY_THRESHOLD,
    canonical_json,
    canonicalize,
    coalition_token,
    fingerprint,
    key_namespace,
    utility_key,
)
from repro.store.jsonl import JsonlUtilityStore
from repro.store.sqlite import SqliteUtilityStore

#: what the store-accepting APIs take: an instance, a path, or nothing
StoreLike = Union[UtilityStore, str, os.PathLike, None]

#: backend names accepted by :func:`open_store`
STORE_BACKENDS = ("sqlite", "jsonl", "memory")


def open_store(path: Union[str, os.PathLike], backend: Optional[str] = None) -> UtilityStore:
    """Open (creating if necessary) a persistent store at ``path``.

    With ``backend=None`` the kind is inferred: an existing directory — or a
    path without a file suffix — opens as a sharded JSONL store, anything
    else as a single SQLite file.  ``backend="memory"`` ignores the path.
    """
    path = os.fspath(path)
    if backend is None:
        if os.path.isdir(path) or not os.path.splitext(path)[1]:
            backend = "jsonl"
        elif os.path.splitext(path)[1] == ".jsonl":
            backend = "jsonl"
        else:
            backend = "sqlite"
    if backend == "sqlite":
        return SqliteUtilityStore(path)
    if backend == "jsonl":
        return JsonlUtilityStore(path)
    if backend == "memory":
        return MemoryUtilityStore()
    raise ValueError(f"unknown store backend {backend!r}; choose from {STORE_BACKENDS}")


def resolve_store(store: StoreLike, backend: Optional[str] = None) -> tuple[Optional[UtilityStore], bool]:
    """Normalise a :data:`StoreLike` into ``(store, owned)``.

    Paths are opened here and flagged ``owned=True`` so whoever resolved them
    (an oracle, a task builder, the CLI) knows to close the handle; instances
    belong to the caller and are passed through unowned.
    """
    if store is None:
        return None, False
    if isinstance(store, UtilityStore):
        return store, False
    return open_store(store, backend), True


__all__ = [
    "FINGERPRINT_SCHEMA_VERSION",
    "GCResult",
    "JsonlUtilityStore",
    "MemoryUtilityStore",
    "STORE_BACKENDS",
    "SqliteUtilityStore",
    "StoreLike",
    "StoreStats",
    "UtilityStore",
    "canonical_json",
    "canonicalize",
    "coalition_token",
    "HASHED_KEY_TAG",
    "HASHED_KEY_THRESHOLD",
    "fingerprint",
    "key_namespace",
    "open_store",
    "resolve_store",
    "utility_key",
]
