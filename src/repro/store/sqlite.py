"""SQLite store backend.

One file, one table, WAL journaling: the right default for a shared store
that several runner processes on one machine read and write concurrently.
SQLite REAL columns are IEEE-754 doubles, so utilities round-trip bitwise;
``INSERT OR REPLACE`` makes racing writers idempotent (both write the value
the content-address determines).

A row whose ``value`` is not a REAL (e.g. hand-edited, or torn by a crash on
a non-journaling filesystem) reads as a miss and is swept out by :meth:`gc`.

Concurrency: WAL lets readers proceed under a writer, but two simultaneous
write transactions still contend for the single write lock.  The connection
sets an explicit ``busy_timeout`` (SQLite blocks instead of failing fast) and
every write additionally runs under :func:`run_with_busy_retry`, so a fleet
of worker processes hammering one store file never surfaces a transient
``SQLITE_BUSY`` to callers — a lock that persists past both layers is a real
deadlock and does raise.
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from repro.store.base import GCResult, UtilityStore
from repro.store.fingerprint import key_namespace

_T = TypeVar("_T")

#: write attempts before a busy error surfaces to the caller
BUSY_RETRIES = 8

#: base pause between busy retries (seconds); scaled linearly per attempt
BUSY_BACKOFF_SECONDS = 0.05


def is_busy_error(error: BaseException) -> bool:
    """Whether an :class:`sqlite3.OperationalError` is SQLITE_BUSY/LOCKED."""
    message = str(error).lower()
    return "database is locked" in message or "database is busy" in message


def run_with_busy_retry(
    operation: Callable[[], _T],
    retries: int = BUSY_RETRIES,
    backoff: float = BUSY_BACKOFF_SECONDS,
) -> _T:
    """Run ``operation``, absorbing up to ``retries`` SQLITE_BUSY errors.

    The pause grows linearly (``backoff``, ``2*backoff``, ...) so colliding
    writers spread out instead of retrying in lockstep.  Non-busy operational
    errors — and a lock still held after the final attempt — propagate: this
    helper exists to absorb *transient* contention, not to hide deadlocks.
    """
    attempts = max(1, int(retries))
    for attempt in range(attempts):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not is_busy_error(error) or attempt == attempts - 1:
                raise
            time.sleep(backoff * (attempt + 1))
    raise AssertionError("unreachable")  # pragma: no cover


_SCHEMA = """
CREATE TABLE IF NOT EXISTS utilities (
    key        TEXT PRIMARY KEY,
    namespace  TEXT NOT NULL,
    value      REAL NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_utilities_namespace ON utilities (namespace);
"""


def _row_bytes_estimate(key: str) -> int:
    """Estimated on-disk payload of one ``utilities`` row.

    SQLite record = key text + namespace text (the key's prefix) + two
    8-byte REALs + ~8 bytes of header/serial-type overhead.  An estimate is
    the honest best here: real page-level cost depends on B-tree fill and
    WAL state, which no per-row accounting can see.
    """
    key_bytes = len(key.encode("utf-8"))
    namespace_bytes = len(key_namespace(key).encode("utf-8"))
    return key_bytes + namespace_bytes + 16 + 8


class SqliteUtilityStore(UtilityStore):
    """Disk store backed by a single SQLite database file."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__()
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # The base-class lock serialises all access from this handle, so the
        # connection may safely hop between threads.
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            self._connection.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass  # WAL is an optimisation; read-only media still work
        self._connection.execute("PRAGMA synchronous=NORMAL")
        # The connect() timeout only covers the lock waits the sqlite3 module
        # itself performs; an explicit busy_timeout makes SQLite block (not
        # fail) inside every statement, which is what many concurrent fleet
        # workers sharing one store file need.
        self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        run_with_busy_retry(
            lambda: self._connection.executescript(_SCHEMA)
        )
        self._connection.commit()

    @property
    def location(self) -> str:
        return self.path

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> Optional[float]:
        row = self._connection.execute(
            "SELECT value FROM utilities WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        value = row[0]
        if not isinstance(value, float):
            # Torn or hand-edited row: surface it as a miss, never a crash.
            self.stats.corrupt_entries += 1
            return None
        return value

    def _write(self, key: str, value: float) -> int:
        def write_row() -> None:
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO utilities "
                    "(key, namespace, value, created_at) VALUES (?, ?, ?, ?)",
                    # created_at aids store forensics; keys and values are
                    # content-addressed without it.
                    # repro: allow[RPR002] reason=created_at is telemetry, not identity
                    (key, key_namespace(key), float(value), time.time()),
                )
                self._connection.commit()
            except sqlite3.OperationalError:
                # Leave no transaction half-open behind a retry.
                self._connection.rollback()
                raise

        run_with_busy_retry(write_row)
        return _row_bytes_estimate(key)

    def _count(self) -> int:
        row = self._connection.execute("SELECT COUNT(*) FROM utilities").fetchone()
        return int(row[0])

    def _keys(self) -> Iterable[str]:
        rows: List[tuple] = self._connection.execute(
            "SELECT key FROM utilities"
        ).fetchall()
        return [row[0] for row in rows]

    def _size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def _namespace_sizes(self) -> Dict[str, int]:
        """Estimated row-payload bytes per namespace (see `_row_bytes_estimate`)."""
        sizes: Dict[str, int] = {}
        rows: List[tuple] = self._connection.execute(
            "SELECT namespace, key FROM utilities"
        ).fetchall()
        for namespace, key in rows:
            sizes[namespace] = sizes.get(namespace, 0) + _row_bytes_estimate(key)
        return sizes

    def _gc(self, keep_namespace: Optional[str]) -> GCResult:
        # Concurrent-writer safety: the DELETEs carry their predicates into
        # the database, so a row deposited *while* gc runs is judged by the
        # same rules as every other row — a fresh valid entry in the kept
        # namespace can never be swept just because it post-dates whatever
        # summary the caller looked at before invoking gc.
        result = GCResult()

        def sweep() -> None:
            try:
                cursor = self._connection.execute(
                    "DELETE FROM utilities WHERE typeof(value) != 'real'"
                )
                result.dropped_corrupt = max(cursor.rowcount, 0)
                if keep_namespace is not None:
                    cursor = self._connection.execute(
                        "DELETE FROM utilities WHERE namespace != ?",
                        (keep_namespace,),
                    )
                    result.dropped_namespaces = max(cursor.rowcount, 0)
                self._connection.commit()
            except sqlite3.OperationalError:
                self._connection.rollback()
                result.dropped_corrupt = 0
                result.dropped_namespaces = 0
                raise

        run_with_busy_retry(sweep)
        try:
            run_with_busy_retry(lambda: self._connection.execute("VACUUM"))
        except sqlite3.OperationalError as error:
            if not is_busy_error(error):
                raise
            # VACUUM needs the file to itself; under live concurrent writers
            # the deletes above are already durable and space reclaim is
            # cosmetic, so skip it rather than fail the gc.
        result.kept = self._count()
        return result

    def _close(self) -> None:
        self._connection.close()
