"""SQLite store backend.

One file, one table, WAL journaling: the right default for a shared store
that several runner processes on one machine read and write concurrently.
SQLite REAL columns are IEEE-754 doubles, so utilities round-trip bitwise;
``INSERT OR REPLACE`` makes racing writers idempotent (both write the value
the content-address determines).

A row whose ``value`` is not a REAL (e.g. hand-edited, or torn by a crash on
a non-journaling filesystem) reads as a miss and is swept out by :meth:`gc`.
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Dict, Iterable, List, Optional

from repro.store.base import GCResult, UtilityStore
from repro.store.fingerprint import key_namespace

_SCHEMA = """
CREATE TABLE IF NOT EXISTS utilities (
    key        TEXT PRIMARY KEY,
    namespace  TEXT NOT NULL,
    value      REAL NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_utilities_namespace ON utilities (namespace);
"""


def _row_bytes_estimate(key: str) -> int:
    """Estimated on-disk payload of one ``utilities`` row.

    SQLite record = key text + namespace text (the key's prefix) + two
    8-byte REALs + ~8 bytes of header/serial-type overhead.  An estimate is
    the honest best here: real page-level cost depends on B-tree fill and
    WAL state, which no per-row accounting can see.
    """
    key_bytes = len(key.encode("utf-8"))
    namespace_bytes = len(key_namespace(key).encode("utf-8"))
    return key_bytes + namespace_bytes + 16 + 8


class SqliteUtilityStore(UtilityStore):
    """Disk store backed by a single SQLite database file."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__()
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # The base-class lock serialises all access from this handle, so the
        # connection may safely hop between threads.
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        try:
            self._connection.execute("PRAGMA journal_mode=WAL")
        except sqlite3.DatabaseError:
            pass  # WAL is an optimisation; read-only media still work
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()

    @property
    def location(self) -> str:
        return self.path

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> Optional[float]:
        row = self._connection.execute(
            "SELECT value FROM utilities WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        value = row[0]
        if not isinstance(value, float):
            # Torn or hand-edited row: surface it as a miss, never a crash.
            self.stats.corrupt_entries += 1
            return None
        return value

    def _write(self, key: str, value: float) -> int:
        self._connection.execute(
            "INSERT OR REPLACE INTO utilities (key, namespace, value, created_at) "
            "VALUES (?, ?, ?, ?)",
            # created_at aids store forensics; keys and values are
            # content-addressed without it.
            # repro: allow[RPR002] reason=created_at is telemetry, not identity
            (key, key_namespace(key), float(value), time.time()),
        )
        self._connection.commit()
        return _row_bytes_estimate(key)

    def _count(self) -> int:
        row = self._connection.execute("SELECT COUNT(*) FROM utilities").fetchone()
        return int(row[0])

    def _keys(self) -> Iterable[str]:
        rows: List[tuple] = self._connection.execute(
            "SELECT key FROM utilities"
        ).fetchall()
        return [row[0] for row in rows]

    def _size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def _namespace_sizes(self) -> Dict[str, int]:
        """Estimated row-payload bytes per namespace (see `_row_bytes_estimate`)."""
        sizes: Dict[str, int] = {}
        rows: List[tuple] = self._connection.execute(
            "SELECT namespace, key FROM utilities"
        ).fetchall()
        for namespace, key in rows:
            sizes[namespace] = sizes.get(namespace, 0) + _row_bytes_estimate(key)
        return sizes

    def _gc(self, keep_namespace: Optional[str]) -> GCResult:
        result = GCResult()
        cursor = self._connection.execute(
            "DELETE FROM utilities WHERE typeof(value) != 'real'"
        )
        result.dropped_corrupt = cursor.rowcount if cursor.rowcount > 0 else 0
        if keep_namespace is not None:
            cursor = self._connection.execute(
                "DELETE FROM utilities WHERE namespace != ?", (keep_namespace,)
            )
            result.dropped_namespaces = cursor.rowcount if cursor.rowcount > 0 else 0
        self._connection.commit()
        self._connection.execute("VACUUM")
        result.kept = self._count()
        return result

    def _close(self) -> None:
        self._connection.close()
