"""The persistent utility-store interface.

A :class:`UtilityStore` maps content-addressed keys (see
:mod:`repro.store.fingerprint`) to coalition utilities.  It is the disk tier
beneath the in-memory :class:`~repro.utils.cache.UtilityCache`: values written
here survive the process, so separate workers — and separate *runs*, days
apart — share FL-training results instead of re-paying the per-coalition cost
τ.  Backends must preserve floats bitwise (IEEE-754 doubles round-trip
exactly through both SQLite REAL columns and ``repr``-based JSON), which is
what makes stored-vs-fresh utilities bitwise-identical.

Backends are concurrency-safe within a process (internal lock) and tolerate
concurrent writers across processes for distinct keys; a key is only ever
written with the value its fingerprint determines, so racing writers are
idempotent.
"""

from __future__ import annotations

import abc
import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.store.fingerprint import key_namespace
from repro.telemetry import BYTES_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


@dataclass
class StoreStats:
    """Access counters of one store handle (not persisted)."""

    gets: int = 0
    hits: int = 0
    puts: int = 0
    corrupt_entries: int = 0

    @property
    def misses(self) -> int:
        return self.gets - self.hits

    @property
    def hit_rate(self) -> float:
        if self.gets == 0:
            return 0.0
        return self.hits / self.gets


@dataclass
class GCResult:
    """Outcome of a :meth:`UtilityStore.gc` pass."""

    kept: int = 0
    dropped_corrupt: int = 0
    dropped_duplicates: int = 0
    dropped_namespaces: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_corrupt + self.dropped_duplicates + self.dropped_namespaces

    def to_dict(self) -> dict:
        return {
            "kept": self.kept,
            "dropped_corrupt": self.dropped_corrupt,
            "dropped_duplicates": self.dropped_duplicates,
            "dropped_namespaces": self.dropped_namespaces,
        }


class UtilityStore(abc.ABC):
    """Persistent, content-addressed ``key -> utility`` mapping.

    Keys follow the :func:`repro.store.fingerprint.utility_key` format
    ``<task-fingerprint>:<sorted members>``; the namespace prefix groups all
    coalitions of one task so :meth:`summary` and :meth:`gc` can report and
    prune per task.
    """

    def __init__(self) -> None:
        self.stats = StoreStats()
        self._lock = threading.RLock()
        self._closed = False
        self.telemetry: "Optional[Telemetry]" = None

    def set_telemetry(self, telemetry: "Optional[Telemetry]") -> None:
        """Attach (or detach with ``None``) a telemetry handle.

        Observational only: the handle feeds the ``store.put_bytes``
        histogram; it never influences keys, values or placement.
        """
        with self._lock:
            self.telemetry = telemetry

    # ------------------------------------------------------------------ #
    # Core mapping interface
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[float]:
        """Return the stored utility or ``None`` (absent or unreadable).

        A corrupted entry is treated as a miss — the caller retrains the
        coalition and overwrites it — never as an error: a single bad disk
        record must not take down a multi-hour campaign.
        """
        with self._lock:
            self._check_open()
            self.stats.gets += 1
            value = self._read(key)
            if value is not None:
                self.stats.hits += 1
            return value

    def put(self, key: str, value: float) -> None:
        """Persist one utility; overwrites any previous record for the key.

        Non-finite values are not persisted: SQLite cannot represent NaN in a
        REAL NOT NULL column, and a NaN utility signals a degenerate training
        run rather than a result worth sharing.  Skipping (instead of
        raising) keeps a single bad evaluation from aborting a campaign; a
        deterministic evaluator reproduces the same value on the next run.
        """
        value = float(value)
        if not math.isfinite(value):
            return
        with self._lock:
            self._check_open()
            self.stats.puts += 1
            written = self._write(key, value)
            if self.telemetry is not None and written:
                self.telemetry.observe("store.put_bytes", written, BYTES_BUCKETS)

    def get_many(self, keys: Iterable[str]) -> Dict[str, float]:
        """Batch read; only present (readable) keys appear in the result."""
        results: Dict[str, float] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                results[key] = value
        return results

    def put_many(self, entries: Dict[str, float]) -> None:
        for key, value in entries.items():
            self.put(key, value)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            return self._read(key) is not None

    def __len__(self) -> int:
        with self._lock:
            self._check_open()
            return self._count()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Describe the store: backend, location, entry counts per namespace.

        ``namespace_bytes`` maps each namespace to its on-disk byte size when
        the backend can attribute bytes to records (JSONL: actual line
        lengths; SQLite: row-payload estimates) and is ``None`` for backends
        that cannot (memory).
        """
        with self._lock:
            self._check_open()
            namespaces: Dict[str, int] = {}
            for key in self._keys():
                ns = key_namespace(key)
                namespaces[ns] = namespaces.get(ns, 0) + 1
            return {
                "backend": type(self).__name__,
                "location": self.location,
                "entries": sum(namespaces.values()),
                "namespaces": namespaces,
                "namespace_bytes": self._namespace_sizes(),
                "size_bytes": self._size_bytes(),
            }

    def gc(self, keep_namespace: Optional[str] = None) -> GCResult:
        """Compact the store: drop corrupt/duplicate records, optionally
        everything outside ``keep_namespace``."""
        with self._lock:
            self._check_open()
            return self._gc(keep_namespace)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release file/connection handles; idempotent."""
        with self._lock:
            if not self._closed:
                self._close()
                self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "UtilityStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"{type(self).__name__} is closed")

    # ------------------------------------------------------------------ #
    # Backend hooks (called with the lock held)
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable location (path or ':memory:')."""

    @abc.abstractmethod
    def _read(self, key: str) -> Optional[float]: ...

    @abc.abstractmethod
    def _write(self, key: str, value: float) -> int:
        """Persist one record; returns the on-disk bytes it cost (0 if unknown)."""

    @abc.abstractmethod
    def _count(self) -> int: ...

    @abc.abstractmethod
    def _keys(self) -> Iterable[str]: ...

    @abc.abstractmethod
    def _gc(self, keep_namespace: Optional[str]) -> GCResult: ...

    def _size_bytes(self) -> int:
        return 0

    def _namespace_sizes(self) -> Optional[Dict[str, int]]:
        """Per-namespace on-disk bytes, or ``None`` when not attributable."""
        return None

    def _close(self) -> None: ...


class MemoryUtilityStore(UtilityStore):
    """Dict-backed store: the reference semantics, and a test double.

    Not persistent, obviously — it exists so the tiered-cache logic can be
    exercised (and benchmarked) without touching disk, and as the executable
    specification the disk backends are tested against.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[str, float] = {}

    @property
    def location(self) -> str:
        return ":memory:"

    def _read(self, key: str) -> Optional[float]:
        return self._data.get(key)

    def _write(self, key: str, value: float) -> int:
        self._data[key] = value
        return 0  # nothing touches disk

    def _count(self) -> int:
        return len(self._data)

    def _keys(self) -> Iterable[str]:
        return list(self._data)

    def _gc(self, keep_namespace: Optional[str]) -> GCResult:
        result = GCResult()
        if keep_namespace is not None:
            doomed = [
                k for k in self._data if key_namespace(k) != keep_namespace
            ]
            for key in doomed:
                del self._data[key]
            result.dropped_namespaces = len(doomed)
        result.kept = len(self._data)
        return result
