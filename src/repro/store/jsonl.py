"""Sharded, append-only JSONL store backend.

Layout: a directory of up to 256 shard files ``shard-XX.jsonl`` where ``XX``
is the first byte of the key's SHA-256 (so keys spread evenly and a large
store never funnels all appends through one file).  Each record is one JSON
line ``{"key": ..., "value": ..., "ts": ...}``; the *last* valid record for a
key wins, which makes writes a single O_APPEND syscall — atomic enough that
concurrent writers from different processes interleave whole lines rather
than corrupt each other (POSIX guarantees this for small appends).

Reading keeps a per-shard in-memory index plus the byte offset scanned so
far; a miss re-scans only the tail appended since, so entries written by a
sibling worker process become visible without re-reading the whole shard.
Unparseable lines (a crash mid-append, disk corruption) are counted and
skipped — never fatal — and :meth:`gc` rewrites shards to shed them along
with superseded duplicates.

gc vs concurrent writers: a shard rewrite (read → filter → ``os.replace``)
would silently destroy any line appended between the read and the replace.
Writers therefore take a *shared* ``flock`` on the shard for the duration of
each append (re-opening if the inode changed under them), while :meth:`gc`
takes an *exclusive* lock around the whole rewrite and takes its snapshot
only after acquiring it — so every record deposited before the rewrite is in
the snapshot, and every writer that raced it lands on the new file.  On
platforms without ``fcntl`` the locks degrade to no-ops (single-writer use
stays correct; concurrent gc is a POSIX-only guarantee).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, Iterable, List, Optional

try:  # pragma: no cover - fcntl exists everywhere the test matrix runs
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.store.base import GCResult, UtilityStore
from repro.store.fingerprint import key_namespace

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"


def _shard_name(key: str) -> str:
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
    return f"{_SHARD_PREFIX}{digest[:2]}{_SHARD_SUFFIX}"


def _parse_record(line: bytes) -> Optional[tuple[str, float]]:
    """Parse one JSONL record line; ``None`` marks a corrupt record.

    The single definition of record validity — the live scan path and gc
    must never disagree on which records are corrupt.
    """
    try:
        record = json.loads(line)
        key = record["key"]
        value = record["value"]
        if not isinstance(key, str) or not isinstance(value, (int, float)):
            return None
        if isinstance(value, bool):
            return None
    except (ValueError, KeyError, TypeError):
        return None
    return key, float(value)


class _Shard:
    """Index + scan offset of one shard file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.index: Dict[str, float] = {}
        self.offset = 0  # bytes of the file already folded into the index


class JsonlUtilityStore(UtilityStore):
    """Disk store backed by sharded JSONL files in a directory."""

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._shards: Dict[str, _Shard] = {}

    @property
    def location(self) -> str:
        return self.directory

    # ------------------------------------------------------------------ #
    # Shard handling
    # ------------------------------------------------------------------ #
    def _shard_for(self, key: str) -> _Shard:
        name = _shard_name(key)
        shard = self._shards.get(name)
        if shard is None:
            shard = _Shard(os.path.join(self.directory, name))
            self._shards[name] = shard
        return shard

    def _all_shards(self) -> List[_Shard]:
        for entry in sorted(os.listdir(self.directory)):
            if entry.startswith(_SHARD_PREFIX) and entry.endswith(_SHARD_SUFFIX):
                if entry not in self._shards:
                    self._shards[entry] = _Shard(os.path.join(self.directory, entry))
        return list(self._shards.values())

    def _scan(self, shard: _Shard) -> None:
        """Fold records appended since the last scan into the shard index.

        Only whole lines (up to the last newline) are consumed: a partial
        line is a concurrent writer mid-append, not corruption, and will be
        complete by the next scan.
        """
        try:
            size = os.path.getsize(shard.path)
        except OSError:
            return
        if size <= shard.offset:
            return
        with open(shard.path, "rb") as handle:
            handle.seek(shard.offset)
            chunk = handle.read(size - shard.offset)
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        for line in chunk[: end + 1].splitlines():
            if not line.strip():
                continue
            parsed = _parse_record(line)
            if parsed is None:
                self.stats.corrupt_entries += 1
                continue
            key, value = parsed
            shard.index[key] = value
        shard.offset += end + 1

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> Optional[float]:
        shard = self._shard_for(key)
        value = shard.index.get(key)
        if value is None:
            self._scan(shard)  # pick up appends from sibling processes
            value = shard.index.get(key)
        return value

    def _write(self, key: str, value: float) -> int:
        shard = self._shard_for(key)
        line = json.dumps(
            # Entry timestamps aid store forensics; keys and values are
            # content-addressed without them.
            # repro: allow[RPR002] reason=ts is forensic telemetry, not identity
            {"key": key, "value": value, "ts": time.time()},
            separators=(",", ":"),
        )
        self._append_record(shard.path, line + "\n")
        shard.index[key] = float(value)
        return len(line.encode("utf-8")) + 1  # the appended line incl. newline

    @staticmethod
    def _append_record(path: str, text: str) -> None:
        """Append under a shared flock, surviving a concurrent gc rewrite.

        A gc in another process holds the exclusive lock while it replaces
        the shard file; acquiring the shared lock therefore waits the rewrite
        out.  If the inode changed while we waited (our handle points at the
        replaced, soon-to-be-orphaned file), writing would lose the record —
        so re-open and retry against the live file instead.
        """
        while True:
            handle = open(path, "a", encoding="utf-8")
            try:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_SH)
                    try:
                        current = os.stat(path)
                    except OSError:
                        continue  # shard vanished mid-race; reopen recreates it
                    if os.fstat(handle.fileno()).st_ino != current.st_ino:
                        continue  # raced a gc rewrite: retry on the new inode
                handle.write(text)
                return
            finally:
                handle.close()  # also releases the flock

    def _count(self) -> int:
        return len(self._full_index())

    def _keys(self) -> Iterable[str]:
        return list(self._full_index())

    def _full_index(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for shard in self._all_shards():
            self._scan(shard)
            merged.update(shard.index)
        return merged

    def _size_bytes(self) -> int:
        total = 0
        for shard in self._all_shards():
            try:
                total += os.path.getsize(shard.path)
            except OSError:
                pass
        return total

    def _namespace_sizes(self) -> Dict[str, int]:
        """Actual on-disk bytes per namespace (supersesed duplicates included).

        Attributes each valid record line (plus its newline) to its key's
        namespace — that is what the namespace really occupies on disk until
        a :meth:`gc` rewrite.  Corrupt lines belong to no namespace and are
        simply not attributed.
        """
        sizes: Dict[str, int] = {}
        for shard in self._all_shards():
            try:
                with open(shard.path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                continue
            for line in raw.splitlines():
                if not line.strip():
                    continue
                parsed = _parse_record(line)
                if parsed is None:
                    continue
                ns = key_namespace(parsed[0])
                sizes[ns] = sizes.get(ns, 0) + len(line) + 1
        return sizes

    def _gc(self, keep_namespace: Optional[str]) -> GCResult:
        result = GCResult()
        for shard in self._all_shards():
            try:
                lock_handle = open(shard.path, "rb")
            except OSError:
                continue
            try:
                if fcntl is not None:
                    # Exclusive lock for the whole read→rewrite→replace
                    # window: writers (shared lock) block until the rewrite
                    # is done, and the snapshot below is taken *after* the
                    # lock — no record deposited before this point can be
                    # lost, and none can land between snapshot and replace.
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                self._gc_shard(shard, keep_namespace, result)
            finally:
                lock_handle.close()
        return result

    def _gc_shard(
        self, shard: _Shard, keep_namespace: Optional[str], result: GCResult
    ) -> None:
        try:
            with open(shard.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        survivors: Dict[str, str] = {}
        for line in raw.splitlines():
            if not line.strip():
                continue
            parsed = _parse_record(line)
            if parsed is None:
                result.dropped_corrupt += 1
                continue
            key = parsed[0]
            if key in survivors:
                result.dropped_duplicates += 1
            if keep_namespace is not None and key_namespace(key) != keep_namespace:
                result.dropped_namespaces += 1
                survivors.pop(key, None)
                continue
            survivors[key] = line.decode("utf-8")
        tmp_path = shard.path + ".gc-tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for line_text in survivors.values():
                handle.write(line_text + "\n")
        os.replace(tmp_path, shard.path)
        shard.index = {
            k: float(json.loads(v)["value"]) for k, v in survivors.items()
        }
        shard.offset = os.path.getsize(shard.path)
        result.kept += len(survivors)
