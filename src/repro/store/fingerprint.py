"""Stable content fingerprints for the persistent utility store.

The store is *content-addressed*: an entry's key is derived from everything
that determines the trained utility — the task specification (dataset, FL
configuration, model family, scale, seed) and the coalition itself.  Python's
builtin ``hash()`` is salted per process, and ``repr()`` of nested structures
is not guaranteed stable, so fingerprints are computed as the SHA-256 of a
*canonical JSON* rendering: keys sorted, no whitespace variation, only JSON
scalar/container types allowed.  Two processes (today's run and next month's
resume) therefore always agree on the key of the same (task, coalition) pair.

A ``schema`` field is part of every fingerprint payload so that a future
change to what the fingerprint covers invalidates old entries instead of
silently aliasing them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Iterable

#: bump when the fingerprint payload layout changes incompatibly
FINGERPRINT_SCHEMA_VERSION = 1

#: hex digits kept from the SHA-256 digest (128 bits — collision-safe)
FINGERPRINT_LENGTH = 32


def canonicalize(value: Any) -> Any:
    """Reduce a value to deterministic JSON-encodable form.

    Dataclasses become dicts, sets/frozensets become sorted lists, tuples
    become lists, NumPy scalars become their Python equivalents.  Anything
    else that is not a JSON scalar is rejected loudly — a silently unstable
    fingerprint (e.g. of a lambda's ``repr``) would corrupt the store.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in value.items()}
    if isinstance(value, (frozenset, set)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    # NumPy integer/floating scalars expose item(); avoid importing numpy here.
    item = getattr(value, "item", None)
    if callable(item):
        return canonicalize(item())
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting; "
        "use JSON-compatible values (numbers, strings, lists, dicts, dataclasses)"
    )


def canonical_json(payload: Any) -> str:
    """Render a payload as canonical JSON (sorted keys, compact separators)."""
    return json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def fingerprint(payload: Any) -> str:
    """SHA-256 fingerprint (first :data:`FINGERPRINT_LENGTH` hex chars)."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_LENGTH]


#: coalitions with more members than this use a fixed-width hashed token —
#: a plain member list for a 500-client grand coalition is ~1.9 kB *per key*,
#: a hashed token is 67 bytes regardless of coalition size
HASHED_KEY_THRESHOLD = 16

#: version tag prefixing hashed coalition tokens.  The tag namespaces hashed
#: tokens away from plain ones (a plain token is digits and commas, so it can
#: never read ``h1:...``) — existing small-n store entries stay valid, and a
#: future change to the hashing scheme bumps the tag instead of aliasing.
HASHED_KEY_TAG = "h1"


def coalition_token(coalition: Iterable[int]) -> str:
    """Canonical text form of a coalition.

    Small coalitions (at most :data:`HASHED_KEY_THRESHOLD` members) stay a
    sorted, comma-joined member list — readable in store dumps and identical
    to the pre-hashing format, so existing stores keep resolving.  Larger
    member sets become ``h1:<sha256 hex>`` of that same member list: fixed
    64-hex-character width however large the coalition, with the full
    256-bit digest kept (collision probability is negligible at any
    conceivable store size).
    """
    members = sorted(int(c) for c in coalition)
    plain = ",".join(str(m) for m in members)
    if len(members) <= HASHED_KEY_THRESHOLD:
        return plain
    digest = hashlib.sha256(plain.encode("ascii")).hexdigest()
    return f"{HASHED_KEY_TAG}:{digest}"


def utility_key(namespace: str, coalition: Iterable[int]) -> str:
    """Store key of one coalition's utility under a task-fingerprint namespace.

    The namespace (a task fingerprint from
    :func:`repro.experiments.tasks.task_fingerprint`) identifies everything
    *except* the coalition; the member list stays readable so store dumps can
    be inspected by eye — unless the coalition is large, in which case the
    token is the fixed-width hash described at :func:`coalition_token`.
    """
    if ":" in namespace:
        raise ValueError(f"namespace must not contain ':', got {namespace!r}")
    return f"{namespace}:{coalition_token(coalition)}"


def key_namespace(key: str) -> str:
    """Extract the namespace part of a :func:`utility_key`-formatted key."""
    return key.split(":", 1)[0]
