"""Declarative, fingerprintable client-population scenarios.

A :class:`Scenario` is plain data: a *base* partition recipe (which synthetic
dataset, which partitioner, how many clients) plus an ordered list of
:class:`~repro.scenarios.behaviors.BehaviorSpec` transforms applied to chosen
clients.  From that description the engine can

* compute the population *layout* without touching any data — total client
  count, which clients are injected bad actors, who straggles
  (:meth:`Scenario.layout`);
* build the coalition-utility oracle for the populated task
  (:func:`build_scenario_task`), reusing the dataset generators,
  partitioners and noise injectors of :mod:`repro.datasets` and the FL
  substrate of :mod:`repro.fl`; and
* fingerprint itself (:meth:`Scenario.fingerprint`) through the same
  :func:`~repro.experiments.tasks.task_fingerprint` channel as every other
  task, so scenario utilities land in the persistent
  :class:`~repro.store.UtilityStore` and a rerun trains nothing.

The fingerprint deliberately covers the scenario's *content* (base recipe +
behaviors), not its ``name``/``description`` — renaming a scenario must not
invalidate months of trained coalitions, and the clean counterparts of two
scenarios sharing a base dedupe to one store namespace.

Scenarios can be registered by name (:func:`register_scenario`; the built-in
catalog lives in :mod:`repro.scenarios.catalog`) or defined inline as JSON in
``repro run --config`` plan files.

Imports from :mod:`repro.experiments` are deliberately function-local: the
experiments layer imports this package to register the ``"scenario"`` task
kind, so a module-level import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.datasets import (
    Dataset,
    make_adult_like,
    make_femnist_like,
    make_mnist_like,
    partition_by_group,
    partition_different_sizes,
    partition_dirichlet,
    partition_iid,
    partition_label_skew,
    train_test_split,
)
from repro.scenarios.behaviors import BehaviorSpec
from repro.utils.rng import RandomState, spawn_rng

SCENARIO_DATASETS = ("mnist-like", "femnist-like", "adult-like")
#: datasets whose samples carry group ids (required by the by-group partition)
_GROUPED_DATASETS = ("femnist-like", "adult-like")

SCENARIO_PARTITIONS = ("iid", "label-skew", "different-sizes", "dirichlet", "by-group")

#: allowed ``partition_params`` keys per partitioner
_PARTITION_PARAM_KEYS: Dict[str, frozenset] = {
    "iid": frozenset(),
    "label-skew": frozenset({"dominant_fraction"}),
    "different-sizes": frozenset({"ratios"}),
    "dirichlet": frozenset({"alpha", "min_samples_per_client"}),
    "by-group": frozenset(),
}


@dataclass(frozen=True)
class ScenarioLayout:
    """Statically computed cast of a scenario's population.

    ``n_clients`` is the total population (base clients plus any appended by
    ``sybil`` behaviors); ``adversaries`` are the injected bad actors the
    robustness metrics score against; ``roles`` maps every behavior-touched
    client to its behavior kind; ``dropout`` maps stragglers to their
    per-round drop probability.
    """

    n_clients: int
    base_clients: int
    adversaries: tuple
    roles: Mapping
    dropout: Mapping

    def dropout_vector(self) -> Optional[list]:
        """Per-client dropout list for the FL trainer (``None`` when unused)."""
        if not self.dropout:
            return None
        return [float(self.dropout.get(i, 0.0)) for i in range(self.n_clients)]


@dataclass(frozen=True)
class Scenario:
    """Named, composable description of one client population.

    Parameters
    ----------
    name:
        Registry/report identity.  *Not* part of the content fingerprint.
    n_clients:
        Number of base clients produced by the partition recipe (behaviors
        may append more).
    dataset / partition / partition_params:
        Base recipe: one of :data:`SCENARIO_DATASETS`, one of
        :data:`SCENARIO_PARTITIONS`, plus partitioner keyword arguments
        (e.g. ``{"alpha": 0.3}`` for the Dirichlet split).
    behaviors:
        Ordered :class:`BehaviorSpec` transforms; later behaviors see the
        population as earlier ones left it.
    description:
        Human-readable summary for catalogs and docs.
    """

    name: str
    n_clients: int = 4
    dataset: str = "mnist-like"
    partition: str = "iid"
    partition_params: Mapping = field(default_factory=dict)
    behaviors: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.n_clients < 2:
            raise ValueError(
                f"a scenario needs at least 2 base clients, got {self.n_clients}"
            )
        if self.dataset not in SCENARIO_DATASETS:
            raise ValueError(
                f"unknown scenario dataset {self.dataset!r}; "
                f"choose from {SCENARIO_DATASETS}"
            )
        if self.partition not in SCENARIO_PARTITIONS:
            raise ValueError(
                f"unknown scenario partition {self.partition!r}; "
                f"choose from {SCENARIO_PARTITIONS}"
            )
        if self.partition == "by-group" and self.dataset not in _GROUPED_DATASETS:
            raise ValueError(
                f"the by-group partition needs a grouped dataset "
                f"({_GROUPED_DATASETS}), got {self.dataset!r}"
            )
        unknown = set(self.partition_params) - _PARTITION_PARAM_KEYS[self.partition]
        if unknown:
            raise ValueError(
                f"partition {self.partition!r} does not accept params "
                f"{sorted(unknown)}; known: {sorted(_PARTITION_PARAM_KEYS[self.partition])}"
            )
        object.__setattr__(self, "partition_params", dict(self.partition_params))
        behaviors = tuple(
            b if isinstance(b, BehaviorSpec) else BehaviorSpec.from_dict(b)
            for b in self.behaviors
        )
        object.__setattr__(self, "behaviors", behaviors)
        self.layout()  # validates behavior targets against the growing population

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def layout(self) -> ScenarioLayout:
        """Replay the behavior list symbolically to find the population cast."""
        n = self.n_clients
        adversaries: set = set()
        roles: Dict[int, str] = {}
        dropout: Dict[int, float] = {}
        for spec in self.behaviors:
            handler = spec.handler
            bad = [c for c in spec.clients if c >= n]
            if bad:
                raise ValueError(
                    f"behavior {spec.kind!r} targets clients {bad}, but the "
                    f"population has only {n} clients at that point"
                )
            if spec.kind == "duplicator":
                source = int(spec.params["source"])
                if source >= n:
                    raise ValueError(
                        f"duplicator source client {source} does not exist "
                        f"(population has {n} clients at that point)"
                    )
                if source in spec.clients:
                    raise ValueError(
                        "duplicator source cannot be one of its own targets"
                    )
            touched = list(spec.clients)
            if spec.kind == "sybil":
                clones_per_target = int(spec.params["n_clones"])
                for _ in spec.clients:
                    for _ in range(clones_per_target):
                        touched.append(n)
                        n += 1
            for client in touched:
                roles[client] = spec.kind
                # A client is an adversary if ANY behavior touching it is
                # adversarial — a later benign behavior (e.g. low_quality on
                # an already-poisoned client) must not launder the flag, or
                # the robustness metrics would score against an empty cast.
                if spec.is_adversarial:
                    adversaries.add(client)
            drop = handler.dropout(spec)
            if drop > 0.0:
                for client in spec.clients:
                    dropout[client] = drop
        return ScenarioLayout(
            n_clients=n,
            base_clients=self.n_clients,
            adversaries=tuple(sorted(adversaries)),
            roles=dict(roles),
            dropout=dict(dropout),
        )

    def clean(self) -> "Scenario":
        """The behavior-free counterpart sharing this scenario's base recipe.

        Content-fingerprints of clean counterparts depend only on the base
        recipe, so scenarios sharing a base share one clean namespace in the
        store (and the robustness harness trains its coalitions once).
        """
        return replace(
            self,
            name=f"{self.name}@clean",
            behaviors=(),
            description=f"behavior-free baseline of {self.name!r}",
        )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def identity_payload(self) -> dict:
        """Content identity: base recipe + behaviors, no name/description."""
        return {
            "n_clients": self.n_clients,
            "dataset": self.dataset,
            "partition": self.partition,
            "partition_params": dict(self.partition_params),
            "behaviors": [spec.identity_payload() for spec in self.behaviors],
        }

    def fingerprint(self, model: str, scale, seed: int) -> str:
        """Stable content address of the (scenario, model, scale, seed) task.

        Folded through :func:`repro.experiments.tasks.task_fingerprint`, so
        scenario tasks share the persistent store's namespace discipline with
        every other task kind.
        """
        from repro.experiments.tasks import task_fingerprint

        key = task_fingerprint(
            "scenario", scale, seed, model=model, scenario=self.identity_payload()
        )
        if key is None:
            raise ValueError(
                "scenario tasks need an integer seed to be fingerprintable"
            )
        return key

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "n_clients": self.n_clients,
            "dataset": self.dataset,
            "partition": self.partition,
        }
        if self.partition_params:
            payload["partition_params"] = dict(self.partition_params)
        if self.behaviors:
            payload["behaviors"] = [spec.to_dict() for spec in self.behaviors]
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        allowed = {
            "name",
            "n_clients",
            "dataset",
            "partition",
            "partition_params",
            "behaviors",
            "description",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(f"unknown Scenario fields: {sorted(unknown)}")
        if "name" not in payload:
            raise ValueError("a scenario definition requires a 'name' field")
        return cls(
            name=payload["name"],
            n_clients=int(payload.get("n_clients", 4)),
            dataset=payload.get("dataset", "mnist-like"),
            partition=payload.get("partition", "iid"),
            partition_params=dict(payload.get("partition_params", {})),
            behaviors=tuple(payload.get("behaviors", ())),
            description=payload.get("description", ""),
        )

    def summary(self) -> str:
        """One-line human description for ``repro scenarios list``."""
        layout = self.layout()
        parts = [f"{self.dataset}/{self.partition}", f"n={self.n_clients}"]
        if layout.n_clients != self.n_clients:
            parts[-1] += f"->{layout.n_clients}"
        if self.behaviors:
            parts.append("; ".join(s.handler.describe(s) for s in self.behaviors))
        else:
            parts.append("no behaviors")
        return " | ".join(parts)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
SCENARIO_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Register a named scenario for ``--scenario`` lookup."""
    if not overwrite and scenario.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (with a helpful error)."""
    if name not in SCENARIO_REGISTRY:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {available_scenarios()} "
            "or define it inline in a --config plan"
        )
    return SCENARIO_REGISTRY[name]


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIO_REGISTRY)


def resolve_scenario(scenario) -> Scenario:
    """Accept a :class:`Scenario`, a registered name, or a definition dict."""
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, Mapping):
        return Scenario.from_dict(scenario)
    raise TypeError(
        f"cannot resolve a scenario from {type(scenario).__name__!r}; "
        "pass a Scenario, a registered name, or a definition dict"
    )


# --------------------------------------------------------------------------- #
# Building
# --------------------------------------------------------------------------- #
def _make_pooled_dataset(scenario: Scenario, scale, rng) -> Dataset:
    n_samples = scale.samples_per_client * scenario.n_clients + scale.test_samples
    if scenario.dataset == "mnist-like":
        return make_mnist_like(
            n_samples=n_samples, image_size=scale.image_size, seed=rng
        )
    if scenario.dataset == "femnist-like":
        return make_femnist_like(
            n_samples=n_samples,
            n_writers=max(2 * scenario.n_clients, 4),
            image_size=scale.image_size,
            seed=rng,
        )
    return make_adult_like(
        n_samples=n_samples, n_occupations=max(2 * scenario.n_clients, 12), seed=rng
    )


def _partition_base(scenario: Scenario, train: Dataset, rng) -> List[Dataset]:
    params = scenario.partition_params
    if scenario.partition == "iid":
        return partition_iid(train, scenario.n_clients, seed=rng)
    if scenario.partition == "label-skew":
        return partition_label_skew(train, scenario.n_clients, seed=rng, **params)
    if scenario.partition == "different-sizes":
        return partition_different_sizes(train, scenario.n_clients, seed=rng, **params)
    if scenario.partition == "dirichlet":
        return partition_dirichlet(train, scenario.n_clients, seed=rng, **params)
    return partition_by_group(train, scenario.n_clients, seed=rng)


def build_scenario_task(
    scenario,
    model: str = "logistic",
    scale=None,
    seed: int = 0,
    store=None,
) -> tuple:
    """Build the coalition-utility oracle for a scenario's population.

    Returns ``(utility, info)`` where ``info`` carries the layout facts the
    robustness harness needs (``n_clients``, ``base_clients``,
    ``adversaries``, ``roles``).  With ``store=`` given, trained coalition
    utilities persist under the scenario's content fingerprint, so rerunning
    the same scenario campaign trains nothing.
    """
    from repro.experiments.config import ExperimentScale
    from repro.experiments.tasks import _wrap

    scenario = resolve_scenario(scenario)
    scale = scale or ExperimentScale.small()
    task_key = scenario.fingerprint(model, scale, seed)
    layout = scenario.layout()

    rng = RandomState(seed)
    data_rng, split_rng, behavior_rng, utility_rng = spawn_rng(rng, 4)
    pooled = _make_pooled_dataset(scenario, scale, data_rng)
    train, test = train_test_split(
        pooled, test_fraction=scale.test_samples / len(pooled), seed=split_rng
    )
    datasets = list(_partition_base(scenario, train, split_rng))
    for spec, spec_rng in zip(
        scenario.behaviors, spawn_rng(behavior_rng, len(scenario.behaviors))
    ):
        spec.handler.apply(datasets, spec, spec_rng)
    if len(datasets) != layout.n_clients:
        raise RuntimeError(
            f"scenario {scenario.name!r} built {len(datasets)} clients but its "
            f"layout predicts {layout.n_clients} — behavior apply()/n_added() disagree"
        )

    utility = _wrap(
        datasets,
        test,
        model=model,
        scale=scale,
        image_size=scale.image_size,
        n_classes=pooled.num_classes,
        seed=utility_rng,
        store=store,
        task_key=task_key,
        client_dropout=layout.dropout_vector(),
    )
    info = {
        "scenario": scenario.name,
        "n_clients": layout.n_clients,
        "base_clients": layout.base_clients,
        "adversaries": list(layout.adversaries),
        "roles": {int(k): v for k, v in layout.roles.items()},
    }
    return utility, info
