"""Scenario engine: composable client behaviors + valuation-robustness harness.

The paper evaluates contribution valuation on five fixed setups; this package
opens that up.  A :class:`Scenario` declaratively composes a base partition
recipe with :class:`ClientBehavior` transforms (free riders, label flippers,
feature noisers, duplicators, sybils, low-quality subsamples, stragglers) into
a client population, fingerprints it through the same content-address channel
as every other task (so the persistent utility store makes scenario reruns
training-free), and the robustness harness (:func:`run_robustness`) scores
every valuation algorithm on whether it still ranks the injected bad actors
last.  See ``docs/scenarios.md``.
"""

from repro.scenarios.behaviors import (
    BEHAVIOR_REGISTRY,
    BehaviorSpec,
    ClientBehavior,
    available_behaviors,
    register_behavior,
)
from repro.scenarios.scenario import (
    SCENARIO_DATASETS,
    SCENARIO_PARTITIONS,
    SCENARIO_REGISTRY,
    Scenario,
    ScenarioLayout,
    available_scenarios,
    build_scenario_task,
    get_scenario,
    register_scenario,
    resolve_scenario,
)
from repro.scenarios import catalog
from repro.scenarios.catalog import BUILTIN_SCENARIOS
from repro.scenarios.robustness import (
    RobustnessReport,
    adversaries_strictly_last,
    adversary_ranks,
    build_robustness_plan,
    precision_at_k,
    run_robustness,
)

__all__ = [
    "BEHAVIOR_REGISTRY",
    "BehaviorSpec",
    "ClientBehavior",
    "available_behaviors",
    "register_behavior",
    "SCENARIO_DATASETS",
    "SCENARIO_PARTITIONS",
    "SCENARIO_REGISTRY",
    "Scenario",
    "ScenarioLayout",
    "available_scenarios",
    "build_scenario_task",
    "get_scenario",
    "register_scenario",
    "resolve_scenario",
    "catalog",
    "BUILTIN_SCENARIOS",
    "RobustnessReport",
    "adversaries_strictly_last",
    "adversary_ranks",
    "build_robustness_plan",
    "precision_at_k",
    "run_robustness",
]
