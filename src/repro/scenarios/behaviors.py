"""Composable client behaviors: the building blocks of a scenario.

A :class:`BehaviorSpec` is a declarative, fingerprintable description of one
transform applied to chosen clients of a federated population — the things
that go wrong in real data markets and that every valuation method must be
robust against:

===================  =======================================================
``free_rider``       the client's dataset is replaced with an empty one
``label_flipper``    a fraction of the client's labels is flipped (poisoning)
``feature_noiser``   Gaussian noise is added to the client's features
``duplicator``       the client's data becomes a copy of another client's
``sybil``            extra clone clients of a target are appended
``low_quality``      the client's dataset is subsampled to a fraction
``straggler``        the client drops out of FL rounds with probability ``p``
===================  =======================================================

Dataset-level behaviors reuse the partition/noise machinery from
:mod:`repro.datasets`; ``straggler`` acts at
:meth:`repro.fl.client.FLClient.local_update` time via the ``client_dropout``
channel of :class:`~repro.fl.federation.FederatedTrainer`.

Behaviors are registered by kind (:data:`BEHAVIOR_REGISTRY`) so scenario
configs stay plain JSON: ``{"kind": "label_flipper", "clients": [3],
"params": {"fraction": 1.0}}``.  Each kind declares parameter defaults —
specs normalise their params against them, so two spellings of the same
behavior always share one fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.datasets import Dataset, add_feature_noise, flip_labels
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_fraction

BEHAVIOR_REGISTRY: Dict[str, "ClientBehavior"] = {}


def register_behavior(behavior: "ClientBehavior") -> "ClientBehavior":
    """Register a behavior kind (module-level, at import time)."""
    if behavior.kind in BEHAVIOR_REGISTRY:
        raise ValueError(f"behavior kind {behavior.kind!r} is already registered")
    BEHAVIOR_REGISTRY[behavior.kind] = behavior
    return behavior


def available_behaviors() -> list[str]:
    """Registered behavior kinds, sorted."""
    return sorted(BEHAVIOR_REGISTRY)


def _coerce_param(kind: str, key: str, value, default):
    """Coerce a behavior param to its default's canonical type.

    Integer-typed params reject fractional floats loudly instead of
    truncating (``source: 2.5`` must not silently mean client 2).
    """
    if isinstance(default, bool) or isinstance(value, bool):
        raise ValueError(f"behavior {kind!r} param {key!r} cannot be boolean")
    if isinstance(default, int):
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(
                f"behavior {kind!r} param {key!r} must be an integer, got {value}"
            )
        return int(value)
    if isinstance(default, float):
        return float(value)
    return value


@dataclass(frozen=True)
class BehaviorSpec:
    """One behavior applied to chosen clients — plain data, fingerprintable.

    Parameters
    ----------
    kind:
        Registered behavior kind (:func:`available_behaviors`).
    clients:
        Target client indices (into the population *at the point this
        behavior applies*, so clients appended by an earlier ``sybil`` can be
        targeted by a later behavior).
    params:
        Kind-specific parameters; missing keys take the kind's defaults and
        unknown keys are rejected loudly.
    adversarial:
        Whether the targets count as injected bad actors for the robustness
        metrics.  ``None`` uses the kind's default (e.g. ``free_rider`` yes,
        ``low_quality`` no).
    """

    kind: str
    clients: tuple
    params: Mapping = field(default_factory=dict)
    adversarial: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in BEHAVIOR_REGISTRY:
            raise ValueError(
                f"unknown behavior kind {self.kind!r}; choose from {available_behaviors()}"
            )
        clients = tuple(int(c) for c in self.clients)
        if not clients:
            raise ValueError(f"behavior {self.kind!r} needs at least one target client")
        if any(c < 0 for c in clients):
            raise ValueError(f"behavior {self.kind!r} has negative client indices")
        if len(set(clients)) != len(clients):
            raise ValueError(f"behavior {self.kind!r} lists a target client twice")
        object.__setattr__(self, "clients", clients)
        handler = BEHAVIOR_REGISTRY[self.kind]
        unknown = set(self.params) - set(handler.defaults)
        if unknown:
            raise ValueError(
                f"behavior {self.kind!r} does not accept params {sorted(unknown)}; "
                f"known: {sorted(handler.defaults)}"
            )
        # Normalise: defaults are part of the spec's identity and every value
        # is coerced to its default's type, so an explicit default value, an
        # elided one, and int/float spellings of the same number all
        # fingerprint identically (canonical JSON renders 1 and 1.0 apart).
        params = {
            key: _coerce_param(self.kind, key, value, handler.defaults[key])
            for key, value in {**handler.defaults, **dict(self.params)}.items()
        }
        handler.validate(params)
        object.__setattr__(self, "params", params)

    @property
    def handler(self) -> "ClientBehavior":
        return BEHAVIOR_REGISTRY[self.kind]

    @property
    def is_adversarial(self) -> bool:
        if self.adversarial is not None:
            return bool(self.adversarial)
        return self.handler.adversarial_by_default

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "clients": list(self.clients)}
        if self.params:
            payload["params"] = dict(self.params)
        if self.adversarial is not None:
            payload["adversarial"] = bool(self.adversarial)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BehaviorSpec":
        unknown = set(payload) - {"kind", "clients", "params", "adversarial"}
        if unknown:
            raise ValueError(f"unknown BehaviorSpec fields: {sorted(unknown)}")
        if "kind" not in payload or "clients" not in payload:
            raise ValueError("a behavior needs 'kind' and 'clients' fields")
        return cls(
            kind=payload["kind"],
            clients=tuple(payload["clients"]),
            params=dict(payload.get("params", {})),
            adversarial=payload.get("adversarial"),
        )

    def identity_payload(self) -> dict:
        """Canonical form folded into the scenario/task fingerprint.

        Deliberately excludes the ``adversarial`` flag: it only affects how
        the robustness metrics *score* a finished run, never the training
        data or FL behavior, so toggling it must not invalidate the
        persistent store's trained coalitions.
        """
        return {
            "kind": self.kind,
            "clients": list(self.clients),
            "params": dict(self.params),
        }


class ClientBehavior:
    """Handler for one behavior kind.

    Subclasses define parameter ``defaults``/``validate``, how many clients
    the behavior appends (:meth:`n_added`), and the actual dataset transform
    (:meth:`apply`, which mutates/extends the population's dataset list in
    place).  Population *layout* (who is an adversary, who straggles) is
    computed statically by :meth:`repro.scenarios.Scenario.layout` so the
    robustness harness never needs to build data to know the cast.
    """

    kind: str = ""
    adversarial_by_default: bool = True
    defaults: Mapping = {}

    def validate(self, params: Mapping) -> None:  # pragma: no cover - overridden
        pass

    def n_added(self, spec: BehaviorSpec) -> int:
        """How many clients this behavior appends to the population."""
        return 0

    def dropout(self, spec: BehaviorSpec) -> float:
        """Per-round dropout probability this behavior assigns its targets."""
        return 0.0

    def apply(
        self, datasets: List[Dataset], spec: BehaviorSpec, rng: np.random.Generator
    ) -> None:
        raise NotImplementedError

    def describe(self, spec: BehaviorSpec) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(spec.params.items()))
        targets = ",".join(str(c) for c in spec.clients)
        return f"{self.kind}({params}) -> clients {targets}" if params else (
            f"{self.kind} -> clients {targets}"
        )


def _check_targets(datasets: Sequence[Dataset], spec: BehaviorSpec) -> None:
    out_of_range = [c for c in spec.clients if c >= len(datasets)]
    if out_of_range:
        raise ValueError(
            f"behavior {spec.kind!r} targets unknown clients {out_of_range} "
            f"(population has {len(datasets)} clients at this point)"
        )


class FreeRider(ClientBehavior):
    """Replace the targets' datasets with empty ones (classic free riders)."""

    kind = "free_rider"
    adversarial_by_default = True
    defaults: Mapping = {}

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        for client in spec.clients:
            datasets[client] = Dataset.empty_like(
                datasets[client], name=f"{datasets[client].name}/free-rider"
            )


class LabelFlipper(ClientBehavior):
    """Flip a fraction of the targets' labels (label poisoning)."""

    kind = "label_flipper"
    adversarial_by_default = True
    defaults: Mapping = {"fraction": 1.0}

    def validate(self, params):
        check_fraction(params["fraction"], "label_flipper fraction")

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        for client, client_rng in zip(spec.clients, spawn_rng(rng, len(spec.clients))):
            datasets[client] = flip_labels(
                datasets[client], spec.params["fraction"], seed=client_rng
            )


class FeatureNoiser(ClientBehavior):
    """Add scaled Gaussian noise to the targets' features."""

    kind = "feature_noiser"
    adversarial_by_default = True
    defaults: Mapping = {"scale": 1.0}

    def validate(self, params):
        if params["scale"] < 0:
            raise ValueError(
                f"feature_noiser scale must be non-negative, got {params['scale']}"
            )

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        for client, client_rng in zip(spec.clients, spawn_rng(rng, len(spec.clients))):
            datasets[client] = add_feature_noise(
                datasets[client], spec.params["scale"], seed=client_rng
            )


class Duplicator(ClientBehavior):
    """Replace the targets' datasets with copies of a source client's shards."""

    kind = "duplicator"
    adversarial_by_default = True
    defaults: Mapping = {"source": 0}

    def validate(self, params):
        if int(params["source"]) < 0:
            raise ValueError(f"duplicator source must be >= 0, got {params['source']}")

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        source = int(spec.params["source"])
        if source >= len(datasets):
            raise ValueError(
                f"duplicator source client {source} does not exist "
                f"(population has {len(datasets)} clients)"
            )
        if source in spec.clients:
            raise ValueError("duplicator source cannot be one of its own targets")
        for client in spec.clients:
            datasets[client] = datasets[source].copy()


class Sybil(ClientBehavior):
    """Append ``n_clones`` new clients per target, each holding a copy of it."""

    kind = "sybil"
    adversarial_by_default = True
    defaults: Mapping = {"n_clones": 2}

    def validate(self, params):
        if int(params["n_clones"]) < 1:
            raise ValueError(f"sybil n_clones must be >= 1, got {params['n_clones']}")

    def n_added(self, spec):
        return int(spec.params["n_clones"]) * len(spec.clients)

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        # Append in (target, clone) order — the same order Scenario.layout()
        # assigns the new indices, so roles and data line up.
        for client in spec.clients:
            for _ in range(int(spec.params["n_clones"])):
                datasets.append(datasets[client].copy())


class LowQuality(ClientBehavior):
    """Subsample the targets' datasets to a fraction of their samples."""

    kind = "low_quality"
    adversarial_by_default = False
    defaults: Mapping = {"fraction": 0.25}

    def validate(self, params):
        check_fraction(params["fraction"], "low_quality fraction", inclusive=False)

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)
        fraction = float(spec.params["fraction"])
        for client, client_rng in zip(spec.clients, spawn_rng(rng, len(spec.clients))):
            dataset = datasets[client]
            if len(dataset) == 0:
                # Composed after e.g. free_rider: nothing to subsample.
                continue
            keep = max(1, int(round(fraction * len(dataset))))
            indices = np.sort(client_rng.choice(len(dataset), size=keep, replace=False))
            datasets[client] = dataset.subset(
                indices, name=f"{dataset.name}/low-quality"
            )


class Straggler(ClientBehavior):
    """Make the targets skip FL rounds with probability ``dropout``.

    A dataset no-op: the effect happens at ``FLClient.local_update`` time
    through the trainer's ``client_dropout`` channel (a dropped round reports
    the global parameters back unchanged, diluting that round's aggregate).
    """

    kind = "straggler"
    adversarial_by_default = True
    defaults: Mapping = {"dropout": 0.5}

    def validate(self, params):
        probability = float(params["dropout"])
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"straggler dropout must lie in (0, 1], got {probability}"
            )

    def dropout(self, spec):
        return float(spec.params["dropout"])

    def apply(self, datasets, spec, rng):
        _check_targets(datasets, spec)


register_behavior(FreeRider())
register_behavior(LabelFlipper())
register_behavior(FeatureNoiser())
register_behavior(Duplicator())
register_behavior(Sybil())
register_behavior(LowQuality())
register_behavior(Straggler())
