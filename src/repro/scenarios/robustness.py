"""Valuation-robustness harness: score algorithms against scenario attacks.

The one question a contribution-valuation method must answer in production is
*does it still rank the bad actors last?*  This module runs an algorithm ×
scenario grid through the resumable :func:`~repro.experiments.pipeline.run_plan`
pipeline (every scenario paired with its behavior-free *clean* counterpart)
and reduces each cell's value vector to three robustness metrics:

* **adversary ranks** — each injected bad actor's rank from the bottom of the
  valuation (1 = lowest-valued client), plus a strictness flag that is true
  only when *every* adversary is valued strictly below *every* honest client;
* **precision@k** — with ``k`` = number of injected adversaries, the fraction
  of the bottom-``k`` clients that really are adversaries (the "audit the k
  cheapest clients" decision rule); and
* **rank correlation vs clean** — Spearman correlation between the scenario
  valuation and the clean-counterpart valuation over the base clients: how
  much the attack disturbed the ordering of the whole federation.

Because every cell runs through the manifest-tracked pipeline with the
persistent utility store attached, a robustness campaign is interruptible,
resumable, and free to rerun: the warm rerun performs zero FL trainings.

Imports from :mod:`repro.experiments` are function-local — the experiments
layer imports :mod:`repro.scenarios` for the ``"scenario"`` task kind, so
module-level imports here would be circular.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.metrics import rank_correlation
from repro.scenarios.scenario import Scenario, resolve_scenario


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def adversary_ranks(values: np.ndarray, adversaries: Iterable[int]) -> list[int]:
    """Rank-from-the-bottom of each adversary (1 = lowest-valued client).

    Returned in ascending order of adversary index.  Ties are broken by
    client index (stable argsort), so equal values share no rank.
    """
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    rank_of = {int(client): position + 1 for position, client in enumerate(order)}
    return [rank_of[int(a)] for a in sorted(int(a) for a in adversaries)]


def precision_at_k(
    values: np.ndarray, adversaries: Iterable[int], k: Optional[int] = None
) -> float:
    """Fraction of the bottom-``k`` valued clients that are injected adversaries.

    ``k`` defaults to the number of adversaries, making 1.0 mean "auditing
    the k cheapest clients catches every bad actor".
    """
    adversaries = {int(a) for a in adversaries}
    if not adversaries:
        return 1.0
    values = np.asarray(values, dtype=float)
    if k is None:
        k = len(adversaries)
    if not 1 <= k <= len(values):
        raise ValueError(f"k must lie in [1, {len(values)}], got {k}")
    bottom = set(np.argsort(values, kind="stable")[:k].tolist())
    return len(bottom & adversaries) / float(k)


def adversaries_strictly_last(values: np.ndarray, adversaries: Iterable[int]) -> bool:
    """True iff every adversary is valued strictly below every honest client."""
    adversaries = {int(a) for a in adversaries}
    if not adversaries:
        return True
    values = np.asarray(values, dtype=float)
    honest = [i for i in range(len(values)) if i not in adversaries]
    if not honest:
        return True
    return float(values[list(adversaries)].max()) < float(values[honest].min())


# --------------------------------------------------------------------------- #
# Report
# --------------------------------------------------------------------------- #
@dataclass
class RobustnessReport:
    """Outcome of one :func:`run_robustness` campaign."""

    run_dir: str
    rows: List[dict] = field(default_factory=list)
    cells_run: int = 0
    cells_resumed: int = 0
    cells_skipped: int = 0
    cells_continued: int = 0
    fl_trainings: int = 0
    store_hits: int = 0

    def to_dict(self) -> dict:
        return {
            "run_dir": self.run_dir,
            "cells_run": self.cells_run,
            "cells_resumed": self.cells_resumed,
            "cells_skipped": self.cells_skipped,
            "cells_continued": self.cells_continued,
            "fl_trainings": self.fl_trainings,
            "store_hits": self.store_hits,
            "rows": self.rows,
        }

    def scenario_rows(self, scenario: str) -> list[dict]:
        return [row for row in self.rows if row["scenario"] == scenario]

    def row(self, scenario: str, algorithm: str) -> dict:
        for candidate in self.rows:
            if (
                candidate["scenario"] == scenario
                and candidate["algorithm"] == algorithm
            ):
                return candidate
        raise KeyError(f"no robustness row for {scenario!r} × {algorithm!r}")


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def build_robustness_plan(
    scenarios: Sequence,
    algorithms: Optional[Sequence[str]] = None,
    model: str = "logistic",
    scale: str = "tiny",
    seed: int = 0,
    n_workers: int = 1,
    backend: Optional[str] = None,
    name: str = "robustness",
):
    """The (clean ∪ adversarial) task grid of a robustness campaign, as a plan.

    Clean counterparts are deduplicated by content fingerprint, so scenarios
    sharing a base recipe contribute a single set of clean cells.
    """
    from repro.experiments.pipeline import DEFAULT_ALGORITHMS, ExperimentPlan
    from repro.experiments.specs import TaskSpec

    resolved = [resolve_scenario(s) for s in scenarios]
    if not resolved:
        raise ValueError("a robustness campaign needs at least one scenario")
    names = [s.name for s in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in campaign: {names}")

    specs, seen = [], set()
    pairs = []  # (scenario, adversarial spec, clean spec)
    for scenario in resolved:
        clean_spec = TaskSpec(
            kind="scenario", scenario=scenario.clean().to_dict(),
            model=model, scale=scale, seed=seed,
        )
        adv_spec = TaskSpec(
            kind="scenario", scenario=scenario.to_dict(),
            model=model, scale=scale, seed=seed,
        )
        for spec in (clean_spec, adv_spec):
            fingerprint = spec.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                specs.append(spec)
        pairs.append((scenario, adv_spec, clean_spec))

    plan = ExperimentPlan(
        tasks=tuple(specs),
        algorithms=tuple(algorithms) if algorithms else DEFAULT_ALGORITHMS,
        name=name,
        n_workers=n_workers,
        backend=backend,
    )
    return plan, pairs


def _cell_payload(run_dir: str, cell: Optional[dict]) -> Optional[dict]:
    if cell is None or cell.get("status") != "done":
        return None
    path = os.path.join(run_dir, cell["result_file"])
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def run_robustness(
    scenarios: Sequence,
    run_dir: str,
    algorithms: Optional[Sequence[str]] = None,
    model: str = "logistic",
    scale: str = "tiny",
    seed: int = 0,
    store=None,
    n_workers: int = 1,
    backend: Optional[str] = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
    stop_rule=None,
    checkpoint_every: int = 1,
    on_snapshot=None,
    telemetry=None,
) -> RobustnessReport:
    """Run an algorithm × scenario grid and score every cell's robustness.

    ``scenarios`` may mix registered names, :class:`Scenario` objects and
    definition dicts.  Every scenario is paired with its clean counterpart;
    both run through the resumable pipeline into ``run_dir`` (one manifest-
    tracked cell per task × algorithm), then each adversarial cell's value
    vector is scored.  Cells the pipeline skipped (inapplicable algorithms)
    surface as ``status: "skipped"`` rows.

    ``stop_rule`` / ``checkpoint_every`` / ``on_snapshot`` / ``telemetry``
    are forwarded to
    :func:`~repro.experiments.pipeline.run_plan`: cells can stop early on a
    convergence rule (their robustness is then scored on the early-stopped
    values) and interrupted cells resume from their estimator checkpoints.
    """
    from repro.experiments.pipeline import cell_id, load_manifest, run_plan

    plan, pairs = build_robustness_plan(
        scenarios,
        algorithms=algorithms,
        model=model,
        scale=scale,
        seed=seed,
        n_workers=n_workers,
        backend=backend,
    )
    run_report = run_plan(
        plan,
        run_dir,
        store=store,
        resume=resume,
        log=log,
        stop_rule=stop_rule,
        checkpoint_every=checkpoint_every,
        on_snapshot=on_snapshot,
        telemetry=telemetry,
    )
    manifest = load_manifest(run_dir)

    report = RobustnessReport(
        run_dir=run_dir,
        cells_run=run_report.cells_run,
        cells_resumed=run_report.cells_resumed,
        cells_skipped=run_report.cells_skipped,
        cells_continued=run_report.cells_continued,
        fl_trainings=run_report.fl_trainings,
        store_hits=run_report.store_hits,
    )
    for scenario, adv_spec, clean_spec in pairs:
        layout = scenario.layout()
        adv_fp, clean_fp = adv_spec.fingerprint(), clean_spec.fingerprint()
        for algorithm in plan.algorithms:
            adv_cell = manifest["cells"].get(cell_id(adv_fp, algorithm))
            payload = _cell_payload(run_dir, adv_cell)
            if payload is None:
                report.rows.append(
                    {
                        "scenario": scenario.name,
                        "algorithm": algorithm,
                        "status": "skipped",
                        "reason": (adv_cell or {}).get("reason", "cell not computed"),
                    }
                )
                continue
            values = np.asarray(payload["result"]["values"], dtype=float)
            row = {
                "scenario": scenario.name,
                "algorithm": algorithm,
                "status": "done",
                "n": len(values),
                "adversaries": list(layout.adversaries),
                "adversary_ranks": adversary_ranks(values, layout.adversaries),
                "precision_at_k": precision_at_k(values, layout.adversaries),
                "strictly_last": adversaries_strictly_last(values, layout.adversaries),
                "rank_corr_clean": None,
                "values": values.tolist(),
                "time_s": float(payload["result"]["elapsed_seconds"]),
                "evaluations": int(payload["result"]["utility_evaluations"]),
                "store_hits": int(payload.get("store_hits", 0)),
            }
            clean_payload = _cell_payload(
                run_dir, manifest["cells"].get(cell_id(clean_fp, algorithm))
            )
            if clean_payload is not None:
                clean_values = np.asarray(
                    clean_payload["result"]["values"], dtype=float
                )
                shared = min(layout.base_clients, len(values), len(clean_values))
                if shared >= 2:
                    row["rank_corr_clean"] = rank_correlation(
                        values[:shared], clean_values[:shared]
                    )
            report.rows.append(row)
    return report
