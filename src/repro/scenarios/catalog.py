"""Built-in scenario catalog.

A starting set of named client-population stress tests, each exercising one
behavior family (plus a mixed one).  All use a small MNIST-style IID base so
the exact MC-Shapley ground truth stays tractable (≤ 2⁶ coalitions) even at
the ``tiny`` scale, which is what lets the robustness harness assert *strict*
rankings rather than tendencies.  They are templates as much as fixtures:
``repro run --config`` plans can define arbitrary variations inline with the
same JSON schema (see ``docs/scenarios.md``).
"""

from __future__ import annotations

from repro.scenarios.behaviors import BehaviorSpec
from repro.scenarios.scenario import Scenario, register_scenario

BUILTIN_SCENARIOS = (
    Scenario(
        name="free-rider",
        n_clients=4,
        behaviors=(BehaviorSpec(kind="free_rider", clients=(3,)),),
        description="one client contributes an empty dataset",
    ),
    Scenario(
        name="label-flippers",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="label_flipper", clients=(2, 3), params={"fraction": 1.0}),
        ),
        description="two clients poison the federation with fully flipped labels",
    ),
    Scenario(
        name="noisy-features",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="feature_noiser", clients=(3,), params={"scale": 3.0}),
        ),
        description="one client's features are drowned in Gaussian noise",
    ),
    Scenario(
        name="duplicators",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="duplicator", clients=(2, 3), params={"source": 0}),
        ),
        description="two clients resell copies of client 0's shards",
    ),
    Scenario(
        name="sybil-attack",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="sybil", clients=(0,), params={"n_clones": 2}),
        ),
        description="client 0 splits itself into three identities for extra payout",
    ),
    Scenario(
        name="low-quality",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="low_quality", clients=(2, 3), params={"fraction": 0.2}),
        ),
        description="two clients hold only a small subsample of a fair shard",
    ),
    Scenario(
        name="stragglers",
        n_clients=4,
        behaviors=(
            BehaviorSpec(kind="straggler", clients=(3,), params={"dropout": 0.75}),
        ),
        description="one client misses three quarters of its FL rounds",
    ),
    Scenario(
        name="mixed-adversaries",
        n_clients=5,
        behaviors=(
            BehaviorSpec(kind="free_rider", clients=(4,)),
            BehaviorSpec(kind="label_flipper", clients=(3,), params={"fraction": 1.0}),
            BehaviorSpec(kind="straggler", clients=(2,), params={"dropout": 0.5}),
        ),
        description="free rider + label flipper + straggler in one federation",
    ),
    Scenario(
        name="skewed-free-rider",
        n_clients=4,
        partition="dirichlet",
        partition_params={"alpha": 0.5},
        behaviors=(BehaviorSpec(kind="free_rider", clients=(3,)),),
        description="free rider hiding inside a Dirichlet non-IID federation",
    ),
)

for _scenario in BUILTIN_SCENARIOS:
    register_scenario(_scenario)
