"""The fleet worker: claim → evaluate → deposit → heartbeat, forever.

``run_worker`` is the body of the ``repro worker <queue-dir>`` CLI verb and
of every worker the coordinator spawns.  Each claimed batch is evaluated
through a per-run :class:`~repro.parallel.batch_oracle.BatchUtilityOracle`
(serial or vectorized executor inside the worker), which deposits every
trained utility into the shared persistent store *before* the batch is
completed — the store, not the queue, is where results live, so a worker may
die at any instruction and the only cost is re-evaluating whatever it had
not yet deposited.

Dedupe discipline (the zero-duplicated-trainings invariant):

1. before evaluating, the worker looks every coalition up through its
   cache/store tier — anything a sibling (or a dead predecessor) already
   deposited is a store hit and is *not* trained again;
2. utilities are written through to the store as they are computed (the
   oracle's deposit protocol);
3. only after a coalition's utility is durably in the store is it recorded
   in the queue's trainings ledger.

A SIGKILL between (2) and (3) therefore under-counts the ledger but can
never double-train: the requeued batch finds the utility in the store.

Lease renewal runs on a daemon heartbeat thread at a third of the lease
interval; a worker that loses its lease anyway (e.g. a pathological stall)
finishes the batch — its deposits are idempotent — and its ``complete`` is
simply ignored by the queue.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.fleet.queue import Claim, LeaseQueue, WorkPayload
from repro.parallel.batch_oracle import BatchUtilityOracle
from repro.store import open_store, utility_key
from repro.telemetry import RunJournal, Telemetry, Tracer

#: how many runs' unpickled contexts one worker keeps alive
_CONTEXT_CACHE = 4


@dataclass
class WorkerStats:
    """What one ``run_worker`` invocation did (returned for tests/CLI)."""

    worker_id: str = ""
    batches: int = 0
    trainings: int = 0
    store_hits: int = 0
    released: int = 0
    renewals_lost: int = 0
    runs_seen: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class _RunContext:
    """One run's unpickled payload: oracle + store handle + telemetry."""

    def __init__(self, payload: WorkPayload, backend: str, n_workers: int) -> None:
        self.payload = payload
        self.store = open_store(payload.store_path, payload.store_backend)
        self.oracle = BatchUtilityOracle(
            payload.evaluator,
            n_workers=n_workers,
            executor=backend,
            store=self.store,
            store_namespace=payload.namespace,
        )
        self.telemetry: Optional[Telemetry] = None
        if payload.journal_path:
            # Spans from this worker land in the coordinating run's journal,
            # parented under the span that registered the run — `repro
            # trace` then shows fleet batches nested inside the run tree.
            journal = RunJournal(payload.journal_path)
            self.telemetry = Telemetry(journal=journal, tracer=Tracer(journal))

    def span(self, name: str, parent: bool = True, **attrs):
        if self.telemetry is None:
            return None
        span = self.telemetry.tracer.span(name, **attrs)
        if parent and span.parent_id is None:
            span.parent_id = self.payload.parent_span
        return span

    def close(self) -> None:
        self.oracle.close()
        self.store.close()
        if self.telemetry is not None:
            self.telemetry.close()


class _Heartbeat:
    """Daemon thread renewing one claim's lease at a third of its length."""

    def __init__(
        self, queue: LeaseQueue, claim: Claim, worker_id: str, lease_seconds: float
    ) -> None:
        self._queue = queue
        self._claim = claim
        self._worker_id = worker_id
        self._lease_seconds = float(lease_seconds)
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._beat, daemon=True)
        self._thread.start()

    def _beat(self) -> None:
        interval = max(0.05, self._lease_seconds / 3.0)
        while not self._stop.wait(interval):
            try:
                renewed = self._queue.renew(
                    self._claim.batch_id, self._worker_id, self._lease_seconds
                )
            except sqlite3.OperationalError:
                continue  # transient contention; the next beat retries
            if not renewed:
                self.lost = True

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def default_worker_id() -> str:
    """Stable-enough identity for one worker process.

    Host + pid uniquely names a live worker on a fleet; both are queue
    bookkeeping (who holds which lease) and telemetry, never inputs to any
    value or fingerprint.
    """
    pid = os.getpid()  # repro: allow[RPR002] reason=worker identity is queue bookkeeping, telemetry-only
    try:
        host = socket.gethostname()  # repro: allow[RPR002] reason=worker identity is queue bookkeeping, telemetry-only
    except OSError:  # pragma: no cover - hostname lookup is best-effort
        host = "host"
    return f"{host}-{pid}"


def run_worker(
    queue_dir: str,
    backend: str = "serial",
    n_workers: int = 1,
    lease_seconds: float = 30.0,
    poll_interval: float = 0.05,
    max_batches: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    stop_when_finished: bool = False,
    worker_id: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    stop_event: Optional[threading.Event] = None,
) -> WorkerStats:
    """Drain a fleet queue until stopped.

    Parameters
    ----------
    backend, n_workers:
        The executor each batch is evaluated with *inside* this worker —
        ``"serial"`` (default) or ``"vectorized"`` are the intended choices;
        thread/process pools compose too.
    lease_seconds:
        Lease length requested per claim; renewed at a third of this while a
        batch evaluates.
    max_batches:
        Stop after this many completed batches (tests; ``None`` = unlimited).
    idle_timeout:
        Exit after this many seconds without claimable work (``None`` =
        wait forever).
    stop_when_finished:
        Exit once every registered run is finished and no batches remain —
        how coordinator-spawned workers terminate.
    stop_event:
        Optional :class:`threading.Event`; setting it makes the worker exit
        before its next claim — how in-process (thread) workers terminate.
    """
    say = log if log is not None else (lambda message: None)
    stats = WorkerStats(worker_id=worker_id or default_worker_id())
    queue = LeaseQueue(queue_dir)
    pid = os.getpid()  # repro: allow[RPR002] reason=worker heartbeat row is telemetry-only
    contexts: Dict[str, _RunContext] = {}
    idle_clock: Optional[float] = None
    try:
        queue.register_worker(stats.worker_id, pid=pid)
        say(f"worker {stats.worker_id}: serving {queue.path} ({backend})")
        while True:
            if stop_event is not None and stop_event.is_set():
                break
            if max_batches is not None and stats.batches >= max_batches:
                break
            claim = queue.claim(stats.worker_id, lease_seconds)
            if claim is None:
                if stop_when_finished and not queue.active_runs():
                    if queue.counts().outstanding == 0:
                        break
                now = time.monotonic()
                if idle_timeout is not None:
                    if idle_clock is None:
                        idle_clock = now
                    elif now - idle_clock >= idle_timeout:
                        say(f"worker {stats.worker_id}: idle for {idle_timeout}s, exiting")
                        break
                queue.touch_worker(stats.worker_id)
                time.sleep(poll_interval)
                continue
            idle_clock = None
            _serve_claim(queue, claim, contexts, backend, n_workers, lease_seconds, stats, say)
    finally:
        for context in contexts.values():
            context.close()
        queue.close()
    return stats


def _context_for(
    queue: LeaseQueue,
    contexts: Dict[str, _RunContext],
    run_id: str,
    backend: str,
    n_workers: int,
    stats: WorkerStats,
) -> _RunContext:
    context = contexts.get(run_id)
    if context is None:
        context = _RunContext(queue.run_payload(run_id), backend, n_workers)
        if len(contexts) >= _CONTEXT_CACHE:
            evicted_id = next(iter(contexts))
            contexts.pop(evicted_id).close()
        contexts[run_id] = context
        stats.runs_seen += 1
    return context


def _serve_claim(
    queue: LeaseQueue,
    claim: Claim,
    contexts: Dict[str, _RunContext],
    backend: str,
    n_workers: int,
    lease_seconds: float,
    stats: WorkerStats,
    say: Callable[[str], None],
) -> None:
    """Evaluate one leased batch and retire it."""
    context = _context_for(queue, contexts, claim.run_id, backend, n_workers, stats)
    claim_span = context.span(
        "fleet.claim", batch=claim.batch_id, size=len(claim.coalitions),
        attempt=claim.attempts, worker=stats.worker_id,
    )
    if claim_span is not None:
        claim_span.__enter__()
    heartbeat = _Heartbeat(queue, claim, stats.worker_id, lease_seconds)
    try:
        cache = context.oracle.cache
        # Anything already deposited (a sibling, or this batch's dead former
        # owner) is a store hit here and will not be trained below.
        missing = [c for c in claim.coalitions if cache.lookup(c) is None]
        stats.store_hits += len(claim.coalitions) - len(missing)
        batch_span = context.span(
            "fleet.batch", batch=claim.batch_id, backend=backend,
            size=len(claim.coalitions), misses=len(missing),
        )
        try:
            if batch_span is not None:
                batch_span.__enter__()
            context.oracle.evaluate_batch(claim.coalitions)
        except Exception as error:  # repro: allow[RPR007] reason=reported via queue.release(error=...); surfaces through the coordinator after max_attempts
            if batch_span is not None:
                batch_span.__exit__(type(error), error, None)
            queue.release(claim.batch_id, stats.worker_id, error=repr(error))
            stats.released += 1
            say(f"worker {stats.worker_id}: released {claim.batch_id}: {error!r}")
            return
        if batch_span is not None:
            batch_span.__exit__(None, None, None)
        # Deposits are durable (evaluate_batch wrote through the store);
        # only now do the trainings enter the ledger — a kill between the
        # two can under-count, never double-train.
        namespace = context.payload.namespace
        for coalition in missing:
            queue.record_training(
                utility_key(namespace, coalition), stats.worker_id, claim.batch_id
            )
        stats.trainings += len(missing)
        if heartbeat.lost:
            stats.renewals_lost += 1
        if queue.complete(claim.batch_id, stats.worker_id):
            stats.batches += 1
            queue.touch_worker(stats.worker_id, batches_done=1)
    finally:
        heartbeat.stop()
        if claim_span is not None:
            claim_span.__exit__(None, None, None)


__all__ = ["WorkerStats", "default_worker_id", "run_worker"]
