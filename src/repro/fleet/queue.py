"""The durable fleet work queue: a SQLite claim table with leases.

One SQLite file under the queue directory holds everything a fleet needs to
coordinate: registered *runs* (a pickled work payload describing how to
evaluate one oracle's coalitions), *batches* of coalitions to evaluate,
a *trainings* ledger, and a *workers* heartbeat table.

The protocol is classic lease-based work stealing:

``claim``
    One worker atomically (``BEGIN IMMEDIATE``) takes the oldest pending
    batch, marking it leased with a wall-clock deadline.  Expired leases are
    requeued inside the same transaction, so a claim can never race a
    requeue into double-delivery.
``renew``
    The owner extends its lease while a long batch evaluates (workers
    heartbeat at a fraction of the lease).
``complete`` / ``release``
    The owner retires the batch (results are already durable in the shared
    utility store) or hands it back after a failed evaluation.
``lease expiry → requeue``
    A worker that dies mid-batch simply stops renewing; once the deadline
    passes, :meth:`requeue_expired` (run by the coordinator poll loop and by
    every claim) returns the batch to pending.  A batch whose delivery
    attempts exceed ``max_attempts`` is marked failed instead, and the
    coordinator surfaces the stored error.

Durability of *results* is the utility store's job, not the queue's: workers
deposit every trained utility into the shared content-addressed store before
completing a batch, so a requeued batch re-trains only what its dead owner
had not yet deposited.  The ``trainings`` ledger records one row per
deposited training — ``COUNT(*) == COUNT(DISTINCT key)`` is the fleet's
zero-duplicated-trainings invariant, checked by tests and the crash smoke.

All timestamps in this module are wall-clock *lease bookkeeping and
telemetry* — they decide when work is handed out again and what ``repro``
reports, and never touch a fingerprint, seed or utility value.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.store.sqlite import is_busy_error, run_with_busy_retry

QUEUE_FILENAME = "queue.sqlite"

#: delivery attempts before a batch is marked failed instead of requeued
DEFAULT_MAX_ATTEMPTS = 5

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    payload    BLOB NOT NULL,
    state      TEXT NOT NULL DEFAULT 'active',
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS batches (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    batch_id    TEXT NOT NULL UNIQUE,
    run_id      TEXT NOT NULL,
    coalitions  TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    owner       TEXT,
    deadline    REAL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    last_error  TEXT,
    enqueued_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_batches_status ON batches (status, seq);
CREATE INDEX IF NOT EXISTS idx_batches_run ON batches (run_id);
CREATE TABLE IF NOT EXISTS trainings (
    key         TEXT NOT NULL,
    worker      TEXT NOT NULL,
    batch_id    TEXT NOT NULL,
    recorded_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS workers (
    worker_id    TEXT PRIMARY KEY,
    pid          INTEGER,
    started_at   REAL NOT NULL,
    last_seen    REAL NOT NULL,
    batches_done INTEGER NOT NULL DEFAULT 0
);
"""


@dataclass(frozen=True)
class WorkPayload:
    """Everything a worker needs to evaluate one run's batches.

    The evaluator must be picklable (the same requirement the process
    backend imposes); the store travels as a *path + backend name*, never as
    a live handle — each worker opens its own connection.  ``journal_path``
    and ``parent_span`` let worker-side ``fleet.claim``/``fleet.batch``
    spans land in the coordinating run's telemetry journal.
    """

    evaluator: object
    store_path: str
    store_backend: str
    namespace: str
    journal_path: Optional[str] = None
    parent_span: Optional[str] = None

    def to_bytes(self) -> bytes:
        try:
            return pickle.dumps(self)
        except Exception as error:
            raise ValueError(
                "fleet work payloads must be picklable (RPR004): the "
                "evaluator travels to worker processes exactly like the "
                f"process backend's — {error}"
            ) from error

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WorkPayload":
        payload = pickle.loads(blob)
        if not isinstance(payload, cls):
            raise TypeError(f"queue payload is not a WorkPayload: {type(payload)!r}")
        return payload


@dataclass(frozen=True)
class Claim:
    """One leased batch, as handed to a worker."""

    batch_id: str
    run_id: str
    seq: int
    coalitions: Tuple[frozenset, ...]
    attempts: int
    deadline: float


@dataclass
class QueueCounts:
    """Batch counts per status (one run or the whole queue)."""

    pending: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)

    @property
    def outstanding(self) -> int:
        return self.pending + self.leased


def _encode_coalitions(coalitions: Sequence[frozenset]) -> str:
    return json.dumps([sorted(int(c) for c in coalition) for coalition in coalitions])


def _decode_coalitions(blob: str) -> Tuple[frozenset, ...]:
    return tuple(frozenset(members) for members in json.loads(blob))


class LeaseQueue:
    """Thread- and process-safe handle on one fleet queue directory.

    A single connection guarded by an internal lock serves all threads of
    this process; cross-process atomicity comes from ``BEGIN IMMEDIATE``
    transactions plus the store module's bounded busy retry.
    """

    def __init__(
        self,
        queue_dir: str,
        timeout: float = 10.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.queue_dir = str(queue_dir)
        self.max_attempts = int(max_attempts)
        os.makedirs(self.queue_dir, exist_ok=True)
        self.path = os.path.join(self.queue_dir, QUEUE_FILENAME)
        self._lock = threading.RLock()
        # isolation_level=None: explicit BEGIN IMMEDIATE below; the sqlite3
        # module's implicit transaction management would defer lock
        # acquisition and turn claims into lost-update races.
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False, isolation_level=None
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        run_with_busy_retry(lambda: self._connection.executescript(_SCHEMA))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        # Lease deadlines and heartbeats are wall-clock *queue bookkeeping*:
        # they decide when work is re-delivered, never what any value is.
        return time.time()  # repro: allow[RPR002] reason=lease timestamps are queue telemetry, not identity

    def _transaction(self, operation):
        """Run ``operation(connection)`` inside BEGIN IMMEDIATE, with retry."""

        def attempt():
            with self._lock:
                self._connection.execute("BEGIN IMMEDIATE")
                try:
                    result = operation(self._connection)
                    self._connection.execute("COMMIT")
                    return result
                except BaseException:
                    self._connection.execute("ROLLBACK")
                    raise

        return run_with_busy_retry(attempt)

    def _query(self, sql: str, params: tuple = ()) -> List[tuple]:
        def attempt():
            with self._lock:
                return self._connection.execute(sql, params).fetchall()

        return run_with_busy_retry(attempt)

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def register_run(self, run_id: str, payload: WorkPayload) -> None:
        blob = payload.to_bytes()

        def op(connection):
            connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, payload, state, created_at) "
                "VALUES (?, ?, 'active', ?)",
                (run_id, blob, self._now()),
            )

        self._transaction(op)

    def run_payload(self, run_id: str) -> WorkPayload:
        rows = self._query("SELECT payload FROM runs WHERE run_id = ?", (run_id,))
        if not rows:
            raise KeyError(f"unknown run {run_id!r} in queue {self.path}")
        return WorkPayload.from_bytes(rows[0][0])

    def finish_run(self, run_id: str) -> None:
        self._transaction(
            lambda c: c.execute(
                "UPDATE runs SET state = 'finished' WHERE run_id = ?", (run_id,)
            )
        )

    def active_runs(self) -> List[str]:
        return [
            row[0]
            for row in self._query("SELECT run_id FROM runs WHERE state = 'active'")
        ]

    # ------------------------------------------------------------------ #
    # Enqueue / claim / renew / complete
    # ------------------------------------------------------------------ #
    def enqueue(
        self, run_id: str, batches: Sequence[Sequence[frozenset]]
    ) -> List[str]:
        """Append batches for ``run_id``; returns their batch ids (in order)."""
        now = self._now()

        def op(connection) -> List[str]:
            ids: List[str] = []
            for batch in batches:
                cursor = connection.execute(
                    "INSERT INTO batches (batch_id, run_id, coalitions, status, "
                    "attempts, enqueued_at) VALUES (?, ?, ?, 'pending', 0, ?)",
                    # The rowid-derived id is assigned inside the transaction,
                    # so it is unique across concurrent enqueuers.
                    (f"pending-{run_id}", run_id, _encode_coalitions(batch), now),
                )
                batch_id = f"{run_id}:{cursor.lastrowid}"
                connection.execute(
                    "UPDATE batches SET batch_id = ? WHERE seq = ?",
                    (batch_id, cursor.lastrowid),
                )
                ids.append(batch_id)
            return ids

        return self._transaction(op)

    def _requeue_expired_in(self, connection, now: float) -> Tuple[int, int]:
        """Requeue/fail expired leases; returns (requeued, newly_failed)."""
        requeued = connection.execute(
            "UPDATE batches SET status = 'pending', owner = NULL, deadline = NULL "
            "WHERE status = 'leased' AND deadline < ? AND attempts < ?",
            (now, self.max_attempts),
        ).rowcount
        failed = connection.execute(
            "UPDATE batches SET status = 'failed', owner = NULL, deadline = NULL, "
            "last_error = 'lease expired after ' || attempts || ' delivery attempts' "
            "WHERE status = 'leased' AND deadline < ?",
            (now,),
        ).rowcount
        return max(requeued, 0), max(failed, 0)

    def requeue_expired(self) -> Tuple[int, int]:
        """Return dead workers' leased batches to pending.

        Returns ``(requeued, newly_failed)`` — failed meaning the batch ran
        out of delivery attempts and will surface as an error.
        """
        now = self._now()
        return self._transaction(lambda c: self._requeue_expired_in(c, now))

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Claim]:
        """Atomically lease the oldest pending batch, or ``None`` if idle."""
        now = self._now()

        def op(connection) -> Optional[Claim]:
            self._requeue_expired_in(connection, now)
            row = connection.execute(
                "SELECT seq, batch_id, run_id, coalitions, attempts FROM batches "
                "WHERE status = 'pending' ORDER BY seq LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            seq, batch_id, run_id, coalitions, attempts = row
            deadline = now + float(lease_seconds)
            connection.execute(
                "UPDATE batches SET status = 'leased', owner = ?, deadline = ?, "
                "attempts = attempts + 1 WHERE seq = ?",
                (worker_id, deadline, seq),
            )
            return Claim(
                batch_id=batch_id,
                run_id=run_id,
                seq=int(seq),
                coalitions=_decode_coalitions(coalitions),
                attempts=int(attempts) + 1,
                deadline=deadline,
            )

        return self._transaction(op)

    def renew(self, batch_id: str, worker_id: str, lease_seconds: float) -> bool:
        """Extend a lease; ``False`` means the lease was lost (expired away)."""
        deadline = self._now() + float(lease_seconds)

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE batches SET deadline = ? "
                "WHERE batch_id = ? AND owner = ? AND status = 'leased'",
                (deadline, batch_id, worker_id),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def complete(self, batch_id: str, worker_id: str) -> bool:
        """Retire a finished batch; ``False`` if the lease was lost meanwhile."""

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE batches SET status = 'done', deadline = NULL "
                "WHERE batch_id = ? AND owner = ? AND status = 'leased'",
                (batch_id, worker_id),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def release(self, batch_id: str, worker_id: str, error: Optional[str] = None) -> bool:
        """Hand a batch back after a failed evaluation (keeps its attempt count)."""

        def op(connection) -> bool:
            if error is not None:
                connection.execute(
                    "UPDATE batches SET last_error = ? WHERE batch_id = ?",
                    (str(error)[:500], batch_id),
                )
            status = (
                "pending"
                if self._attempts_in(connection, batch_id) < self.max_attempts
                else "failed"
            )
            cursor = connection.execute(
                "UPDATE batches SET status = ?, owner = NULL, deadline = NULL "
                "WHERE batch_id = ? AND owner = ? AND status = 'leased'",
                (status, batch_id, worker_id),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    @staticmethod
    def _attempts_in(connection, batch_id: str) -> int:
        row = connection.execute(
            "SELECT attempts FROM batches WHERE batch_id = ?", (batch_id,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def statuses(self, batch_ids: Sequence[str]) -> Dict[str, Tuple[str, int, Optional[str]]]:
        """``{batch_id: (status, attempts, last_error)}`` for known batches."""
        out: Dict[str, Tuple[str, int, Optional[str]]] = {}
        ids = list(batch_ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            marks = ",".join("?" for _ in chunk)
            for batch_id, status, attempts, last_error in self._query(
                f"SELECT batch_id, status, attempts, last_error FROM batches "
                f"WHERE batch_id IN ({marks})",
                tuple(chunk),
            ):
                out[batch_id] = (status, int(attempts), last_error)
        return out

    def counts(self, run_id: Optional[str] = None) -> QueueCounts:
        if run_id is None:
            rows = self._query("SELECT status, COUNT(*) FROM batches GROUP BY status")
        else:
            rows = self._query(
                "SELECT status, COUNT(*) FROM batches WHERE run_id = ? GROUP BY status",
                (run_id,),
            )
        counts = QueueCounts()
        for status, n in rows:
            counts.by_status[status] = int(n)
            if hasattr(counts, status):
                setattr(counts, status, int(n))
        return counts

    def depth(self) -> int:
        """Batches not yet retired (pending + leased): the queue-depth gauge."""
        return self.counts().outstanding

    # ------------------------------------------------------------------ #
    # Trainings ledger
    # ------------------------------------------------------------------ #
    def record_training(self, key: str, worker_id: str, batch_id: str) -> None:
        """Record one *deposited* training (call only after the store put).

        Deliberately a plain INSERT: a duplicated training must show up as a
        duplicate row, not be papered over by a unique constraint — the
        ledger exists so tests and the crash smoke can assert there are none.
        """
        now = self._now()
        self._transaction(
            lambda c: c.execute(
                "INSERT INTO trainings (key, worker, batch_id, recorded_at) "
                "VALUES (?, ?, ?, ?)",
                (key, worker_id, batch_id, now),
            )
        )

    def training_counts(self) -> Tuple[int, int]:
        """``(total, distinct)`` ledger rows; equal ⇔ zero duplicated trainings."""
        rows = self._query("SELECT COUNT(*), COUNT(DISTINCT key) FROM trainings")
        return int(rows[0][0]), int(rows[0][1])

    # ------------------------------------------------------------------ #
    # Worker heartbeats
    # ------------------------------------------------------------------ #
    def register_worker(self, worker_id: str, pid: Optional[int] = None) -> None:
        now = self._now()
        self._transaction(
            lambda c: c.execute(
                "INSERT OR REPLACE INTO workers "
                "(worker_id, pid, started_at, last_seen, batches_done) "
                "VALUES (?, ?, ?, ?, COALESCE("
                "  (SELECT batches_done FROM workers WHERE worker_id = ?), 0))",
                (worker_id, pid, now, now, worker_id),
            )
        )

    def touch_worker(self, worker_id: str, batches_done: int = 0) -> None:
        now = self._now()
        self._transaction(
            lambda c: c.execute(
                "UPDATE workers SET last_seen = ?, batches_done = batches_done + ? "
                "WHERE worker_id = ?",
                (now, int(batches_done), worker_id),
            )
        )

    def workers(self) -> List[dict]:
        return [
            {
                "worker_id": worker_id,
                "pid": pid,
                "started_at": started_at,
                "last_seen": last_seen,
                "batches_done": int(batches_done),
            }
            for worker_id, pid, started_at, last_seen, batches_done in self._query(
                "SELECT worker_id, pid, started_at, last_seen, batches_done "
                "FROM workers ORDER BY worker_id"
            )
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "LeaseQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "Claim",
    "DEFAULT_MAX_ATTEMPTS",
    "LeaseQueue",
    "QueueCounts",
    "QUEUE_FILENAME",
    "WorkPayload",
    "is_busy_error",
]
