"""Fleet execution: multi-process/multi-host coalition evaluation.

The package behind the ``fleet`` executor backend (see ``docs/fleet.md``):

* :mod:`repro.fleet.queue` — the durable SQLite lease queue
  (claim/renew/complete, lease-expiry → requeue, trainings ledger);
* :mod:`repro.fleet.worker` — the claim → evaluate → deposit → heartbeat
  loop behind ``repro worker <queue-dir>``;
* :mod:`repro.fleet.coordinator` — :class:`FleetExecutor`, the
  :class:`~repro.parallel.executors.CoalitionExecutor` that enqueues an
  oracle's miss batches and blocks on results deposited through the shared
  persistent :class:`~repro.store.UtilityStore`;
* :mod:`repro.fleet.modeled` — the picklable modeled-cost game the fleet
  benchmark and crash tests evaluate.
"""

from repro.fleet.coordinator import FleetExecutor, WORKER_BACKENDS, spawn_worker
from repro.fleet.modeled import ModeledCostEvaluator
from repro.fleet.queue import (
    Claim,
    DEFAULT_MAX_ATTEMPTS,
    LeaseQueue,
    QueueCounts,
    QUEUE_FILENAME,
    WorkPayload,
)
from repro.fleet.worker import WorkerStats, default_worker_id, run_worker

__all__ = [
    "Claim",
    "DEFAULT_MAX_ATTEMPTS",
    "FleetExecutor",
    "LeaseQueue",
    "ModeledCostEvaluator",
    "QueueCounts",
    "QUEUE_FILENAME",
    "WORKER_BACKENDS",
    "WorkPayload",
    "WorkerStats",
    "default_worker_id",
    "run_worker",
    "spawn_worker",
]
