"""A picklable modeled-cost coalition game for fleet tests and benchmarks.

The fleet's scaling story is about *scheduling*: how close the queue gets to
dividing the paper's per-coalition training cost τ across W workers.  Real
FL training on the benchmark boxes is CPU-bound, so measuring worker scaling
with it confounds queue behavior with core count; following the repo's
worker-scaling benchmark convention (``benchmarks/bench_parallel.py``), the
per-coalition cost is *modeled* instead — a ``time.sleep(tau)`` that
occupies a worker without occupying a core — on top of a deterministic
monotone game, so utilities are exactly reproducible and the measured
speedup isolates claim/lease/deposit overhead.

Unlike the in-benchmark modeled game, this one is a plain module-level class
so it pickles by reference — a ``repro worker`` subprocess can unpickle it
from the queue payload without importing any benchmark file.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np


class ModeledCostEvaluator:
    """Deterministic monotone coalition game with a modeled cost τ per call.

    Utilities are a saturating function of seeded per-client weights —
    monotone, submodular-ish, and bitwise-reproducible for a given
    ``(n_clients, seed)`` on every process that evaluates them.  ``tau``
    seconds of sleep model the FL training cost; ``tau=0`` makes the game
    instantaneous for correctness tests.
    """

    def __init__(self, n_clients: int = 10, tau: float = 0.0, seed: int = 0) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.n_clients = int(n_clients)
        self.tau = float(tau)
        self.seed = int(seed)
        # Drawn once at construction from an explicitly seeded generator and
        # carried inside the pickle, so every unpickled copy plays the exact
        # same game.
        self.weights = np.random.default_rng(self.seed).uniform(
            0.5, 1.5, size=self.n_clients
        )

    def __call__(self, coalition: Iterable[int]) -> float:
        if self.tau > 0.0:
            time.sleep(self.tau)
        members = sorted(int(c) for c in coalition)
        total = float(sum(self.weights[m] for m in members))
        return total / (1.0 + 0.25 * total)

    def utility(self, coalition: Iterable[int]) -> float:
        return self(coalition)


__all__ = ["ModeledCostEvaluator"]
