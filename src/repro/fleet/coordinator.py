"""The fleet coordinator: enqueue coalition batches, block on store deposits.

:class:`FleetExecutor` is the fifth coalition-executor backend: instead of
evaluating a miss batch in-process, it chunks the batch onto the durable
:class:`~repro.fleet.queue.LeaseQueue`, lets any number of worker processes
(on this or other hosts sharing the queue directory and store path) drain
it, and reads the resulting utilities back out of the shared persistent
:class:`~repro.store.UtilityStore`.  Values are bitwise-identical to serial
because per-coalition seeds are content-derived — *which process* trains a
coalition cannot change what it trains.

``shares_memory`` is ``False``: like the process and vectorized backends the
executor receives only cache/store misses through the oracle's
partition/deposit protocol, and the oracle deposits returned values back —
so ``evaluations`` / ``store_hits`` accounting agrees with every other
backend by construction.

The executor needs two things wired up before its first batch:

* a *disk-backed* store and namespace, delivered by
  :meth:`bind_store` (the oracle calls it whenever store or executor
  change) — memory stores cannot cross processes and are rejected;
* a picklable evaluator (same rule as the process pool), shipped to workers
  once per run via the queue's payload table.

Failure semantics: a worker dying mid-batch stops renewing its lease; the
coordinator's poll loop requeues expired leases (counting
``fleet.lease_expired`` / ``fleet.requeued``), respawns workers it spawned
itself, and raises only when a batch exhausts its delivery attempts or the
whole drain stalls past ``stall_timeout`` with no live workers.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.fleet.queue import DEFAULT_MAX_ATTEMPTS, LeaseQueue, WorkPayload
from repro.parallel.executors import CoalitionExecutor, Evaluator, SerialExecutor
from repro.store import MemoryUtilityStore, UtilityStore, utility_key

#: executor backends a worker may run internally (no fleet-in-fleet)
WORKER_BACKENDS = ("serial", "thread", "process", "vectorized")


def spawn_worker(
    queue_dir: str,
    backend: str = "serial",
    n_workers: int = 1,
    lease_seconds: float = 30.0,
    poll_interval: float = 0.05,
    log_path: Optional[str] = None,
    extra_args: Sequence[str] = (),
) -> subprocess.Popen:
    """Start one ``repro worker`` subprocess serving ``queue_dir``.

    The child runs ``python -m repro.cli worker ...`` with this package's
    source root prepended to ``PYTHONPATH``, so spawning works from source
    checkouts and installed environments alike.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    # The child inherits this process's environment (plus the import path it
    # needs); environment contents are process plumbing, not valuation input.
    env = dict(os.environ)  # repro: allow[RPR002] reason=subprocess environment plumbing, not identity
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        source_root + os.pathsep + existing if existing else source_root
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        queue_dir,
        "--backend",
        backend,
        "--n-workers",
        str(int(n_workers)),
        "--lease-seconds",
        str(float(lease_seconds)),
        "--poll-interval",
        str(float(poll_interval)),
        "--stop-when-finished",
        *extra_args,
    ]
    if log_path is not None:
        os.makedirs(os.path.dirname(log_path) or ".", exist_ok=True)
        with open(log_path, "ab") as sink:
            return subprocess.Popen(
                command, env=env, stdout=sink, stderr=subprocess.STDOUT
            )
    return subprocess.Popen(command, env=env)


class FleetExecutor(CoalitionExecutor):
    """Coalition executor draining batches through a shared lease queue.

    Parameters
    ----------
    queue_dir:
        Directory holding the fleet's ``queue.sqlite``; every worker serving
        this run must see the same path (shared filesystem for multi-host).
    batch_size:
        Coalitions per queue batch; ``None`` sizes batches to roughly two
        per expected worker (bounded to [1, 32]) so the fleet load-balances.
    lease_seconds:
        Lease length workers request; also how long a dead worker's batch
        stays stranded before requeue, so crash tests use small values.
    spawn_workers:
        Workers this executor launches (and supervises) itself; ``0`` means
        workers are started externally via ``repro worker <queue-dir>``.
    worker_backend / worker_n_workers:
        Executor each worker evaluates with internally.
    poll_interval:
        Coordinator poll cadence while blocked on results.
    stall_timeout:
        Raise if nothing completes for this long *and* no live worker is
        visible (``None`` disables; spawned workers are also respawned).
    """

    shares_memory = False
    name = "fleet"

    def __init__(
        self,
        queue_dir: str,
        batch_size: Optional[int] = None,
        lease_seconds: float = 30.0,
        spawn_workers: int = 0,
        worker_backend: str = "serial",
        worker_n_workers: int = 1,
        poll_interval: float = 0.05,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        stall_timeout: Optional[float] = 120.0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {spawn_workers}")
        if worker_backend not in WORKER_BACKENDS:
            raise ValueError(
                f"unknown worker backend {worker_backend!r}; "
                f"choose from {WORKER_BACKENDS}"
            )
        self.queue_dir = str(queue_dir)
        self.batch_size = batch_size
        self.lease_seconds = float(lease_seconds)
        self.spawn_workers = int(spawn_workers)
        self.worker_backend = worker_backend
        self.worker_n_workers = int(worker_n_workers)
        self.poll_interval = float(poll_interval)
        self.max_attempts = int(max_attempts)
        self.stall_timeout = stall_timeout
        self._say = log if log is not None else (lambda message: None)
        self._queue: Optional[LeaseQueue] = None
        self._store: Optional[UtilityStore] = None
        self._namespace: Optional[str] = None
        self._run_ids: Dict[int, str] = {}  # id(evaluator) -> registered run
        self._registered_runs: List[str] = []
        self._processes: List[subprocess.Popen] = []
        self._respawns = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def bind_store(
        self, store: Optional[UtilityStore], namespace: Optional[str]
    ) -> None:
        """Receive the oracle's persistent store + namespace (see base class)."""
        self._store = store
        self._namespace = namespace

    @property
    def queue(self) -> LeaseQueue:
        if self._queue is None:
            self._queue = LeaseQueue(self.queue_dir, max_attempts=self.max_attempts)
        return self._queue

    def _require_store(self) -> UtilityStore:
        store = self._store
        if store is None or self._namespace is None:
            raise RuntimeError(
                "the fleet backend shares results through a persistent "
                "UtilityStore: attach one (CoalitionUtility(store=..., "
                "store_namespace=...) / repro run --store ...) before "
                "evaluating batches"
            )
        if isinstance(store, MemoryUtilityStore):
            raise RuntimeError(
                "the fleet backend needs a disk-backed store (SQLite file or "
                "JSONL directory): a memory store is invisible to worker "
                "processes"
            )
        return store

    @staticmethod
    def _store_backend_name(store: UtilityStore) -> str:
        from repro.store import JsonlUtilityStore, SqliteUtilityStore

        if isinstance(store, SqliteUtilityStore):
            return "sqlite"
        if isinstance(store, JsonlUtilityStore):
            return "jsonl"
        raise RuntimeError(
            f"cannot ship store backend {type(store).__name__} to fleet workers"
        )

    def _run_for(self, evaluator: Evaluator, store: UtilityStore) -> str:
        """Register (once) and return the queue run for this evaluator."""
        run_id = self._run_ids.get(id(evaluator))
        if run_id is not None:
            return run_id
        journal_path = None
        parent_span = None
        if self.telemetry is not None and self.telemetry.enabled:
            if self.telemetry.journal is not None:
                journal_path = self.telemetry.journal.path
            parent_span = self.telemetry.tracer.current_span_id()
        payload = WorkPayload(
            evaluator=evaluator,
            store_path=store.location,
            store_backend=self._store_backend_name(store),
            namespace=self._namespace or "default",
            journal_path=journal_path,
            parent_span=parent_span,
        )
        # pid + instance id make the run id unique across coordinators that
        # share one queue directory; both are queue bookkeeping, not values.
        pid = os.getpid()  # repro: allow[RPR002] reason=run id is queue bookkeeping, telemetry-only
        run_id = (
            f"run-{pid}-{id(self):x}-{len(self._registered_runs)}-"
            f"{(self._namespace or 'default')[:16]}"
        )
        self.queue.register_run(run_id, payload)
        self._run_ids[id(evaluator)] = run_id
        self._registered_runs.append(run_id)
        return run_id

    # ------------------------------------------------------------------ #
    # Worker supervision
    # ------------------------------------------------------------------ #
    def _worker_log_path(self, index: int) -> str:
        return os.path.join(self.queue_dir, "workers", f"worker-{index}.log")

    def _ensure_workers(self) -> None:
        while len(self._processes) < self.spawn_workers:
            index = len(self._processes) + self._respawns
            self._processes.append(
                spawn_worker(
                    self.queue_dir,
                    backend=self.worker_backend,
                    n_workers=self.worker_n_workers,
                    lease_seconds=self.lease_seconds,
                    poll_interval=self.poll_interval,
                    log_path=self._worker_log_path(index),
                )
            )
            self._say(f"fleet: spawned worker {index} (pid {self._processes[-1].pid})")

    def _reap_dead_workers(self, work_remains: bool) -> None:
        survivors: List[subprocess.Popen] = []
        for process in self._processes:
            if process.poll() is None:
                survivors.append(process)
            else:
                self._say(
                    f"fleet: worker pid {process.pid} exited "
                    f"(code {process.returncode})"
                )
        died = len(self._processes) - len(survivors)
        self._processes = survivors
        if died and work_remains:
            self._respawns += died
            if self.telemetry is not None:
                self.telemetry.count("fleet.worker_respawns", died)
            self._ensure_workers()

    def worker_pids(self) -> List[int]:
        """Pids of the workers this executor spawned and still supervises."""
        return [p.pid for p in self._processes if p.poll() is None]

    # ------------------------------------------------------------------ #
    # The executor interface
    # ------------------------------------------------------------------ #
    def _batch_size_for(self, n_coalitions: int) -> int:
        if self.batch_size is not None:
            return self.batch_size
        expected = self.spawn_workers or len(self.queue.workers()) or 1
        return max(1, min(32, math.ceil(n_coalitions / (2 * expected))))

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        if not coalitions:
            return []
        store = self._require_store()
        run_id = self._run_for(evaluator, store)
        size = self._batch_size_for(len(coalitions))
        batches = [
            list(coalitions[start : start + size])
            for start in range(0, len(coalitions), size)
        ]
        batch_ids = self.queue.enqueue(run_id, batches)
        if self.telemetry is not None:
            self.telemetry.count("fleet.batches_enqueued", len(batch_ids))
        self._ensure_workers()
        self._drain(batch_ids)
        return self._collect(evaluator, store, coalitions)

    def _drain(self, batch_ids: Sequence[str]) -> None:
        """Block until every batch is done; requeue expired leases meanwhile."""
        pending = set(batch_ids)
        last_progress = time.monotonic()
        respawns_at_progress = self._respawns
        respawn_limit = max(4, 2 * self.spawn_workers)
        while pending:
            requeued, failed = self.queue.requeue_expired()
            if self.telemetry is not None and (requeued or failed):
                self.telemetry.count("fleet.lease_expired", requeued + failed)
                if requeued:
                    self.telemetry.count("fleet.requeued", requeued)
            statuses = self.queue.statuses(sorted(pending))
            for batch_id, (status, attempts, last_error) in statuses.items():
                if status == "done":
                    pending.discard(batch_id)
                    last_progress = time.monotonic()
                    respawns_at_progress = self._respawns
                elif status == "failed":
                    raise RuntimeError(
                        f"fleet batch {batch_id} failed after {attempts} "
                        f"delivery attempts: {last_error or 'unknown error'}"
                    )
            if self.telemetry is not None:
                self.telemetry.set_gauge("fleet.queue_depth", self.queue.depth())
            if not pending:
                break
            self._reap_dead_workers(work_remains=True)
            if self._respawns - respawns_at_progress > respawn_limit:
                # A crash-looping fleet (e.g. workers that die on import)
                # would otherwise respawn forever without ever tripping the
                # stall guard below, because each respawn looks "live".
                raise RuntimeError(
                    f"fleet workers are crash-looping: "
                    f"{self._respawns - respawns_at_progress} respawns with no "
                    f"completed batch ({len(pending)} outstanding) — see logs "
                    f"under {os.path.join(self.queue_dir, 'workers')}"
                )
            if self.stall_timeout is not None:
                stalled = time.monotonic() - last_progress
                if stalled >= self.stall_timeout and not self._live_workers():
                    raise RuntimeError(
                        f"fleet drain stalled: {len(pending)} batch(es) "
                        f"outstanding, no progress for {stalled:.0f}s and no "
                        f"live worker on {self.queue.path} — start workers "
                        "with `repro worker <queue-dir>` or pass "
                        "spawn_workers/--spawn-workers"
                    )
            time.sleep(self.poll_interval)

    def _live_workers(self) -> bool:
        if self.worker_pids():
            return True
        now = self.queue._now()
        grace = max(5.0, 3 * self.lease_seconds)
        return any(now - w["last_seen"] <= grace for w in self.queue.workers())

    def _collect(
        self,
        evaluator: Evaluator,
        store: UtilityStore,
        coalitions: Sequence[frozenset],
    ) -> list[float]:
        namespace = self._namespace or "default"
        values: list[float] = []
        fallback: List[frozenset] = []
        for coalition in coalitions:
            value = store.get(utility_key(namespace, coalition))
            if value is None:
                # A non-finite utility is never persisted (store.put policy),
                # so a completed batch can still leave a hole; the evaluator
                # is deterministic, so evaluating locally reproduces exactly
                # what the worker computed.
                fallback.append(coalition)
                values.append(math.nan)
            else:
                values.append(value)
        if fallback:
            if self.telemetry is not None:
                self.telemetry.count("fleet.local_fallback", len(fallback))
            local = SerialExecutor().map_utilities(evaluator, fallback)
            replacements = dict(zip(fallback, local))
            values = [
                replacements.get(coalition, value)
                for coalition, value in zip(coalitions, values)
            ]
        return values

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Finish registered runs, stop spawned workers, drop the queue handle."""
        if self._queue is not None:
            for run_id in self._registered_runs:
                self._queue.finish_run(run_id)
        for process in self._processes:
            # stop_when_finished workers exit on their own once runs finish;
            # give them a moment, then insist.
            try:
                process.wait(timeout=max(2.0, 4 * self.poll_interval + 1.0))
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    process.kill()
                    process.wait()
        self._processes = []
        self._run_ids = {}
        self._registered_runs = []
        if self._queue is not None:
            self._queue.close()
            self._queue = None


__all__ = ["FleetExecutor", "WORKER_BACKENDS", "spawn_worker"]
