"""The valuation service: a multi-tenant async job server over the anytime API.

``repro serve <state-dir>`` turns the library's anytime valuation pieces —
checkpointable estimators, the shared utility store, executor backends, the
telemetry registry — into a long-running HTTP service: clients POST valuation
jobs, stream live :class:`~repro.core.ValuationSnapshot` events, and read
results; behind the API a durable WAL-SQLite queue schedules jobs across
worker threads with priorities, per-tenant store namespaces, graceful
preemption at chunk boundaries and crash recovery from checkpoints.

The invariant everything here is built around: a service job computes
*bitwise* the same values as ``repro run`` with the same spec — across
preemptions, restarts, and tenants (see ``docs/service.md``).

Layout:

:mod:`~repro.service.models`
    Wire schema — :class:`JobSpec`, :class:`JobRecord`, the job lifecycle.
:mod:`~repro.service.jobs`
    Durable job queue + trainings ledger (WAL-SQLite).
:mod:`~repro.service.ledger`
    :class:`RecordingStore` — the per-job store proxy feeding the ledger.
:mod:`~repro.service.runner`
    One job's execution: the job → plan-cell adaptation.
:mod:`~repro.service.scheduler`
    :class:`ValuationService` — workers, priorities, preemption, recovery.
:mod:`~repro.service.server`
    The stdlib HTTP/SSE surface.
:mod:`~repro.service.client`
    The urllib client behind ``repro submit`` / ``repro jobs``.
:mod:`~repro.service.stream`
    Shared JSONL event writing, heartbeats, SSE framing.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobStore
from repro.service.models import (
    DEFAULT_TENANT,
    JOB_STATUSES,
    JobRecord,
    JobSpec,
    TERMINAL_STATUSES,
    tenant_namespace,
)
from repro.service.scheduler import ValuationService
from repro.service.server import ServiceHTTPServer, serve

__all__ = [
    "DEFAULT_TENANT",
    "JOB_STATUSES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "TERMINAL_STATUSES",
    "ValuationService",
    "serve",
    "tenant_namespace",
]
