"""A small urllib client for the valuation service HTTP API.

Backs ``repro submit`` / ``repro jobs`` and the smoke/benchmark scripts; no
third-party HTTP library, matching the server side.  Every method raises
:class:`ServiceError` with the server's own message on non-2xx responses.
"""

from __future__ import annotations

import json
import time
from typing import Iterator, List, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen


class ServiceError(RuntimeError):
    """A non-2xx response (carries the server's error message and status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)


class ServiceClient:
    """Requests against one ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except (ValueError, AttributeError):
                message = body
            raise ServiceError(error.code, message) from error
        except URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: {error.reason}") from error

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        request = Request(self.base_url + "/metrics")
        with urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def submit(self, spec: dict) -> dict:
        """POST a JobSpec dict; returns the created job record."""
        return self._request("POST", "/v1/jobs", payload=spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self, tenant: Optional[str] = None, status: Optional[str] = None
    ) -> List[dict]:
        query = []
        if tenant is not None:
            query.append(f"tenant={tenant}")
        if status is not None:
            query.append(f"status={status}")
        suffix = ("?" + "&".join(query)) if query else ""
        return self._request("GET", "/v1/jobs" + suffix)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield the job's SSE events as dicts until the stream closes."""
        request = Request(
            self.base_url + f"/v1/jobs/{job_id}/stream",
            headers={"Accept": "text/event-stream"},
        )
        with urlopen(request, timeout=self.timeout) as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line.startswith("data: "):
                    yield json.loads(line[len("data: ") :])

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.perf_counter() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "cancelled"):
                return record
            if time.perf_counter() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']!r} after {timeout}s"
                )
            time.sleep(poll)


__all__ = ["ServiceClient", "ServiceError"]
