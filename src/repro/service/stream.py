"""Event streaming: per-job JSONL logs, heartbeats, and SSE framing.

Every job the service runs appends its lifecycle as JSON lines to
``events/<job_id>.jsonl`` under the state directory — the same event schema
``repro run --json-stream`` prints (pinned by
``tests/data/golden_json_stream_events.json``), plus an additive ``job_id``
field.  ``GET /v1/jobs/<id>/stream`` replays that file and tails it live, so
an HTTP client sees exactly what a terminal client of the CLI would.

:class:`Heartbeat` is the shared "still alive" emitter: both the CLI's
``--json-stream --heartbeat N`` mode and the service's SSE endpoint run one,
so a consumer can distinguish a stalled run from a slow chunk.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Iterator, List, Optional, TextIO


def format_event(payload: dict) -> str:
    """One wire line for *payload* — compact, key-sorted, newline-terminated.

    Key order is sorted so identical events are byte-identical wherever they
    are rendered (CLI stdout, the job's event log, an SSE frame).
    """
    return json.dumps(payload, sort_keys=True) + "\n"


def sse_frame(payload: dict) -> str:
    """The Server-Sent-Events framing of one event (``data: <json>\\n\\n``)."""
    return "data: " + json.dumps(payload, sort_keys=True) + "\n\n"


class EventWriter:
    """Thread-safe JSON-lines writer over a text stream or an append file.

    The service's runner and heartbeat threads both emit through one writer
    per job; the lock keeps concurrently emitted lines whole.
    """

    def __init__(self, stream: Optional[TextIO] = None, path: Optional[str] = None):
        self._lock = threading.Lock()
        self._stream = stream
        self._path = path
        self._observers: List[Callable[[dict], None]] = []

    def add_observer(self, observer: Callable[[dict], None]) -> None:
        """Also hand every subsequent event to *observer* (after writing it)."""
        with self._lock:
            self._observers.append(observer)

    def emit(self, payload: dict) -> None:
        """Write one event — to the stream, the file, and every observer."""
        line = format_event(payload)
        with self._lock:
            if self._stream is not None:
                self._stream.write(line)
                self._stream.flush()
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(line)
            observers = list(self._observers)
        for observer in observers:
            observer(payload)


class Heartbeat:
    """Periodic ``{"event": "heartbeat"}`` emitter on a daemon thread.

    Heartbeats only fire while no real event does: every call to
    :meth:`touch` (the writer observers do this) resets the countdown, so a
    stream that is already chatty stays heartbeat-free.  ``elapsed_seconds``
    counts from construction, matching the snapshot events' clock.
    """

    def __init__(
        self,
        emit: Callable[[dict], None],
        interval_seconds: float,
        extra: Optional[dict] = None,
    ):
        if interval_seconds <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval_seconds}")
        self._emit = emit
        self._interval = float(interval_seconds)
        self._extra = dict(extra or {})
        self._started = time.perf_counter()
        self._lock = threading.Lock()
        self._last_event = self._started
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def start(self) -> "Heartbeat":
        self._thread.start()
        return self

    def touch(self) -> None:
        """Note a real event: postpone the next heartbeat by one interval."""
        with self._lock:
            self._last_event = time.perf_counter()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(min(self._interval / 4.0, 0.5)):
            now = time.perf_counter()
            with self._lock:
                due = now - self._last_event >= self._interval
                if due:
                    self._last_event = now
            if due:
                payload = {
                    "event": "heartbeat",
                    "elapsed_seconds": now - self._started,
                }
                payload.update(self._extra)
                self._emit(payload)


def read_events(path: str) -> List[dict]:
    """All events currently in a job's JSONL log (missing file → empty)."""
    if not os.path.exists(path):
        return []
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def follow_events(
    path: str,
    done: Callable[[], bool],
    poll_seconds: float = 0.1,
) -> Iterator[dict]:
    """Replay a job's event log, then tail it until *done* reports True.

    Yields each event dict exactly once, in file order.  After *done* turns
    true one final read drains any events that raced the last poll.
    """
    offset = 0
    while True:
        finished = done()
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            for line in chunk.splitlines():
                line = line.strip()
                if line:
                    yield json.loads(line)
        if finished:
            return
        time.sleep(poll_seconds)


__all__ = [
    "EventWriter",
    "Heartbeat",
    "follow_events",
    "format_event",
    "read_events",
    "sse_frame",
]
