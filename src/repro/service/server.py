"""The HTTP/JSON surface of the valuation service (stdlib only).

Routes (see ``docs/service.md`` for the full reference with curl examples)::

    POST   /v1/jobs              submit a JobSpec            → 201 {job}
    GET    /v1/jobs              list jobs (?tenant=&status=) → 200 {jobs: [...]}
    GET    /v1/jobs/<id>         one job's status/result      → 200 {job}
    GET    /v1/jobs/<id>/stream  SSE of the job's events      → text/event-stream
    DELETE /v1/jobs/<id>         cancel                       → 200 {job_id, status}
    GET    /healthz              liveness + queue counts      → 200 {status: "ok"}
    GET    /metrics              Prometheus exposition        → 200 text/plain

Built on :class:`http.server.ThreadingHTTPServer`: one thread per in-flight
request, which the SSE endpoint relies on — a stream request parks its thread
in a replay+tail loop over the job's event log until the job is terminal (or
the client disconnects), while other requests proceed on their own threads.
Scheduling work never happens on request threads; they only read and write
the durable :class:`~repro.service.jobs.JobStore` through the
:class:`~repro.service.scheduler.ValuationService` facade.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.models import JobSpec
from repro.service.scheduler import ValuationService
from repro.service.stream import Heartbeat, follow_events, sse_frame
from repro.telemetry.names import SERVICE_HTTP_REQUESTS

#: SSE heartbeat cadence — frequent enough that a proxy or client can tell a
#: live-but-quiet stream from a dead one within a few seconds
STREAM_HEARTBEAT_SECONDS = 5.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service facade for its handlers."""

    daemon_threads = True  # in-flight requests must not block process exit

    def __init__(self, address: Tuple[str, int], service: ValuationService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request against the service facade.

    Handler instances are single-threaded and per-request; all shared state
    lives behind the facade's own synchronisation, so these methods hold no
    locks of their own.
    """

    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        service.telemetry.count(SERVICE_HTTP_REQUESTS)
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if url.path == "/healthz":
            self._send_json(200, {"status": "ok", "jobs": service.counts()})
        elif url.path == "/metrics":
            self._send_text(200, service.metrics_text(), "text/plain; version=0.0.4")
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 2:
            query = parse_qs(url.query)
            records = service.list_jobs(
                tenant=query.get("tenant", [None])[0],
                status=query.get("status", [None])[0],
            )
            self._send_json(
                200,
                {"jobs": [record.to_dict(include_result=False) for record in records]},
            )
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 3:
            record = service.get(parts[2])
            if record is None:
                self._send_json(404, {"error": f"unknown job {parts[2]!r}"})
            else:
                self._send_json(200, record.to_dict())
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 4 and parts[3] == "stream":
            self._stream_job(parts[2])
        else:
            self._send_json(404, {"error": f"no route for GET {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        service.telemetry.count(SERVICE_HTTP_REQUESTS)
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        if parts != ["v1", "jobs"]:
            self._send_json(404, {"error": f"no route for POST {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            spec = JobSpec.from_dict(payload)
        except (ValueError, KeyError, TypeError) as error:
            # Anticipated client errors: malformed JSON, unknown fields, bad
            # algorithm/backend names.  Everything else is a server bug and
            # propagates to the 500 handler.
            self._send_json(400, {"error": str(error)})
            return
        record = service.submit(spec)
        self._send_json(201, record.to_dict())

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        service.telemetry.count(SERVICE_HTTP_REQUESTS)
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        if parts[:2] != ["v1", "jobs"] or len(parts) != 3:
            self._send_json(404, {"error": f"no route for DELETE {self.path}"})
            return
        status = service.cancel(parts[2])
        if status is None:
            self._send_json(404, {"error": f"unknown job {parts[2]!r}"})
        else:
            self._send_json(200, {"job_id": parts[2], "status": status})

    # ------------------------------------------------------------------ #
    # SSE streaming
    # ------------------------------------------------------------------ #
    def _stream_job(self, job_id: str) -> None:
        service = self.server.service
        record = service.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE has no content length; the stream ends when the job does.
        self.send_header("Connection", "close")
        self.end_headers()

        checker = _Terminal(service, job_id)
        heartbeat = Heartbeat(
            self._send_sse, STREAM_HEARTBEAT_SECONDS, extra={"job_id": job_id}
        )
        try:
            with heartbeat:
                for event in follow_events(
                    service.event_log_path(job_id), checker.check
                ):
                    heartbeat.touch()
                    self._send_sse(event)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up beyond the socket

    def _send_sse(self, payload: dict) -> None:
        self.wfile.write(sse_frame(payload).encode("utf-8"))
        self.wfile.flush()

    # ------------------------------------------------------------------ #
    # Response helpers
    # ------------------------------------------------------------------ #
    def _send_json(self, code: int, payload: dict) -> None:
        self._send_text(code, json.dumps(payload, sort_keys=True), "application/json")

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; the socket is torn down

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        self.server.service.log(f"http: {self.address_string()} {format % args}")


class _Terminal:
    """Bound (service, job) terminality probe for the SSE tail loop."""

    def __init__(self, service: ValuationService, job_id: str) -> None:
        self._service = service
        self._job_id = job_id

    def check(self) -> bool:
        return self._service.job_finished(self._job_id)


def serve(
    service: ValuationService, host: str = "127.0.0.1", port: int = 8310
) -> ServiceHTTPServer:
    """Bind the HTTP server for *service* (call ``serve_forever`` yourself).

    Port 0 binds an ephemeral port; read it back from ``server_address``.
    """
    return ServiceHTTPServer((host, port), service)


__all__ = ["STREAM_HEARTBEAT_SECONDS", "ServiceHTTPServer", "serve"]
