"""A recording proxy over the service's shared utility store.

Each running job sees the shared :class:`~repro.store.UtilityStore` through a
:class:`RecordingStore`: reads pass straight through, but every write — i.e.
every *actual FL training* the job paid for — is also recorded in the job
queue's trainings ledger under the job's id.  That ledger is how the service
(and its tests, and the crash smoke) asserts the zero-duplicated-trainings
invariant: ``COUNT(*) == COUNT(DISTINCT key)`` across all jobs, tenants and
restarts.

The proxy is a real :class:`UtilityStore` subclass (not a duck type) because
:func:`repro.parallel.batch_oracle.resolve_store` type-checks stores it is
handed — and a subclass correctly inherits the "unowned handle" treatment:
job teardown must never close the server's shared store, so :meth:`_close`
is a no-op on the inner store.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.store.base import GCResult, UtilityStore


class RecordingStore(UtilityStore):
    """Pass-through store that ledgers every write as one paid training."""

    def __init__(self, inner: UtilityStore, record: "callable", job_id: str) -> None:
        super().__init__()
        self._inner = inner
        self._record = record
        self._job_id = job_id

    # Backend hooks run with *this* proxy's lock held; they delegate to the
    # inner store's public interface, which takes the inner store's own lock —
    # lock order is always proxy → inner, so the pair cannot deadlock.

    @property
    def location(self) -> str:
        return self._inner.location

    def _read(self, key: str) -> Optional[float]:
        """Caller must hold the lock (the public ``get`` does)."""
        return self._inner.get(key)

    def _write(self, key: str, value: float) -> int:
        """Caller must hold the lock (the public ``put`` does)."""
        self._inner.put(key, value)
        self._record(key, self._job_id)
        return 0  # byte accounting happens on the inner store

    def _count(self) -> int:
        """Caller must hold the lock (the public ``__len__`` does)."""
        return len(self._inner)

    def summary(self) -> dict:
        return self._inner.summary()

    def _keys(self) -> Iterable[str]:
        """Caller must hold the lock (unreached: ``summary`` is delegated)."""
        return []

    def _gc(self, keep_namespace: Optional[str]) -> GCResult:
        """Caller must hold the lock (the public ``gc`` does)."""
        return self._inner.gc(keep_namespace)

    def _close(self) -> None:
        """Caller must hold the lock (the public ``close`` does).

        Deliberately does NOT close the inner store: that is the server's
        shared handle, owned by the service, not by any one job.
        """


__all__ = ["RecordingStore"]
