"""Wire schema of the valuation service: job specs, records, lifecycle.

A :class:`JobSpec` is what a client POSTs to ``/v1/jobs`` — a declarative
valuation request: one :class:`~repro.experiments.specs.TaskSpec` (or a
scenario reference), one algorithm, an optional stopping rule, a priority and
a tenant.  A :class:`JobRecord` is what the service stores and returns: the
spec plus lifecycle bookkeeping (status, timestamps, attempt counters, cost
accounting, result location).

Job lifecycle (the state machine ``docs/service.md`` documents)::

    queued ──claim──▶ running ──finish──▶ done
      │                 │  │
      │                 │  └─preempt/recover─▶ queued   (checkpoint kept)
      │                 └────────error───────▶ failed
      └──────────────── cancel ──────────────▶ cancelled (either state)

``queued → running`` happens only through the scheduler's claim (priority
first, then tenant-fair, then FIFO); ``running → queued`` happens on graceful
preemption and on crash recovery — both resume later from the job's
:class:`~repro.core.EstimatorState` checkpoint, bitwise-identically to an
uninterrupted run.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core import parse_stopping_rule
from repro.experiments.pipeline import available_algorithms
from repro.experiments.specs import TaskSpec
from repro.parallel.executors import EXECUTOR_BACKENDS
from repro.store import fingerprint

#: terminal statuses: the job will never run again
TERMINAL_STATUSES = ("done", "failed", "cancelled")
#: every status a JobRecord may carry
JOB_STATUSES = ("queued", "running") + TERMINAL_STATUSES

#: tenant whose jobs use the bare task fingerprint as their store namespace —
#: byte-identical store keys to a direct ``repro run`` against the same store
DEFAULT_TENANT = "default"


def tenant_namespace(tenant: str, task_fingerprint: str) -> str:
    """Store namespace of one (tenant, task) pair.

    The default tenant keeps the bare task fingerprint, so service jobs and
    direct ``repro run`` invocations against the same store share trainings.
    Any other tenant gets a derived fingerprint namespace: same width, valid
    key syntax whatever the tenant string contains, and never equal to a bare
    task fingerprint — two tenants with identical tasks can *never* alias
    store entries.
    """
    if tenant == DEFAULT_TENANT:
        return task_fingerprint
    return fingerprint({"tenant": tenant, "task": task_fingerprint})


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one valuation job (the POST body).

    Parameters
    ----------
    task:
        A :class:`~repro.experiments.specs.TaskSpec` — in wire form, its
        plain-dict rendering (``{"kind": "adult", "model": "logistic", ...}``,
        including ``kind="scenario"`` tasks).
    algorithm:
        Registered algorithm name (see ``repro list-tasks``).
    tenant / priority:
        Multi-tenancy coordinates: the tenant namespaces the job's store
        entries (see :func:`tenant_namespace`) and takes part in fair
        scheduling; a higher priority runs first and may gracefully preempt
        lower-priority running jobs.
    stop_on:
        Optional early-stop specification in the ``--stop-on`` mini-language
        (``"ci:0.02"``, ``"budget:64,rank:2@top5"``, ...).
    checkpoint_every:
        Estimator-state persistence cadence in chunks (0 disables — the job
        then cannot be gracefully preempted or crash-recovered mid-run).
    backend / n_workers:
        Executor backend for coalition evaluation inside this job (any
        :data:`~repro.parallel.executors.EXECUTOR_BACKENDS` name, including
        ``"fleet"``) and its concurrency level.
    queue_dir / spawn_workers / worker_backend / lease_seconds:
        Fleet-backend execution coordinates, same semantics as
        :class:`~repro.experiments.pipeline.ExperimentPlan`.
    """

    task: Dict[str, Any]
    algorithm: str
    tenant: str = DEFAULT_TENANT
    priority: int = 0
    stop_on: Optional[str] = None
    checkpoint_every: int = 1
    backend: Optional[str] = None
    n_workers: int = 1
    queue_dir: Optional[str] = None
    spawn_workers: int = 0
    worker_backend: Optional[str] = None
    lease_seconds: float = 30.0

    def __post_init__(self) -> None:
        # Validate eagerly: a bad job must be rejected at submit time with an
        # actionable message, not discovered by a worker thread hours later.
        object.__setattr__(self, "task", dict(self.task))
        self.task_spec()  # raises on malformed task dicts
        if self.algorithm not in available_algorithms():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {available_algorithms()}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError(f"tenant must be a non-empty string, got {self.tenant!r}")
        if not isinstance(self.priority, numbers.Integral) or isinstance(
            self.priority, bool
        ):
            raise ValueError(f"priority must be an integer, got {self.priority!r}")
        if self.stop_on is not None:
            parse_stopping_rule(self.stop_on)  # raises on malformed specs
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.backend is not None and self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {EXECUTOR_BACKENDS}"
            )
        if self.backend == "fleet" and not self.queue_dir:
            raise ValueError(
                "backend 'fleet' needs a queue directory (queue_dir=) shared "
                "with its workers"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.spawn_workers < 0:
            raise ValueError(f"spawn_workers must be >= 0, got {self.spawn_workers}")
        if self.lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {self.lease_seconds}")

    # ------------------------------------------------------------------ #
    # Derived identities
    # ------------------------------------------------------------------ #
    def task_spec(self) -> TaskSpec:
        """The live :class:`TaskSpec` this job values."""
        return TaskSpec.from_dict(self.task)

    def task_fingerprint(self) -> str:
        return self.task_spec().fingerprint()

    def namespace(self) -> str:
        """Store namespace of this job (see :func:`tenant_namespace`)."""
        return tenant_namespace(self.tenant, self.task_fingerprint())

    def label(self) -> str:
        return f"{self.task_spec().label()} × {self.algorithm}"

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {
            "task": dict(self.task),
            "algorithm": self.algorithm,
            "tenant": self.tenant,
            "priority": int(self.priority),
            "checkpoint_every": int(self.checkpoint_every),
        }
        if self.stop_on is not None:
            payload["stop_on"] = self.stop_on
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.n_workers != 1:
            payload["n_workers"] = self.n_workers
        if self.queue_dir is not None:
            payload["queue_dir"] = self.queue_dir
        if self.spawn_workers:
            payload["spawn_workers"] = self.spawn_workers
        if self.worker_backend is not None:
            payload["worker_backend"] = self.worker_backend
        if self.lease_seconds != 30.0:
            payload["lease_seconds"] = self.lease_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"a job spec must be a JSON object, got {type(payload).__name__}")
        allowed = {
            "task",
            "algorithm",
            "tenant",
            "priority",
            "stop_on",
            "checkpoint_every",
            "backend",
            "n_workers",
            "queue_dir",
            "spawn_workers",
            "worker_backend",
            "lease_seconds",
        }
        unknown = set(payload) - allowed
        if unknown:
            # A typo ("algorithms" for "algorithm") must fail the submit, not
            # silently run the default and bill the tenant for it.
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        missing = {"task", "algorithm"} - set(payload)
        if missing:
            raise ValueError(f"a job spec requires fields: {sorted(missing)}")
        return cls(
            task=dict(payload["task"]),
            algorithm=str(payload["algorithm"]),
            tenant=str(payload.get("tenant", DEFAULT_TENANT)),
            priority=int(payload.get("priority", 0)),
            stop_on=payload.get("stop_on"),
            checkpoint_every=int(payload.get("checkpoint_every", 1)),
            backend=payload.get("backend"),
            n_workers=int(payload.get("n_workers", 1)),
            queue_dir=payload.get("queue_dir"),
            spawn_workers=int(payload.get("spawn_workers", 0)),
            worker_backend=payload.get("worker_backend"),
            lease_seconds=float(payload.get("lease_seconds", 30.0)),
        )


@dataclass
class JobRecord:
    """One job as the service tracks (and returns) it."""

    job_id: str
    spec: JobSpec
    status: str = "queued"
    namespace: str = ""
    task_fingerprint: str = ""
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    preemptions: int = 0
    worker: Optional[str] = None
    error: Optional[str] = None
    result: Optional[dict] = None
    fl_trainings: int = 0
    store_hits: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self, include_result: bool = True) -> dict:
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "tenant": self.spec.tenant,
            "priority": int(self.spec.priority),
            "algorithm": self.spec.algorithm,
            "task": self.spec.task_spec().label(),
            "namespace": self.namespace,
            "task_fingerprint": self.task_fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": int(self.attempts),
            "preemptions": int(self.preemptions),
            "worker": self.worker,
            "error": self.error,
            "fl_trainings": int(self.fl_trainings),
            "store_hits": int(self.store_hits),
        }
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload


__all__ = [
    "DEFAULT_TENANT",
    "JOB_STATUSES",
    "JobRecord",
    "JobSpec",
    "TERMINAL_STATUSES",
    "tenant_namespace",
]
