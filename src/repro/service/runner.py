"""Execute one service job — the job → plan-cell adaptation layer.

A job runs *exactly* the computation a ``repro run`` cell with the same task
and algorithm would: the estimator comes from
:func:`repro.experiments.pipeline.build_task_algorithm` (same γ, same seed,
same builder registry), checkpoints round-trip through
:func:`repro.experiments.pipeline.load_estimator_checkpoint`, and the chunk
observer persists the estimator state *before* doing anything that can raise
— the same ordering the pipeline uses, and the property that makes graceful
preemption free: raising :class:`JobPreempted` from the observer always
leaves the just-completed chunk on disk, so the resumed attempt continues
bitwise-identically.

What the service adds around that core:

* the job's utility store is wrapped in a
  :class:`~repro.service.ledger.RecordingStore`, so every actual FL training
  lands in the trainings ledger under this job's id;
* the store is re-attached under the job's *tenant* namespace (see
  :func:`~repro.service.models.tenant_namespace`) — the default tenant keeps
  store-key parity with direct CLI runs;
* control flags (cancel / preempt) are polled at every chunk boundary, the
  only place the anytime protocol can stop cleanly.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core import ValuationAlgorithm, parse_stopping_rule
from repro.experiments.pipeline import build_task_algorithm, load_estimator_checkpoint
from repro.service.ledger import RecordingStore
from repro.service.models import JobRecord
from repro.store.base import UtilityStore

CHECKPOINTS_DIR = "checkpoints"
RESULTS_DIR = "results"


class JobPreempted(Exception):
    """Raised from the chunk observer to yield the worker to a higher-priority
    job; the chunk's checkpoint is already on disk when this propagates."""


class JobCancelled(Exception):
    """Raised from the chunk observer when the client cancelled the job."""


@dataclass
class JobOutcome:
    """What one execution attempt of a job produced."""

    status: str  # 'done' | 'preempted' | 'cancelled'
    result: Optional[dict] = None
    fl_trainings: int = 0
    store_hits: int = 0
    first_snapshot_seconds: Optional[float] = None
    chunks: int = 0


def checkpoint_path(state_dir: str, job_id: str) -> str:
    return os.path.join(state_dir, CHECKPOINTS_DIR, f"{job_id}.state.json")


def result_path(state_dir: str, job_id: str) -> str:
    return os.path.join(state_dir, RESULTS_DIR, f"{job_id}.json")


def drop_checkpoint(state_dir: str, job_id: str) -> None:
    path = checkpoint_path(state_dir, job_id)
    if os.path.exists(path):
        os.remove(path)


def _write_json(path: str, payload: dict) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def run_job(
    record: JobRecord,
    store: UtilityStore,
    state_dir: str,
    record_training: Callable[[str, str], None],
    control: Callable[[], Tuple[bool, bool]],
    emit: Callable[[dict], None],
    say: Callable[[str], None],
    telemetry=None,
) -> JobOutcome:
    """Run (or resume) one claimed job to its next stopping point.

    ``control()`` returns ``(cancel_requested, preempt_requested)`` and is
    polled once per chunk; ``emit`` receives the job's stream events (the
    ``--json-stream`` schema plus ``job_id``); ``record_training`` is the
    job store's ledger hook.
    """
    spec = record.spec
    task_spec = spec.task_spec()
    job_id = record.job_id
    ckpt = checkpoint_path(state_dir, job_id)
    started = time.perf_counter()
    progress = {"first_snapshot": None, "chunks": 0}

    recording = RecordingStore(store, record_training, job_id)
    utility = task_spec.build(recording)
    try:
        # Re-namespace under the tenant (a no-op for the default tenant,
        # whose namespace IS the task fingerprint).
        utility.attach_store(recording, record.namespace)
        if spec.backend == "fleet":
            from repro.fleet.coordinator import FleetExecutor

            utility.set_n_workers(
                spec.n_workers,
                FleetExecutor(
                    queue_dir=spec.queue_dir,
                    spawn_workers=spec.spawn_workers,
                    worker_backend=spec.worker_backend or "serial",
                    lease_seconds=spec.lease_seconds,
                    log=say,
                ),
            )
        elif spec.n_workers > 1 or spec.backend is not None:
            utility.set_n_workers(spec.n_workers, spec.backend)
        if telemetry is not None:
            utility.set_telemetry(telemetry)

        algorithm = build_task_algorithm(task_spec, spec.algorithm, utility.n_clients)
        stop_rule = (
            parse_stopping_rule(spec.stop_on) if spec.stop_on is not None else None
        )

        def observe(snapshot) -> None:
            # Checkpoint BEFORE emitting or raising, so whatever interrupts
            # this chunk still finds it on disk (the pipeline's ordering).
            resumable = snapshot.state is not None and not snapshot.done
            if (
                resumable
                and spec.checkpoint_every
                and snapshot.chunk_index % spec.checkpoint_every == 0
            ):
                _write_json(ckpt, snapshot.state.to_dict())
            if progress["first_snapshot"] is None:
                progress["first_snapshot"] = time.perf_counter() - started
            progress["chunks"] += 1
            emit(
                {
                    "event": "snapshot",
                    "job_id": job_id,
                    "task": task_spec.label(),
                    **snapshot.to_dict(),
                }
            )
            cancel, preempt = control()
            if cancel:
                raise JobCancelled(job_id)
            if preempt and resumable and spec.checkpoint_every:
                # The scheduler asked us to yield: persist THIS chunk (it may
                # be off the checkpoint cadence) and hand the worker back.
                _write_json(ckpt, snapshot.state.to_dict())
                raise JobPreempted(job_id)

        try:
            if not isinstance(algorithm, ValuationAlgorithm):
                # Single-chunk adapters (the gradient baselines) cannot be
                # checkpointed mid-run; they stream through iter_run.
                last = None
                for last in algorithm.iter_run(utility, utility.n_clients):
                    observe(last)
                result = last.result()
            else:
                state = load_estimator_checkpoint(
                    ckpt, algorithm, utility.n_clients, say
                )
                if state is not None:
                    say(
                        f"{job_id}: continuing from checkpoint "
                        f"(chunk {state.chunk_index}, "
                        f"{state.evaluations} evaluations spent)"
                    )
                result = algorithm.run(
                    utility,
                    utility.n_clients,
                    stopping_rule=stop_rule,
                    state=state,
                    on_snapshot=observe,
                )
        except JobPreempted:
            emit(
                {
                    "event": "preempted",
                    "job_id": job_id,
                    "task": task_spec.label(),
                    "algorithm": spec.algorithm,
                }
            )
            return JobOutcome(
                status="preempted",
                fl_trainings=utility.evaluations,
                store_hits=utility.store_hits,
                first_snapshot_seconds=progress["first_snapshot"],
                chunks=progress["chunks"],
            )
        except JobCancelled:
            drop_checkpoint(state_dir, job_id)
            emit(
                {
                    "event": "cancelled",
                    "job_id": job_id,
                    "task": task_spec.label(),
                    "algorithm": spec.algorithm,
                }
            )
            return JobOutcome(
                status="cancelled",
                fl_trainings=utility.evaluations,
                store_hits=utility.store_hits,
                first_snapshot_seconds=progress["first_snapshot"],
                chunks=progress["chunks"],
            )

        payload = {
            "job_id": job_id,
            "algorithm": spec.algorithm,
            "task": task_spec.label(),
            "task_fingerprint": record.task_fingerprint,
            "tenant": spec.tenant,
            "namespace": record.namespace,
            "result": result.to_dict(),
            "store_hits": utility.store_hits,
            "fl_trainings": utility.evaluations,
        }
        _write_json(result_path(state_dir, job_id), payload)
        drop_checkpoint(state_dir, job_id)
        emit({"event": "result", "status": "done", **payload})
        return JobOutcome(
            status="done",
            result=payload,
            fl_trainings=utility.evaluations,
            store_hits=utility.store_hits,
            first_snapshot_seconds=progress["first_snapshot"],
            chunks=progress["chunks"],
        )
    finally:
        utility.close()


__all__ = [
    "CHECKPOINTS_DIR",
    "JobCancelled",
    "JobOutcome",
    "JobPreempted",
    "RESULTS_DIR",
    "checkpoint_path",
    "drop_checkpoint",
    "result_path",
    "run_job",
]
