"""The service's durable job queue: one WAL-SQLite file of job rows.

Same concurrency idioms as the fleet's :class:`~repro.fleet.queue.LeaseQueue`
(one connection behind a process lock, ``BEGIN IMMEDIATE`` transactions,
bounded busy retry) but a different protocol: jobs are *claimed by in-process
scheduler workers*, not leased to remote processes, so there are no lease
deadlines — a crashed server leaves rows in ``running`` and
:meth:`JobStore.recover` requeues them on restart (their checkpoints carry
the actual progress).

Scheduling order inside :meth:`claim` is three-keyed:

1. **priority** — higher first (the preemption satellite's other half);
2. **tenant fairness** — among equal priorities, the tenant with the fewest
   running jobs goes first, so one chatty tenant cannot starve the rest;
3. **FIFO** — submission order (``seq``) breaks the remaining ties.

A claim also never picks a job whose store namespace is already running
(*store affinity*): two concurrent submits of the same (tenant, task) would
otherwise each miss the shared store's cold cache and train the same
coalitions twice.  Serialised, the second becomes a warm re-run.  The
``trainings`` ledger — one plain-INSERT row per actual training, exactly the
fleet's idiom — is how tests assert that invariant:
``COUNT(*) == COUNT(DISTINCT key)``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service.models import JobRecord, JobSpec
from repro.store.sqlite import run_with_busy_retry

JOBS_FILENAME = "jobs.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq               INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id            TEXT NOT NULL UNIQUE,
    tenant            TEXT NOT NULL,
    priority          INTEGER NOT NULL DEFAULT 0,
    status            TEXT NOT NULL DEFAULT 'queued',
    spec              TEXT NOT NULL,
    namespace         TEXT NOT NULL,
    task_fingerprint  TEXT NOT NULL,
    algorithm         TEXT NOT NULL,
    submitted_at      REAL NOT NULL,
    queued_at         REAL NOT NULL,
    started_at        REAL,
    finished_at       REAL,
    attempts          INTEGER NOT NULL DEFAULT 0,
    preemptions       INTEGER NOT NULL DEFAULT 0,
    worker            TEXT,
    error             TEXT,
    result            TEXT,
    fl_trainings      INTEGER NOT NULL DEFAULT 0,
    store_hits        INTEGER NOT NULL DEFAULT 0,
    cancel_requested  INTEGER NOT NULL DEFAULT 0,
    preempt_requested INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs (status, priority DESC, seq);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant, seq);
CREATE TABLE IF NOT EXISTS trainings (
    key         TEXT NOT NULL,
    job_id      TEXT NOT NULL,
    recorded_at REAL NOT NULL
);
"""

_RECORD_COLUMNS = (
    "job_id, tenant, priority, status, spec, namespace, task_fingerprint, "
    "submitted_at, started_at, finished_at, attempts, preemptions, worker, "
    "error, result, fl_trainings, store_hits"
)


def _record_from_row(row: tuple) -> JobRecord:
    (
        job_id,
        _tenant,
        _priority,
        status,
        spec_json,
        namespace,
        task_fingerprint,
        submitted_at,
        started_at,
        finished_at,
        attempts,
        preemptions,
        worker,
        error,
        result_json,
        fl_trainings,
        store_hits,
    ) = row
    return JobRecord(
        job_id=job_id,
        spec=JobSpec.from_dict(json.loads(spec_json)),
        status=status,
        namespace=namespace,
        task_fingerprint=task_fingerprint,
        submitted_at=float(submitted_at),
        started_at=None if started_at is None else float(started_at),
        finished_at=None if finished_at is None else float(finished_at),
        attempts=int(attempts),
        preemptions=int(preemptions),
        worker=worker,
        error=error,
        result=None if result_json is None else json.loads(result_json),
        fl_trainings=int(fl_trainings),
        store_hits=int(store_hits),
    )


class JobStore:
    """Thread- and process-safe handle on one service state directory's jobs."""

    def __init__(self, state_dir: str, timeout: float = 10.0) -> None:
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.path = os.path.join(self.state_dir, JOBS_FILENAME)
        self._lock = threading.RLock()
        # isolation_level=None: explicit BEGIN IMMEDIATE below, exactly as in
        # fleet/queue.py — implicit transactions would defer lock acquisition
        # and turn claims into lost-update races.
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False, isolation_level=None
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        run_with_busy_retry(lambda: self._connection.executescript(_SCHEMA))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        # Submission order and wait times are wall-clock *queue bookkeeping*:
        # they decide scheduling and what /metrics reports, never any value.
        return time.time()  # repro: allow[RPR002] reason=job timestamps are queue telemetry, not identity

    def _transaction(self, operation):
        """Run ``operation(connection)`` inside BEGIN IMMEDIATE, with retry."""

        def attempt():
            with self._lock:
                self._connection.execute("BEGIN IMMEDIATE")
                try:
                    result = operation(self._connection)
                    self._connection.execute("COMMIT")
                    return result
                except BaseException:
                    self._connection.execute("ROLLBACK")
                    raise

        return run_with_busy_retry(attempt)

    def _query(self, sql: str, params: tuple = ()) -> List[tuple]:
        def attempt():
            with self._lock:
                return self._connection.execute(sql, params).fetchall()

        return run_with_busy_retry(attempt)

    # ------------------------------------------------------------------ #
    # Submit / inspect
    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec) -> JobRecord:
        """Durably enqueue one job; returns its record (status ``queued``).

        The job id derives from the row's transaction-assigned sequence
        number — unique across concurrent submitters without any randomness
        (RPR001: nothing about a job's identity may depend on entropy).
        """
        now = self._now()
        spec_json = json.dumps(spec.to_dict(), sort_keys=True)
        namespace = spec.namespace()
        task_fingerprint = spec.task_fingerprint()

        def op(connection) -> str:
            cursor = connection.execute(
                "INSERT INTO jobs (job_id, tenant, priority, status, spec, "
                "namespace, task_fingerprint, algorithm, submitted_at, queued_at) "
                "VALUES ('pending', ?, ?, 'queued', ?, ?, ?, ?, ?, ?)",
                (
                    spec.tenant,
                    int(spec.priority),
                    spec_json,
                    namespace,
                    task_fingerprint,
                    spec.algorithm,
                    now,
                    now,
                ),
            )
            job_id = f"job-{cursor.lastrowid:06d}"
            connection.execute(
                "UPDATE jobs SET job_id = ? WHERE seq = ?", (job_id, cursor.lastrowid)
            )
            return job_id

        job_id = self._transaction(op)
        return JobRecord(
            job_id=job_id,
            spec=spec,
            status="queued",
            namespace=namespace,
            task_fingerprint=task_fingerprint,
            submitted_at=now,
        )

    def get(self, job_id: str) -> Optional[JobRecord]:
        rows = self._query(
            f"SELECT {_RECORD_COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
        )
        return _record_from_row(rows[0]) if rows else None

    def list_jobs(
        self,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
        limit: int = 200,
    ) -> List[JobRecord]:
        sql = f"SELECT {_RECORD_COLUMNS} FROM jobs"
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq DESC LIMIT ?"
        params.append(int(limit))
        return [_record_from_row(row) for row in self._query(sql, tuple(params))]

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over all jobs (the queue-depth/running gauges)."""
        return {
            status: int(n)
            for status, n in self._query(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            )
        }

    # ------------------------------------------------------------------ #
    # Scheduling transitions
    # ------------------------------------------------------------------ #
    def claim(self, worker: str) -> Optional[Tuple[JobRecord, float]]:
        """Atomically claim the next runnable job for *worker*.

        Returns ``(record, queue_wait_seconds)`` with the record already in
        ``running``, or ``None`` when nothing is runnable.  Order: priority,
        then tenant fairness, then FIFO — skipping any job whose store
        namespace is already running (see the module docstring).
        """
        now = self._now()

        def op(connection) -> Optional[Tuple[str, float]]:
            busy = {
                row[0]
                for row in connection.execute(
                    "SELECT namespace FROM jobs WHERE status = 'running'"
                )
            }
            running_by_tenant: Dict[str, int] = {}
            for tenant, n in connection.execute(
                "SELECT tenant, COUNT(*) FROM jobs WHERE status = 'running' "
                "GROUP BY tenant"
            ):
                running_by_tenant[tenant] = int(n)
            candidates = connection.execute(
                "SELECT seq, job_id, tenant, priority, queued_at, namespace "
                "FROM jobs WHERE status = 'queued' ORDER BY priority DESC, seq"
            ).fetchall()
            chosen = None  # (fairness_key, seq, job_id, queued_at)
            chosen_priority = 0
            for seq, job_id, tenant, priority, queued_at, namespace in candidates:
                if chosen is not None and priority < chosen_priority:
                    break  # candidates are priority-sorted; no better one left
                if namespace in busy:
                    continue  # store affinity: that namespace is running
                key = (running_by_tenant.get(tenant, 0), seq)
                if chosen is None or key < chosen[0]:
                    chosen = (key, seq, job_id, queued_at)
                    chosen_priority = priority
            if chosen is None:
                return None
            _key, seq, job_id, queued_at = chosen
            connection.execute(
                "UPDATE jobs SET status = 'running', worker = ?, started_at = ?, "
                "attempts = attempts + 1, preempt_requested = 0 WHERE seq = ?",
                (worker, now, seq),
            )
            return job_id, max(now - float(queued_at), 0.0)

        claimed = self._transaction(op)
        if claimed is None:
            return None
        job_id, wait = claimed
        record = self.get(job_id)
        if record is None:  # pragma: no cover - the row was just written
            return None
        return record, wait

    def finish(
        self,
        job_id: str,
        worker: str,
        result: dict,
        fl_trainings: int = 0,
        store_hits: int = 0,
    ) -> bool:
        """``running → done``; ``False`` if the job is no longer this worker's."""
        now = self._now()
        result_json = json.dumps(result, sort_keys=True)

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE jobs SET status = 'done', finished_at = ?, result = ?, "
                "fl_trainings = fl_trainings + ?, store_hits = store_hits + ?, "
                "error = NULL WHERE job_id = ? AND worker = ? AND status = 'running'",
                (now, result_json, int(fl_trainings), int(store_hits), job_id, worker),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def fail(self, job_id: str, worker: str, error: str) -> bool:
        """``running → failed`` with the error message recorded."""
        now = self._now()

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE jobs SET status = 'failed', finished_at = ?, error = ? "
                "WHERE job_id = ? AND worker = ? AND status = 'running'",
                (now, str(error)[:1000], job_id, worker),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def requeue(
        self,
        job_id: str,
        worker: str,
        preempted: bool,
        fl_trainings: int = 0,
        store_hits: int = 0,
    ) -> bool:
        """``running → queued`` (graceful preemption); progress is on disk."""
        now = self._now()

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE jobs SET status = 'queued', worker = NULL, queued_at = ?, "
                "preemptions = preemptions + ?, preempt_requested = 0, "
                "fl_trainings = fl_trainings + ?, store_hits = store_hits + ? "
                "WHERE job_id = ? AND worker = ? AND status = 'running'",
                (
                    now,
                    1 if preempted else 0,
                    int(fl_trainings),
                    int(store_hits),
                    job_id,
                    worker,
                ),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def mark_cancelled(self, job_id: str, worker: str) -> bool:
        """``running → cancelled`` after the runner honoured a cancel request."""
        now = self._now()

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?, "
                "worker = NULL WHERE job_id = ? AND worker = ? "
                "AND status = 'running'",
                (now, job_id, worker),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    # ------------------------------------------------------------------ #
    # Client-driven transitions
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns its resulting status, or ``None`` if unknown.

        A queued job is cancelled immediately (its queue slot frees in the
        same transaction).  A running job gets ``cancel_requested`` set and
        transitions once its runner reaches the next chunk boundary.
        Terminal jobs are left as they are.
        """
        now = self._now()

        def op(connection) -> Optional[str]:
            row = connection.execute(
                "SELECT status FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            status = row[0]
            if status == "queued":
                connection.execute(
                    "UPDATE jobs SET status = 'cancelled', finished_at = ? "
                    "WHERE job_id = ? AND status = 'queued'",
                    (now, job_id),
                )
                return "cancelled"
            if status == "running":
                connection.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE job_id = ?",
                    (job_id,),
                )
                return "cancelling"
            return status

        return self._transaction(op)

    def request_preempt(self, job_id: str) -> bool:
        """Ask a running job to checkpoint and yield at its next chunk."""

        def op(connection) -> bool:
            cursor = connection.execute(
                "UPDATE jobs SET preempt_requested = 1 "
                "WHERE job_id = ? AND status = 'running'",
                (job_id,),
            )
            return cursor.rowcount > 0

        return self._transaction(op)

    def control_flags(self, job_id: str) -> Tuple[bool, bool]:
        """``(cancel_requested, preempt_requested)`` — polled per chunk."""
        rows = self._query(
            "SELECT cancel_requested, preempt_requested FROM jobs WHERE job_id = ?",
            (job_id,),
        )
        if not rows:
            return False, False
        return bool(rows[0][0]), bool(rows[0][1])

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> List[str]:
        """Requeue every job a dead server left in ``running``.

        Called once at startup, before any scheduler worker claims.  Jobs
        with a pending cancel request are cancelled instead of requeued.
        Returns the requeued job ids (the recovery counter's increment).
        """
        now = self._now()

        def op(connection) -> List[str]:
            connection.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?, "
                "worker = NULL WHERE status = 'running' AND cancel_requested = 1",
                (now,),
            )
            rows = connection.execute(
                "SELECT job_id FROM jobs WHERE status = 'running'"
            ).fetchall()
            connection.execute(
                "UPDATE jobs SET status = 'queued', worker = NULL, queued_at = ?, "
                "preempt_requested = 0 WHERE status = 'running'",
                (now,),
            )
            return [row[0] for row in rows]

        return self._transaction(op)

    # ------------------------------------------------------------------ #
    # Trainings ledger
    # ------------------------------------------------------------------ #
    def record_training(self, key: str, job_id: str) -> None:
        """Record one *deposited* training (call only after the store put).

        Deliberately a plain INSERT, exactly like the fleet ledger: a
        duplicated training must show up as a duplicate row, not be papered
        over by a unique constraint.
        """
        now = self._now()
        self._transaction(
            lambda c: c.execute(
                "INSERT INTO trainings (key, job_id, recorded_at) VALUES (?, ?, ?)",
                (key, job_id, now),
            )
        )

    def training_counts(self) -> Tuple[int, int]:
        """``(total, distinct)`` ledger rows; equal ⇔ zero duplicated trainings."""
        rows = self._query("SELECT COUNT(*), COUNT(DISTINCT key) FROM trainings")
        return int(rows[0][0]), int(rows[0][1])

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["JOBS_FILENAME", "JobStore"]
