"""The valuation service core: a job scheduler over in-process workers.

:class:`ValuationService` owns one state directory::

    <state-dir>/
        jobs.sqlite         durable job queue + trainings ledger (JobStore)
        store.sqlite        shared utility store (unless an external one is given)
        checkpoints/        <job>.state.json — mid-run EstimatorState
        events/             <job>.jsonl      — the job's --json-stream events
        results/            <job>.json       — terminal result payloads
        telemetry/          journal.jsonl    — spans + metrics (Telemetry)

N scheduler workers (plain threads — jobs themselves fan out through their
own executor backends, including ``fleet``) claim jobs from the store and
drive them through :func:`repro.service.runner.run_job`.  Priorities preempt:
a submit that finds every worker busy and a strictly lower-priority job
running flags that job, whose runner checkpoints at its next chunk boundary
and returns to the queue.  A graceful :meth:`stop` preempts *everything* the
same way, so a restarted server continues each job from its checkpoint —
and a SIGKILL'd server recovers the same jobs via :meth:`JobStore.recover`,
just without the courtesy checkpoint (the last cadence checkpoint stands).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.jobs import JobStore
from repro.service.models import JobRecord, JobSpec
from repro.service.runner import JobOutcome, run_job
from repro.service.stream import EventWriter
from repro.store import open_store
from repro.store.base import UtilityStore
from repro.telemetry import Telemetry
from repro.telemetry.metrics import prometheus_text
from repro.telemetry.names import (
    SERVICE_FIRST_SNAPSHOT_SECONDS,
    SERVICE_JOB_SECONDS,
    SERVICE_JOB_SPAN,
    SERVICE_JOBS_CANCELLED,
    SERVICE_JOBS_COMPLETED,
    SERVICE_JOBS_FAILED,
    SERVICE_JOBS_RECOVERED,
    SERVICE_JOBS_SUBMITTED,
    SERVICE_PREEMPTIONS,
    SERVICE_QUEUE_DEPTH,
    SERVICE_QUEUE_WAIT_SECONDS,
    SERVICE_RUNNING,
)

EVENTS_DIR = "events"
DEFAULT_STORE_FILENAME = "store.sqlite"


def _no_log(message: str) -> None:
    """Default sink for service log lines (the server passes stderr)."""


class ValuationService:
    """Long-running multi-tenant valuation scheduler over one state dir."""

    def __init__(
        self,
        state_dir: str,
        workers: int = 2,
        store: Optional[UtilityStore] = None,
        store_path: Optional[str] = None,
        store_backend: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        log: Optional[Callable[[str], None]] = None,
        poll_seconds: float = 0.2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.workers = int(workers)
        self.jobs = JobStore(self.state_dir)
        if store is not None:
            self.store = store
            self._owns_store = False
        else:
            self.store = open_store(
                store_path or os.path.join(self.state_dir, DEFAULT_STORE_FILENAME),
                backend=store_backend,
            )
            self._owns_store = True
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.for_run_dir(self.state_dir)
        )
        self.log = log if log is not None else _no_log
        self._poll_seconds = float(poll_seconds)
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._started = False
        self.recovered_jobs: List[str] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ValuationService":
        """Recover interrupted jobs, then start the scheduler workers."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self.recovered_jobs = self.jobs.recover()
            for job_id in self.recovered_jobs:
                self.telemetry.count(SERVICE_JOBS_RECOVERED)
                self._emit_for(
                    job_id, {"event": "recovered", "job_id": job_id}
                )
                self.log(f"recovered {job_id}: requeued from checkpoint")
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(f"scheduler-{index}",),
                    name=f"repro-scheduler-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
        for thread in self._threads:
            thread.start()
        self._update_gauges()
        return self

    def stop(self) -> None:
        """Gracefully stop: running jobs checkpoint, requeue, workers exit."""
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._update_gauges()
        self.telemetry.close()
        self.jobs.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "ValuationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Client surface (what the HTTP handlers call)
    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec) -> JobRecord:
        """Durably enqueue a job; may flag a lower-priority one for preemption."""
        record = self.jobs.submit(spec)
        self.telemetry.count(SERVICE_JOBS_SUBMITTED)
        self._emit_for(
            record.job_id,
            {
                "event": "queued",
                "job_id": record.job_id,
                "task": spec.task_spec().label(),
                "algorithm": spec.algorithm,
                "tenant": spec.tenant,
                "priority": int(spec.priority),
            },
        )
        self._maybe_preempt_for(record)
        self._update_gauges()
        with self._wake:
            self._wake.notify_all()
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def list_jobs(
        self, tenant: Optional[str] = None, status: Optional[str] = None
    ) -> List[JobRecord]:
        return self.jobs.list_jobs(tenant=tenant, status=status)

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns the resulting status (None if unknown)."""
        status = self.jobs.cancel(job_id)
        if status == "cancelled":
            # Cancelled straight out of the queue; a running job's runner
            # emits its own event (and counts) when it honours the flag.
            self.telemetry.count(SERVICE_JOBS_CANCELLED)
            self._emit_for(job_id, {"event": "cancelled", "job_id": job_id})
            self._update_gauges()
            with self._wake:
                self._wake.notify_all()
        return status

    def event_log_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, EVENTS_DIR, f"{job_id}.jsonl")

    def job_finished(self, job_id: str) -> bool:
        """True once the job is terminal (the SSE tail-loop's stop signal)."""
        record = self.jobs.get(job_id)
        return record is None or record.terminal

    def metrics_text(self) -> str:
        """Current metrics as Prometheus exposition text (GET /metrics)."""
        self._update_gauges()
        return prometheus_text(self.telemetry.snapshot())

    def counts(self) -> Dict[str, int]:
        return self.jobs.counts()

    # ------------------------------------------------------------------ #
    # Scheduling internals
    # ------------------------------------------------------------------ #
    def _maybe_preempt_for(self, record: JobRecord) -> None:
        """Flag the weakest running job if *record* outranks it and no
        worker is idle; the flagged runner yields at its next chunk."""
        running = self.jobs.list_jobs(status="running", limit=self.workers + 1)
        if len(running) < self.workers:
            return  # an idle worker will pick the job up on its own
        victim = min(running, key=lambda r: (r.spec.priority, r.job_id))
        if victim.spec.priority < record.spec.priority:
            if self.jobs.request_preempt(victim.job_id):
                self.log(
                    f"preempting {victim.job_id} (priority {victim.spec.priority}) "
                    f"for {record.job_id} (priority {record.spec.priority})"
                )

    def _control_flags(self, job_id: str) -> Tuple[bool, bool]:
        """(cancel, preempt) for a running job; a stopping service preempts
        everything so each job checkpoints before the workers exit."""
        cancel, preempt = self.jobs.control_flags(job_id)
        if self._stop.is_set():
            preempt = True
        return cancel, preempt

    def _emit_for(self, job_id: str, payload: dict) -> None:
        """Append one event to a job's stream log (outside any run attempt)."""
        EventWriter(path=self._events_path_made(job_id)).emit(payload)

    def _events_path_made(self, job_id: str) -> str:
        path = self.event_log_path(job_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def _update_gauges(self) -> None:
        counts = self.jobs.counts()
        self.telemetry.set_gauge(SERVICE_QUEUE_DEPTH, counts.get("queued", 0))
        self.telemetry.set_gauge(SERVICE_RUNNING, counts.get("running", 0))

    def _worker_loop(self, worker: str) -> None:
        while not self._stop.is_set():
            claimed = self.jobs.claim(worker)
            if claimed is None:
                with self._wake:
                    self._wake.wait(timeout=self._poll_seconds)
                continue
            record, queue_wait = claimed
            self.telemetry.observe(SERVICE_QUEUE_WAIT_SECONDS, queue_wait)
            self._update_gauges()
            self._execute(worker, record)
            self._update_gauges()
            with self._wake:
                # A finished job may unblock a same-namespace queued one.
                self._wake.notify_all()

    def _execute(self, worker: str, record: JobRecord) -> None:
        job_id = record.job_id
        writer = EventWriter(path=self._events_path_made(job_id))
        span = self.telemetry.span(
            SERVICE_JOB_SPAN,
            job=job_id,
            tenant=record.spec.tenant,
            algorithm=record.spec.algorithm,
            attempt=record.attempts,
        )
        controller = _JobController(self, job_id)
        try:
            with span:
                outcome = run_job(
                    record,
                    self.store,
                    self.state_dir,
                    self.jobs.record_training,
                    controller.flags,
                    writer.emit,
                    self.log,
                    telemetry=self.telemetry,
                )
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            # One bad job must not take down the scheduler thread; the error
            # is recorded on the job row and reported in its event stream.
            self.log(f"{job_id} failed: {type(error).__name__}: {error}")
            self.jobs.fail(job_id, worker, f"{type(error).__name__}: {error}")
            self.telemetry.count(SERVICE_JOBS_FAILED)
            writer.emit(
                {
                    "event": "failed",
                    "job_id": job_id,
                    "error": f"{type(error).__name__}: {error}",
                }
            )
            return
        if outcome.first_snapshot_seconds is not None and record.attempts == 1:
            self.telemetry.observe(
                SERVICE_FIRST_SNAPSHOT_SECONDS, outcome.first_snapshot_seconds
            )
        if outcome.status == "done":
            self.jobs.finish(
                job_id,
                worker,
                outcome.result or {},
                fl_trainings=outcome.fl_trainings,
                store_hits=outcome.store_hits,
            )
            self.telemetry.count(SERVICE_JOBS_COMPLETED)
        elif outcome.status == "preempted":
            self.jobs.requeue(
                job_id,
                worker,
                preempted=True,
                fl_trainings=outcome.fl_trainings,
                store_hits=outcome.store_hits,
            )
            self.telemetry.count(SERVICE_PREEMPTIONS)
        elif outcome.status == "cancelled":
            self.jobs.mark_cancelled(job_id, worker)
            self.telemetry.count(SERVICE_JOBS_CANCELLED)
        self._observe_job_seconds(outcome)

    def _observe_job_seconds(self, outcome: JobOutcome) -> None:
        # Attempt duration approximated by the estimator's own elapsed clock
        # when available; recorded per attempt, so preempted attempts count.
        if outcome.result is not None:
            elapsed = outcome.result.get("result", {}).get("elapsed_seconds")
            if elapsed is not None:
                self.telemetry.observe(SERVICE_JOB_SECONDS, float(elapsed))


class _JobController:
    """Bound (service, job) pair: the runner's per-chunk control callback.

    A named class instead of a closure so the callback that crosses into
    :func:`run_job` is a plain bound method (the codebase's RPR004 idiom for
    callables handed across subsystem boundaries).
    """

    def __init__(self, service: ValuationService, job_id: str) -> None:
        self._service = service
        self._job_id = job_id

    def flags(self) -> Tuple[bool, bool]:
        return self._service._control_flags(self._job_id)


__all__ = ["DEFAULT_STORE_FILENAME", "EVENTS_DIR", "ValuationService"]
