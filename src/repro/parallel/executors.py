"""Pluggable execution backends for batched coalition evaluation.

A coalition executor maps an evaluator over a list of coalitions and returns
the utilities *in input order*.  Three backends are provided:

* :class:`SerialExecutor` — plain loop; the reference semantics.
* :class:`ThreadPoolExecutor` — concurrent evaluation in threads.  The right
  choice when the evaluator releases the GIL (NumPy linear algebra, I/O,
  sleeping cost models) or holds non-picklable state such as lambda model
  factories.
* :class:`ProcessPoolExecutor` — concurrent evaluation in worker processes.
  Requires the evaluator to be picklable; buys true CPU parallelism for
  pure-Python training loops.

All backends are deterministic in *values*: utilities depend only on the
coalition (per-coalition seeds are content-derived, see
:meth:`repro.fl.federation.FederatedTrainer._coalition_seed`), and results are
re-associated with their coalitions by position, so the evaluation order and
worker assignment cannot change what any algorithm computes.
"""

from __future__ import annotations

import abc
import concurrent.futures
from typing import Callable, Sequence, Union

Evaluator = Callable[[frozenset], float]

#: backend names accepted by :func:`make_executor`
EXECUTOR_BACKENDS = ("serial", "thread", "process")


class CoalitionExecutor(abc.ABC):
    """Maps an evaluator over coalitions, preserving input order.

    Attributes
    ----------
    shares_memory:
        Whether workers see the caller's address space.  Shared-memory
        backends (serial, thread) can evaluate through a
        :class:`~repro.utils.cache.UtilityCache` directly and get
        single-flight deduplication for free; process backends must have
        results deposited back into the cache by the parent.
    """

    shares_memory: bool = True

    @abc.abstractmethod
    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        """Return ``[evaluator(c) for c in coalitions]``, possibly in parallel."""

    def close(self) -> None:
        """Release any worker resources (no-op for stateless executors)."""


class SerialExecutor(CoalitionExecutor):
    """Sequential reference backend: a plain loop, no worker overhead."""

    shares_memory = True

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        return [float(evaluator(coalition)) for coalition in coalitions]


class _PooledExecutor(CoalitionExecutor):
    """Shared machinery for pool-backed executors.

    The underlying worker pool is created lazily on first use and *reused*
    across ``map_utilities`` calls — an algorithm run issues one batch per
    phase, and paying pool startup (and, for processes, evaluator pickling)
    per batch would dwarf the work being parallelised.  ``close`` releases
    the pool; the next call transparently recreates it.
    """

    _pool_factory = None  # concurrent.futures executor class

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool = None

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        if len(coalitions) <= 1 or self.n_workers == 1:
            return SerialExecutor().map_utilities(evaluator, coalitions)
        if self._pool is None:
            self._pool = self._pool_factory(max_workers=self.n_workers)
        try:
            return [float(v) for v in self._pool.map(evaluator, coalitions)]
        except BaseException:
            # A failed batch may leave the pool broken (e.g. an unpicklable
            # evaluator in a process pool); discard it so the next call
            # starts from a fresh one.
            self.close()
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolExecutor(_PooledExecutor):
    """Evaluates coalitions concurrently in a persistent thread pool."""

    shares_memory = True
    _pool_factory = concurrent.futures.ThreadPoolExecutor


class ProcessPoolExecutor(_PooledExecutor):
    """Evaluates coalitions concurrently in a persistent process pool.

    The evaluator (and its closure — datasets, model factory, config) must be
    picklable; lambdas are not.  Side effects performed by the evaluator in
    the workers (counters, caches) stay in the workers — only the returned
    utilities travel back.
    """

    shares_memory = False
    _pool_factory = concurrent.futures.ProcessPoolExecutor


ExecutorLike = Union[str, CoalitionExecutor, None]


def make_executor(executor: ExecutorLike = None, n_workers: int = 1) -> CoalitionExecutor:
    """Resolve an executor spec into a :class:`CoalitionExecutor` instance.

    ``executor`` may be an existing instance (returned unchanged), a backend
    name from :data:`EXECUTOR_BACKENDS`, or ``None`` — which picks
    :class:`SerialExecutor` for ``n_workers <= 1`` and a thread pool
    otherwise (the only backend that is always safe, since it needs no
    picklability).
    """
    if isinstance(executor, CoalitionExecutor):
        return executor
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if executor is None:
        executor = "serial" if n_workers <= 1 else "thread"
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadPoolExecutor(n_workers)
    if executor == "process":
        return ProcessPoolExecutor(n_workers)
    raise ValueError(
        f"unknown executor backend {executor!r}; choose from {EXECUTOR_BACKENDS}"
    )
