"""Pluggable execution backends for batched coalition evaluation.

A coalition executor maps an evaluator over a list of coalitions and returns
the utilities *in input order*.  Five backends are provided:

* :class:`SerialExecutor` — plain loop; the reference semantics.
* :class:`ThreadPoolExecutor` — concurrent evaluation in threads.  The right
  choice when the evaluator releases the GIL (NumPy linear algebra, I/O,
  sleeping cost models) or holds non-picklable state such as lambda model
  factories.
* :class:`ProcessPoolExecutor` — concurrent evaluation in worker processes.
  Requires the evaluator to be picklable; buys true CPU parallelism for
  pure-Python training loops.
* :class:`VectorizedExecutor` — trains the whole batch in lockstep as
  stacked parameter matrices (:mod:`repro.fl.vectorized`) instead of
  parallelising per-coalition loops; no workers at all.  Falls back to the
  serial loop for evaluators the vectorized engine cannot handle (plain
  game functions, non-parametric/CNN models, partial client participation).
* ``FleetExecutor`` (:mod:`repro.fleet.coordinator`, re-exported here) —
  enqueues miss batches onto a durable shared lease queue and blocks on
  results deposited through the persistent utility store, so any number of
  worker *processes or hosts* (``repro worker <queue-dir>``) drain one
  coalition plan.  Needs a queue directory and a disk-backed store, so
  :func:`make_executor` cannot conjure one from the bare name — construct
  it explicitly (or use ``repro run --backend fleet --queue-dir ...``).

All backends are deterministic in *values*: utilities depend only on the
coalition (per-coalition seeds are content-derived, see
:meth:`repro.fl.federation.FederatedTrainer._coalition_seed`), and results are
re-associated with their coalitions by position, so the evaluation order and
worker assignment cannot change what any algorithm computes.  The vectorized
backend additionally replays the serial path seed-for-seed; its equivalence
policy is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import abc
import concurrent.futures
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

Evaluator = Callable[[frozenset], float]

#: registered backend names; all but "fleet" are constructible by
#: :func:`make_executor` from the bare name (fleet needs a queue directory)
EXECUTOR_BACKENDS = ("serial", "thread", "process", "vectorized", "fleet")


class CoalitionExecutor(abc.ABC):
    """Maps an evaluator over coalitions, preserving input order.

    Attributes
    ----------
    shares_memory:
        Whether workers see the caller's address space.  Shared-memory
        backends (serial, thread) can evaluate through a
        :class:`~repro.utils.cache.UtilityCache` directly and get
        single-flight deduplication for free; process backends must have
        results deposited back into the cache by the parent.
    """

    shares_memory: bool = True

    #: registry name of the backend (``EXECUTOR_BACKENDS`` entry); custom
    #: executors may leave the default
    name: str = "custom"

    #: optional :class:`~repro.telemetry.Telemetry` handle (observational
    #: only; never consulted for values, seeds or ordering)
    telemetry: "Optional[Telemetry]" = None

    @abc.abstractmethod
    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        """Return ``[evaluator(c) for c in coalitions]``, possibly in parallel."""

    def set_telemetry(self, telemetry: "Optional[Telemetry]") -> None:
        """Attach (or detach with ``None``) a telemetry handle.

        The base implementation just stores it; backends that own inner
        engines (vectorized) propagate it further.
        """
        self.telemetry = telemetry

    def bind_store(self, store, namespace) -> None:
        """Receive the oracle's persistent store and namespace.

        The oracle calls this whenever executor or store change.  Most
        backends ignore it (they see deposits through the oracle's cache);
        the fleet backend needs it to ship the store's location to worker
        processes and to read results back.  Observational for everyone
        else — the base implementation is a no-op.
        """

    def close(self) -> None:
        """Release any worker resources (no-op for stateless executors)."""


class SerialExecutor(CoalitionExecutor):
    """Sequential reference backend: a plain loop, no worker overhead."""

    shares_memory = True
    name = "serial"

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        return [float(evaluator(coalition)) for coalition in coalitions]


class _PooledExecutor(CoalitionExecutor):
    """Shared machinery for pool-backed executors.

    The underlying worker pool is created lazily on first use and *reused*
    across ``map_utilities`` calls — an algorithm run issues one batch per
    phase, and paying pool startup (and, for processes, evaluator pickling)
    per batch would dwarf the work being parallelised.  ``close`` releases
    the pool; the next call transparently recreates it.
    """

    _pool_factory = None  # concurrent.futures executor class

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool = None

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        if len(coalitions) <= 1 or self.n_workers == 1:
            return SerialExecutor().map_utilities(evaluator, coalitions)
        if self._pool is None:
            self._pool = self._pool_factory(max_workers=self.n_workers)
        try:
            return [float(v) for v in self._pool.map(evaluator, coalitions)]
        except BaseException:
            # A failed batch may leave the pool broken (e.g. an unpicklable
            # evaluator in a process pool); discard it so the next call
            # starts from a fresh one.
            self.close()
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolExecutor(_PooledExecutor):
    """Evaluates coalitions concurrently in a persistent thread pool."""

    shares_memory = True
    name = "thread"
    _pool_factory = concurrent.futures.ThreadPoolExecutor


class ProcessPoolExecutor(_PooledExecutor):
    """Evaluates coalitions concurrently in a persistent process pool.

    The evaluator (and its closure — datasets, model factory, config) must be
    picklable; lambdas are not.  Side effects performed by the evaluator in
    the workers (counters, caches) stay in the workers — only the returned
    utilities travel back.
    """

    shares_memory = False
    name = "process"
    _pool_factory = concurrent.futures.ProcessPoolExecutor


class VectorizedExecutor(CoalitionExecutor):
    """Trains whole coalition batches in lockstep on stacked parameters.

    Instead of parallelising B per-coalition training loops across workers,
    the batch is handed to a
    :class:`~repro.fl.vectorized.VectorizedCoalitionTrainer`: one round of
    "B coalitions × FedAvg" becomes a handful of large stacked NumPy ops.
    The trainer is resolved from the evaluator itself (the bound
    ``FederatedTrainer.utility`` method that
    :class:`~repro.fl.utility.CoalitionUtility` wires into its oracle), so
    the backend is a drop-in choice next to serial/thread/process.

    ``shares_memory`` is ``False``: like the process pool, this backend must
    receive whole *miss* batches through the oracle's partition/deposit
    protocol — routing per-coalition calls through the cache would dissolve
    the very batches it vectorizes over.

    Evaluators the engine cannot vectorize (plain game functions,
    non-parametric or kernel-less models, ``client_fraction < 1``) fall back
    to the serial loop; the reason is kept in :attr:`last_fallback_reason`
    (``strict=True`` raises instead, for tests and benchmarks that must not
    silently measure the fallback).
    """

    shares_memory = False
    name = "vectorized"

    def __init__(
        self,
        chunk_size: int = 64,
        strict: bool = False,
        max_batch_bytes: Optional[int] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.strict = bool(strict)
        # None auto-detects from available RAM inside the engine; an explicit
        # integer caps each stacked batch's estimated footprint at that size.
        self.max_batch_bytes = max_batch_bytes
        self.last_fallback_reason: Optional[str] = None
        self._trainer_cache: Optional[tuple] = None  # (trainer id, engine)

    @staticmethod
    def _resolve_trainer(evaluator: Evaluator):
        """Find the FederatedTrainer behind an evaluator, or ``None``."""
        from repro.fl.federation import FederatedTrainer

        for candidate in (
            evaluator,
            getattr(evaluator, "__self__", None),
            getattr(evaluator, "trainer", None),
        ):
            if isinstance(candidate, FederatedTrainer):
                return candidate
        return None

    def _engine_for(self, trainer):
        """Cache one vectorized engine per trainer (they are stateless)."""
        from repro.fl.vectorized import VectorizedCoalitionTrainer

        if self._trainer_cache is not None and self._trainer_cache[0] is trainer:
            engine = self._trainer_cache[1]
            engine.set_telemetry(self.telemetry)
            return engine
        engine = VectorizedCoalitionTrainer(
            trainer,
            chunk_size=self.chunk_size,
            max_batch_bytes=self.max_batch_bytes,
            telemetry=self.telemetry,
        )
        self._trainer_cache = (trainer, engine)
        return engine

    def map_utilities(
        self, evaluator: Evaluator, coalitions: Sequence[frozenset]
    ) -> list[float]:
        from repro.fl.vectorized import vectorization_blocker

        trainer = self._resolve_trainer(evaluator)
        if trainer is None:
            reason = (
                "evaluator is not backed by a FederatedTrainer "
                f"({type(evaluator).__name__})"
            )
        else:
            reason = vectorization_blocker(trainer)
        if reason is not None:
            if self.strict:
                raise ValueError(f"vectorized backend cannot engage: {reason}")
            self.last_fallback_reason = reason
            return SerialExecutor().map_utilities(evaluator, coalitions)
        self.last_fallback_reason = None
        return self._engine_for(trainer).utilities(coalitions)


ExecutorLike = Union[str, CoalitionExecutor, None]


def make_executor(executor: ExecutorLike = None, n_workers: int = 1) -> CoalitionExecutor:
    """Resolve an executor spec into a :class:`CoalitionExecutor` instance.

    ``executor`` may be an existing instance (returned unchanged), a backend
    name from :data:`EXECUTOR_BACKENDS`, or ``None`` — which picks
    :class:`SerialExecutor` for ``n_workers <= 1`` and a thread pool
    otherwise (the only backend that is always safe, since it needs no
    picklability).
    """
    if isinstance(executor, CoalitionExecutor):
        return executor
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if executor is None:
        executor = "serial" if n_workers <= 1 else "thread"
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadPoolExecutor(n_workers)
    if executor == "process":
        return ProcessPoolExecutor(n_workers)
    if executor == "vectorized":
        # Lockstep training has no workers; n_workers is irrelevant to it.
        return VectorizedExecutor()
    if executor == "fleet":
        raise ValueError(
            "the fleet backend cannot be constructed from its bare name: it "
            "needs a queue directory (and a disk-backed store).  Construct "
            "repro.fleet.FleetExecutor(queue_dir=...) and pass the instance, "
            "or use `repro run --backend fleet --queue-dir DIR --store PATH`"
        )
    raise ValueError(
        f"unknown executor backend {executor!r}; choose from {EXECUTOR_BACKENDS}"
    )


def __getattr__(name: str):
    # FleetExecutor lives in repro.fleet (which imports this module); the
    # lazy re-export keeps `from repro.parallel.executors import
    # FleetExecutor` working without a circular import.
    if name == "FleetExecutor":
        from repro.fleet.coordinator import FleetExecutor

        return FleetExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
