"""Batched, parallel coalition-evaluation engine.

Per-coalition FL training (the paper's cost τ) dominates every valuation
algorithm, yet the algorithms themselves mostly *pre-enumerate* the coalitions
they need.  This package turns that structure into throughput:

* :class:`BatchUtilityOracle` — a utility oracle that accepts whole coalition
  batches, deduplicates them against a concurrency-safe cache and trains the
  misses concurrently;
* :mod:`repro.parallel.executors` — the pluggable serial / thread / process /
  vectorized / fleet backends behind it, all order-deterministic.  The
  vectorized backend trains the whole miss batch in lockstep on stacked
  parameter matrices (:mod:`repro.fl.vectorized`); the fleet backend
  (:mod:`repro.fleet`) drains miss batches through a durable shared lease
  queue served by independent worker processes/hosts; see
  ``docs/performance.md`` for the backend matrix.

The valuation algorithms request their coalition batches through
:meth:`repro.core.base.ValuationAlgorithm._batch_utilities`, which detects
``evaluate_batch`` on the oracle and falls back to sequential calls for plain
callables — so the engine is opt-in and value-preserving: ``n_workers=4``
produces bitwise-identical results to serial execution.
"""

from repro.parallel.batch_oracle import BatchUtilityOracle, coalition_batch_keys
from repro.parallel.executors import (
    EXECUTOR_BACKENDS,
    CoalitionExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    VectorizedExecutor,
    make_executor,
)

__all__ = [
    "BatchUtilityOracle",
    "coalition_batch_keys",
    "CoalitionExecutor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "VectorizedExecutor",
    "make_executor",
    "EXECUTOR_BACKENDS",
]
