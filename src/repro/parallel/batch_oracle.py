"""Batched coalition-utility evaluation.

:class:`BatchUtilityOracle` is the library's batch-oracle protocol in one
class: it is a drop-in utility oracle (``oracle(coalition) -> float`` with
``evaluations`` / ``n_clients``) that additionally accepts whole *sets* of
coalitions at once through :meth:`evaluate_batch`.  A batch is deduplicated,
checked against a concurrency-safe :class:`~repro.utils.cache.UtilityCache`,
and the misses are trained concurrently on a pluggable executor (serial,
thread pool or process pool — see :mod:`repro.parallel.executors`).

Batch-oracle protocol
---------------------
Valuation algorithms probe their oracle for an ``evaluate_batch`` attribute
(via :meth:`repro.core.base.ValuationAlgorithm._batch_utilities`).  An oracle
that provides

``evaluate_batch(coalitions) -> dict[frozenset, float]``

(keys in first-appearance input order) gets handed every pre-enumerated
coalition set in one call and may parallelise freely; a plain callable is fed
the same coalitions one at a time, in the same order — so results are
bitwise-identical either way.  Parallel evaluation is only sound because
per-coalition training seeds are content-derived and collision-resistant
(:meth:`repro.fl.federation.FederatedTrainer._coalition_seed`): no matter
which worker trains a coalition, or in which order, it trains the same model.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.parallel.executors import (
    CoalitionExecutor,
    ExecutorLike,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.store import StoreLike, UtilityStore, resolve_store
from repro.telemetry import SIZE_BUCKETS, Telemetry
from repro.utils.cache import UtilityCache


def coalition_batch_keys(coalitions: Iterable[Iterable[int]]) -> list[frozenset]:
    """Canonicalise a batch: frozenset keys, deduplicated, input order kept."""
    ordered: dict[frozenset, None] = {}
    for coalition in coalitions:
        ordered.setdefault(frozenset(int(c) for c in coalition), None)
    return list(ordered)


class BatchUtilityOracle:
    """Cached, batch-capable, optionally parallel utility oracle ``U(S)``.

    Parameters
    ----------
    evaluator:
        Callable mapping a coalition (``frozenset``) to its utility — e.g.
        ``FederatedTrainer.utility`` or any plain game function.  May itself
        be another oracle; its own caching is simply never hit twice for the
        same coalition thanks to this oracle's cache.
    n_clients:
        Number of clients; inferred from ``evaluator.n_clients`` when absent.
    n_workers:
        Concurrency level for cache misses inside a batch.  ``1`` (default)
        keeps evaluation strictly sequential.
    executor:
        Backend name (``"serial"``/``"thread"``/``"process"``/
        ``"vectorized"``), an existing
        :class:`~repro.parallel.executors.CoalitionExecutor`, or ``None`` to
        choose automatically from ``n_workers``.  Process pools require a
        picklable evaluator; the vectorized backend trains miss batches in
        lockstep on stacked parameters when the evaluator is backed by a
        :class:`~repro.fl.federation.FederatedTrainer` with a
        vectorization-capable model (and falls back to the serial loop
        otherwise — see ``docs/performance.md``).
    cache:
        Optional pre-existing :class:`UtilityCache` to share; by default the
        oracle owns a fresh unbounded one.
    store:
        Optional persistent tier beneath the cache: a
        :class:`~repro.store.UtilityStore` instance (caller keeps ownership)
        or a path (opened here, closed by :meth:`close`).  Memory misses
        consult it before training and evaluated utilities are written
        through, so separate processes sharing a store never train the same
        coalition twice.
    store_namespace:
        Content-address namespace (task fingerprint) for this oracle's
        coalitions; required to be collision-free across different tasks.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  When present,
        batches run inside ``oracle.batch`` spans, batch sizes feed the
        ``executor.batch_size`` histogram, the cache records hit/miss/latency
        metrics, and process-backend workers emit per-evaluation spans into
        the run journal.  ``None`` (default) disables all of it; telemetry
        never influences values, ordering, seeds or store keys.
    """

    def __init__(
        self,
        evaluator: Callable[[Iterable[int]], float],
        n_clients: Optional[int] = None,
        n_workers: int = 1,
        executor: ExecutorLike = None,
        cache: Optional[UtilityCache] = None,
        store: StoreLike = None,
        store_namespace: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if n_clients is None:
            n_clients = getattr(evaluator, "n_clients", None)
        self._n_clients = None if n_clients is None else int(n_clients)
        self._evaluator = evaluator
        self._cache = cache if cache is not None else UtilityCache(evaluator=evaluator)
        self._owns_store = False
        self._telemetry = telemetry
        self._cache.set_telemetry(telemetry)
        # Deterministic accounting (not telemetry): batches dispatched per
        # backend, feeding the CLI report's `accounting` block.
        self._batch_counts: dict[str, int] = {}
        if store is not None or store_namespace is not None:
            self.attach_store(store, store_namespace)
        self.set_n_workers(n_workers, executor)

    # ------------------------------------------------------------------ #
    # Oracle interface (single coalition)
    # ------------------------------------------------------------------ #
    @property
    def n_clients(self) -> int:
        if self._n_clients is None:
            raise AttributeError(
                "n_clients is unknown: pass it to BatchUtilityOracle or expose "
                "it on the evaluator"
            )
        return self._n_clients

    def __call__(self, coalition: Iterable[int]) -> float:
        return self._cache.utility(coalition)

    def utility(self, coalition: Iterable[int]) -> float:
        return self._cache.utility(coalition)

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def evaluate_batch(
        self, coalitions: Iterable[Iterable[int]]
    ) -> dict[frozenset, float]:
        """Evaluate a set of coalitions, training cache misses concurrently.

        Returns ``{coalition: utility}`` with keys in first-appearance input
        order, so callers that fold the results into floating-point sums see
        the same ordering — hence bitwise-identical values — regardless of
        ``n_workers`` or backend.
        """
        keys = coalition_batch_keys(coalitions)
        if not keys:
            return {}
        backend = self._executor.name
        self._batch_counts[backend] = self._batch_counts.get(backend, 0) + 1
        telemetry = self._telemetry
        if telemetry is None:
            return self._evaluate_keys(keys)
        with telemetry.span("oracle.batch", backend=backend, size=len(keys)):
            telemetry.observe("executor.batch_size", len(keys), SIZE_BUCKETS)
            return self._evaluate_keys(keys)

    def _evaluate_keys(self, keys: list[frozenset]) -> dict[frozenset, float]:
        if self._executor.shares_memory:
            # The cache is concurrency-safe and single-flight, so workers can
            # evaluate straight through it: hits are counted, concurrent
            # misses of the same coalition (e.g. two overlapping batches)
            # still train only once.
            values = self._executor.map_utilities(self._cache.utility, keys)
            return dict(zip(keys, values))
        # Partition/deposit protocol (process and vectorized backends):
        # process workers cannot see the cache, and the vectorized backend
        # needs the whole miss batch in one call to train it in lockstep —
        # so split hits from misses here and deposit computed utilities back.
        results: dict[frozenset, float] = {}
        pending: list[frozenset] = []
        for key in keys:
            cached = self._cache.lookup(key)
            if cached is None:
                pending.append(key)
            else:
                results[key] = cached
        if pending:
            evaluator = self._evaluator
            if self._telemetry is not None and self._executor.name == "process":
                # Worker processes cannot reach the tracer, but the journal
                # pickles down to its path — wrap the evaluator so each
                # worker evaluation lands as a `worker.eval` span parented
                # under this batch.  The wrapper returns the evaluator's
                # float unchanged, so values stay bitwise-identical.
                evaluator = self._telemetry.wrap_worker_evaluator(evaluator)
            values = self._executor.map_utilities(evaluator, pending)
            for key, value in zip(pending, values):
                results[key] = self._cache.store(key, value)
        return {key: results[key] for key in keys}

    def prefetch(self, coalitions: Iterable[Iterable[int]]) -> None:
        """Warm the cache for a batch of coalitions (parallel when enabled)."""
        self.evaluate_batch(coalitions)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    def set_n_workers(self, n_workers: int, executor: ExecutorLike = None) -> None:
        """Reconfigure the concurrency level (and optionally the backend).

        With ``executor=None`` the current backend is preserved: a process
        pool stays a process pool (resized), a custom executor instance is
        kept as-is, and only a serial backend auto-upgrades to threads when
        ``n_workers > 1``.
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        previous = getattr(self, "_executor", None)
        if executor is None:
            if type(previous) in (ThreadPoolExecutor, ProcessPoolExecutor):
                executor = type(previous)(n_workers)
            elif previous is not None and type(previous) is not SerialExecutor:
                executor = previous  # custom instance: keep verbatim
        self._n_workers = int(n_workers)
        self._executor = make_executor(executor, self._n_workers)
        self._executor.set_telemetry(self._telemetry)
        # Store-aware backends (fleet) need the persistent tier's identity to
        # ship work to sibling processes; a no-op for everyone else.
        self._executor.bind_store(self._cache.persistent, self._cache.namespace)
        if previous is not None and previous is not self._executor:
            previous.close()  # release any worker pool the old backend held

    @property
    def telemetry(self) -> Optional[Telemetry]:
        return self._telemetry

    def set_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Attach (or detach with ``None``) telemetry across the whole stack.

        Propagates to the cache (hit/miss/latency metrics) and the active
        executor (vectorized chunk spans).  Purely observational — see the
        fingerprint-neutrality contract in :mod:`repro.telemetry`.
        """
        self._telemetry = telemetry
        self._cache.set_telemetry(telemetry)
        self._executor.set_telemetry(telemetry)

    def close(self) -> None:
        """Release worker pools and any store handle this oracle opened.

        The executor re-spawns its pool lazily if the oracle is used again;
        a store that was passed in as a path (and therefore opened — and
        owned — by this oracle) is closed for good.  Stores passed in as
        instances belong to the caller and are left open.
        """
        self._executor.close()
        if self._owns_store and self._cache.persistent is not None:
            self._cache.persistent.close()
            self._cache.attach_store(None)
            self._owns_store = False

    def __enter__(self) -> "BatchUtilityOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def executor(self) -> CoalitionExecutor:
        return self._executor

    @property
    def backend(self) -> str:
        """Registry name of the active executor backend (e.g. ``"serial"``)."""
        return self._executor.name

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[UtilityStore]:
        """The persistent tier beneath the cache, if one is attached."""
        return self._cache.persistent

    def attach_store(
        self, store: StoreLike, namespace: Optional[str] = None
    ) -> None:
        """Attach (or detach, with ``None``) a persistent utility store.

        ``store`` may be a :class:`~repro.store.UtilityStore` instance or a
        path; paths are opened here and closed by :meth:`close`.  Any
        previously attached store this oracle owned is closed first.
        """
        if self._owns_store and self._cache.persistent is not None:
            self._cache.persistent.close()
        resolved, owned = resolve_store(store)
        self._owns_store = owned
        self._cache.attach_store(resolved, namespace)
        if getattr(self, "_executor", None) is not None:
            # Keep store-aware backends (fleet) pointed at the live tier.
            self._executor.bind_store(self._cache.persistent, self._cache.namespace)

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> UtilityCache:
        return self._cache

    @property
    def evaluations(self) -> int:
        """Number of evaluator calls (FL trainings) performed so far."""
        return self._cache.evaluations

    @property
    def cache_hits(self) -> int:
        return self._cache.stats.hits

    @property
    def store_hits(self) -> int:
        """Lookups served by the persistent tier (zero trainings each)."""
        return self._cache.stats.store_hits

    @property
    def batch_counts(self) -> dict[str, int]:
        """Batches dispatched per executor backend since construction.

        Plain deterministic accounting (kept even with telemetry disabled);
        survives :meth:`reset_cache` so a multi-cell run reports totals.
        """
        return dict(self._batch_counts)

    def reset_cache(self) -> None:
        """Drop the in-memory tier (the persistent store, if any, survives)."""
        self._cache.clear()
