"""Synthetic Adult-style tabular census dataset.

The UCI Adult dataset (48k rows, 14 mixed features, binary income target) is
used by the paper for the MLP/XGBoost experiments and is partitioned across FL
clients by occupation.  This generator produces a census-like table with the
same structure: a handful of categorical features (occupation, education,
marital status, sex) one-hot encoded alongside numeric features (age,
hours-per-week, capital-gain), and a binary ``income > 50k`` target whose
probability depends on a sparse logistic model over those features.  Every row
carries its occupation id in ``group_ids`` for occupation-based partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

N_OCCUPATIONS = 12
N_EDUCATION_LEVELS = 8
N_MARITAL_STATUSES = 4

#: Seed of the fixed stream the "true" income-process coefficients are drawn
#: from.  Content-identity-bearing: the occupation intercepts define the task
#: (``seed=`` only varies the sampled rows), so changing this value changes
#: every Adult-like utility and store fingerprint downstream.
COEFFICIENT_SEED = 20240


def _one_hot(values: np.ndarray, n_categories: int) -> np.ndarray:
    encoded = np.zeros((len(values), n_categories))
    encoded[np.arange(len(values)), values] = 1.0
    return encoded


def make_adult_like(
    n_samples: int,
    n_occupations: int = N_OCCUPATIONS,
    seed: SeedLike = None,
    name: str = "adult-like",
) -> Dataset:
    """Generate a census-style binary classification table.

    The feature layout is::

        [age, hours_per_week, capital_gain, education_years,
         one_hot(occupation), one_hot(education), one_hot(marital), sex]

    and the income target follows a logistic model with occupation-specific
    intercepts, so occupation-based FL partitions have genuinely different
    label distributions (the non-IID structure the paper relies on).
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_occupations, "n_occupations")
    rng = RandomState(seed)

    occupation = rng.integers(0, n_occupations, size=n_samples)
    education = rng.integers(0, N_EDUCATION_LEVELS, size=n_samples)
    marital = rng.integers(0, N_MARITAL_STATUSES, size=n_samples)
    sex = rng.integers(0, 2, size=n_samples)

    age = rng.normal(40.0, 12.0, size=n_samples).clip(18, 90)
    hours = rng.normal(40.0, 10.0, size=n_samples).clip(5, 90)
    capital_gain = rng.exponential(1500.0, size=n_samples)
    education_years = 8 + education + rng.normal(0.0, 1.0, size=n_samples)

    # Fixed coefficients define the "true" income process; occupation-specific
    # intercepts are drawn from a fixed stream so the task is stable.
    coef_rng = np.random.default_rng(COEFFICIENT_SEED)
    occupation_effect = coef_rng.normal(0.0, 1.0, size=n_occupations)
    logits = (
        0.045 * (age - 40.0)
        + 0.03 * (hours - 40.0)
        + 0.0004 * capital_gain
        + 0.25 * (education_years - 12.0)
        + 0.4 * sex
        + occupation_effect[occupation]
        - 0.5
    )
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    targets = (rng.random(n_samples) < probabilities).astype(int)

    numeric = np.column_stack(
        [
            (age - 40.0) / 12.0,
            (hours - 40.0) / 10.0,
            capital_gain / 3000.0,
            (education_years - 12.0) / 3.0,
        ]
    )
    features = np.column_stack(
        [
            numeric,
            _one_hot(occupation, n_occupations),
            _one_hot(education, N_EDUCATION_LEVELS),
            _one_hot(marital, N_MARITAL_STATUSES),
            sex.reshape(-1, 1).astype(float),
        ]
    )
    return Dataset(
        features,
        targets,
        num_classes=2,
        name=name,
        group_ids=occupation,
    )
