"""Dataset substrate: containers, synthetic generators, partitioners, noise.

The paper evaluates on MNIST-derived synthetic splits and on FEMNIST / Adult /
Sent-140.  Those corpora are not available offline, so this package provides
synthetic generators that reproduce the *properties* the valuation experiments
rely on (class structure, per-writer non-IID shift, tabular census-like
features, monotone accuracy in data volume) at laptop scale.  See DESIGN.md
section 2 for the substitution rationale.
"""

from repro.datasets.base import Dataset, train_test_split
from repro.datasets.synthetic import (
    make_classification_blobs,
    make_linear_regression,
)
from repro.datasets.mnist_like import make_mnist_like
from repro.datasets.femnist_like import make_femnist_like
from repro.datasets.adult_like import make_adult_like
from repro.datasets.sent140_like import make_sent140_like
from repro.datasets.partition import (
    partition_by_group,
    partition_dirichlet,
    partition_different_sizes,
    partition_iid,
    partition_label_skew,
)
from repro.datasets.noise import add_feature_noise, flip_labels

__all__ = [
    "Dataset",
    "train_test_split",
    "make_classification_blobs",
    "make_linear_regression",
    "make_mnist_like",
    "make_femnist_like",
    "make_adult_like",
    "make_sent140_like",
    "partition_by_group",
    "partition_dirichlet",
    "partition_different_sizes",
    "partition_iid",
    "partition_label_skew",
    "add_feature_noise",
    "flip_labels",
]
