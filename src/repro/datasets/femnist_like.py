"""Synthetic FEMNIST-style dataset with per-writer style shift.

FEMNIST (LEAF) contains handwritten characters grouped by the writer who
produced them; the paper partitions it into FL clients by writer id, which
creates a naturally non-IID split.  This generator reproduces that structure:
every synthetic *writer* has a personal style vector (brightness, slant
emulated as a shift bias, stroke-thickness emulated as blur weight) that is
applied to the shared class templates, and every sample carries its writer id
in ``Dataset.group_ids`` so the group partitioner can split by writer.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.datasets.mnist_like import _digit_templates
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

#: Seed of the fixed stream the shared class templates are drawn from.
#: Content-identity-bearing (see :data:`repro.datasets.mnist_like.TEMPLATE_SEED`):
#: it is deliberately distinct from the MNIST-like seed so the two template
#: families never alias in the content-addressed store.
TEMPLATE_SEED = 54321


def make_femnist_like(
    n_samples: int,
    n_writers: int = 10,
    image_size: int = 8,
    n_classes: int = 10,
    pixel_noise: float = 0.25,
    style_strength: float = 0.6,
    seed: SeedLike = None,
    name: str = "femnist-like",
) -> Dataset:
    """Generate writer-grouped synthetic character images.

    Parameters
    ----------
    n_samples:
        Total number of images across all writers.
    n_writers:
        Number of distinct writers; samples are assigned to writers uniformly.
    style_strength:
        How strongly a writer's personal style perturbs the class template.
        Zero reproduces an IID dataset; larger values increase client
        heterogeneity when partitioning by writer.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_writers, "n_writers")
    rng = RandomState(seed)
    template_rng = np.random.default_rng(TEMPLATE_SEED)
    templates = _digit_templates(image_size, n_classes, template_rng)

    # Per-writer style: brightness offset, preferred shift and texture field.
    brightness = rng.normal(0.0, 0.3 * style_strength, size=n_writers)
    shift_r = rng.integers(-1, 2, size=n_writers)
    shift_c = rng.integers(-1, 2, size=n_writers)
    writer_texture = rng.normal(
        0.0, 0.3 * style_strength, size=(n_writers, image_size, image_size)
    )

    writers = rng.integers(0, n_writers, size=n_samples)
    targets = rng.integers(0, n_classes, size=n_samples)
    images = np.empty((n_samples, image_size, image_size))
    for idx in range(n_samples):
        writer = int(writers[idx])
        cls = int(targets[idx])
        image = templates[cls].copy()
        image = np.roll(image, shift=(int(shift_r[writer]), int(shift_c[writer])), axis=(0, 1))
        image = image + brightness[writer] + writer_texture[writer]
        image = image + rng.normal(0.0, pixel_noise, size=image.shape)
        images[idx] = image
    return Dataset(
        images,
        targets,
        num_classes=n_classes,
        name=name,
        group_ids=writers,
    )
