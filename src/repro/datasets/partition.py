"""Partitioners that split a pooled dataset into per-client FL datasets.

The paper's synthetic experiments (Sec. V-A) use five split recipes:

* ``same-size-same-distribution``     -> :func:`partition_iid`
* ``same-size-different-distribution`` -> :func:`partition_label_skew`
* ``different-size-same-distribution`` -> :func:`partition_different_sizes`
* ``same-size-noisy-label`` / ``same-size-noisy-feature`` -> IID split followed
  by the noise injectors in :mod:`repro.datasets.noise`

and the real-style experiments partition FEMNIST by writer and Adult by
occupation -> :func:`partition_by_group`.  :func:`partition_dirichlet` provides
the now-standard Dirichlet non-IID split as an extra, which the paper's
baselines literature commonly uses.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_client_count


def _named(parts: list[Dataset], base_name: str) -> list[Dataset]:
    for index, part in enumerate(parts):
        part.name = f"{base_name}/client-{index}"
    return parts


def partition_iid(
    dataset: Dataset,
    n_clients: int,
    seed: SeedLike = None,
) -> list[Dataset]:
    """Split samples uniformly at random into equally sized client datasets."""
    check_client_count(n_clients)
    rng = RandomState(seed)
    order = rng.permutation(len(dataset))
    chunks = np.array_split(order, n_clients)
    return _named([dataset.subset(chunk) for chunk in chunks], dataset.name)


def partition_different_sizes(
    dataset: Dataset,
    n_clients: int,
    ratios: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> list[Dataset]:
    """Split with unequal sizes; default ratios are 1 : 2 : ... : n (paper setup c)."""
    check_client_count(n_clients)
    rng = RandomState(seed)
    if ratios is None:
        ratios = np.arange(1, n_clients + 1, dtype=float)
    ratios = np.asarray(ratios, dtype=float)
    if len(ratios) != n_clients:
        raise ValueError("ratios must have one entry per client")
    if np.any(ratios <= 0):
        raise ValueError("ratios must be positive")
    ratios = ratios / ratios.sum()

    order = rng.permutation(len(dataset))
    boundaries = np.floor(np.cumsum(ratios) * len(dataset)).astype(int)
    boundaries[-1] = len(dataset)
    parts = []
    start = 0
    for end in boundaries:
        parts.append(dataset.subset(order[start:end]))
        start = end
    return _named(parts, dataset.name)


def partition_label_skew(
    dataset: Dataset,
    n_clients: int,
    dominant_fraction: float = 0.6,
    seed: SeedLike = None,
) -> list[Dataset]:
    """Same-size split where each client is dominated by a subset of labels.

    Implements the paper's "same-size-different-distribution" setup: a fraction
    ``dominant_fraction`` of each client's samples come from the label(s)
    assigned to it (labels are assigned round-robin), and the remainder is
    drawn uniformly from the other labels.
    """
    check_client_count(n_clients)
    if not dataset.is_classification:
        raise ValueError("label-skew partition requires a classification dataset")
    if not 0.0 <= dominant_fraction <= 1.0:
        raise ValueError("dominant_fraction must lie in [0, 1]")
    rng = RandomState(seed)
    n_classes = dataset.num_classes
    targets = dataset.targets.astype(int)

    by_class = {c: list(np.flatnonzero(targets == c)) for c in range(n_classes)}
    for pool in by_class.values():
        rng.shuffle(pool)

    per_client = len(dataset) // n_clients
    assignments: list[list[int]] = [[] for _ in range(n_clients)]
    # Assign each client a dominant class in round-robin order.
    dominant_class = [client % n_classes for client in range(n_clients)]

    def pop_from(cls: int) -> Optional[int]:
        pool = by_class[cls]
        if pool:
            return pool.pop()
        return None

    for client in range(n_clients):
        n_dominant = int(round(dominant_fraction * per_client))
        taken = 0
        while taken < n_dominant:
            sample = pop_from(dominant_class[client])
            if sample is None:
                break
            assignments[client].append(sample)
            taken += 1
        while len(assignments[client]) < per_client:
            # Fill the remainder from whichever classes still have samples.
            non_empty = [c for c, pool in by_class.items() if pool]
            if not non_empty:
                break
            cls = int(rng.choice(non_empty))
            sample = pop_from(cls)
            if sample is not None:
                assignments[client].append(sample)
    return _named(
        [dataset.subset(np.asarray(idx, dtype=int)) for idx in assignments],
        dataset.name,
    )


def partition_dirichlet(
    dataset: Dataset,
    n_clients: int,
    alpha: float = 0.5,
    seed: SeedLike = None,
    min_samples_per_client: int = 1,
) -> list[Dataset]:
    """Dirichlet(α) label-distribution split, the standard non-IID benchmark split.

    Smaller ``alpha`` produces more skewed clients.  The split retries until
    every client holds at least ``min_samples_per_client`` samples and raises
    a :class:`ValueError` when 50 attempts cannot satisfy that — a silently
    under-filled split would corrupt any experiment built on it.
    """
    check_client_count(n_clients)
    if not dataset.is_classification:
        raise ValueError("dirichlet partition requires a classification dataset")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = RandomState(seed)
    targets = dataset.targets.astype(int)
    n_classes = dataset.num_classes

    max_attempts = 50
    for _ in range(max_attempts):
        assignments: list[list[int]] = [[] for _ in range(n_clients)]
        for cls in range(n_classes):
            class_indices = np.flatnonzero(targets == cls)
            rng.shuffle(class_indices)
            proportions = rng.dirichlet(np.full(n_clients, alpha))
            boundaries = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
            for client, chunk in enumerate(np.split(class_indices, boundaries)):
                assignments[client].extend(chunk.tolist())
        sizes = [len(a) for a in assignments]
        if min(sizes) >= min_samples_per_client:
            break
    else:
        raise ValueError(
            f"partition_dirichlet(alpha={alpha}, n_clients={n_clients}) could not "
            f"give every client >= {min_samples_per_client} of the dataset's "
            f"{len(dataset)} samples in {max_attempts} attempts; increase alpha, "
            "reduce n_clients/min_samples_per_client, or provide more data"
        )
    return _named(
        [dataset.subset(np.asarray(sorted(idx), dtype=int)) for idx in assignments],
        dataset.name,
    )


def partition_by_group(
    dataset: Dataset,
    n_clients: int,
    seed: SeedLike = None,
) -> list[Dataset]:
    """Partition by the dataset's ``group_ids`` (writer, occupation, user, ...).

    Groups are assigned to clients round-robin after a random shuffle, which is
    how the paper turns FEMNIST writers / Adult occupations into FL clients
    when the number of groups exceeds the number of clients.
    """
    check_client_count(n_clients)
    if dataset.group_ids is None:
        raise ValueError("dataset has no group_ids; use partition_iid instead")
    rng = RandomState(seed)
    groups = np.unique(dataset.group_ids)
    if len(groups) < n_clients:
        raise ValueError(
            f"cannot build {n_clients} clients from only {len(groups)} groups"
        )
    rng.shuffle(groups)
    assignments: list[list[int]] = [[] for _ in range(n_clients)]
    for position, group in enumerate(groups):
        client = position % n_clients
        assignments[client].extend(np.flatnonzero(dataset.group_ids == group).tolist())
    return _named(
        [dataset.subset(np.asarray(sorted(idx), dtype=int)) for idx in assignments],
        dataset.name,
    )
