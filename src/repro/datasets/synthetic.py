"""Generic synthetic task generators.

Two families are provided:

* :func:`make_linear_regression` — the linear-regression setting used by the
  paper's theory (Thm. 2, Lemma 1, Thm. 3), following the Donahue–Kleinberg
  model where samples are drawn from a standard Gaussian and targets are a
  fixed linear map plus homoscedastic noise.
* :func:`make_classification_blobs` — Gaussian class clusters, a cheap
  classification task used in unit tests and the quickstart example.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive


def make_linear_regression(
    n_samples: int,
    n_features: int = 5,
    noise_std: float = 0.1,
    coefficients: Optional[np.ndarray] = None,
    intercept: float = 0.0,
    seed: SeedLike = None,
    name: str = "linear-regression",
) -> Dataset:
    """Generate a linear-regression dataset ``y = X w + b + ε``.

    Features follow a standard Gaussian ``N(0, I)`` and noise is
    ``N(0, noise_std²)``, matching the analysis model of Donahue & Kleinberg
    used in the paper's Lemma 1.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_features, "n_features")
    rng = RandomState(seed)
    if coefficients is None:
        coefficients = rng.normal(0.0, 1.0, size=n_features)
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.shape != (n_features,):
        raise ValueError(
            f"coefficients must have shape ({n_features},), got {coefficients.shape}"
        )
    features = rng.normal(0.0, 1.0, size=(n_samples, n_features))
    noise = rng.normal(0.0, noise_std, size=n_samples)
    targets = features @ coefficients + intercept + noise
    return Dataset(features, targets, num_classes=None, name=name)


def make_classification_blobs(
    n_samples: int,
    n_features: int = 10,
    n_classes: int = 3,
    cluster_std: float = 1.0,
    class_separation: float = 3.0,
    seed: SeedLike = None,
    name: str = "blobs",
) -> Dataset:
    """Generate Gaussian blob classification data.

    Each class has a fixed random centroid; samples are the centroid plus
    isotropic Gaussian noise.  ``class_separation`` controls how far apart the
    centroids are, hence how easy the task is.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_features, "n_features")
    check_positive(n_classes, "n_classes")
    rng = RandomState(seed)
    centroids = rng.normal(0.0, class_separation, size=(n_classes, n_features))
    targets = rng.integers(0, n_classes, size=n_samples)
    features = centroids[targets] + rng.normal(0.0, cluster_std, size=(n_samples, n_features))
    return Dataset(features, targets, num_classes=n_classes, name=name)
