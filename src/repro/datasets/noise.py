"""Noise injectors for the paper's noisy-label / noisy-feature setups.

Setup (d) *same-size-noisy-label* flips 0–20% of a client's labels to another
class chosen uniformly; setup (e) *same-size-noisy-feature* adds Gaussian
noise ``N(0, 1)`` scaled by 0.00–0.20 to the training features.  Both injectors
return new :class:`~repro.datasets.base.Dataset` objects and leave the input
untouched.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_fraction


def flip_labels(
    dataset: Dataset,
    flip_fraction: float,
    seed: SeedLike = None,
) -> Dataset:
    """Flip a fraction of labels to a uniformly random *different* class."""
    check_fraction(flip_fraction, "flip_fraction")
    if not dataset.is_classification:
        raise ValueError("flip_labels requires a classification dataset")
    if flip_fraction == 0.0 or len(dataset) == 0:
        return dataset.copy()
    rng = RandomState(seed)
    targets = dataset.targets.astype(int).copy()
    n_flip = int(round(flip_fraction * len(dataset)))
    if n_flip == 0:
        return dataset.copy()
    flip_indices = rng.choice(len(dataset), size=n_flip, replace=False)
    n_classes = dataset.num_classes
    # One vectorized draw replaces the former per-sample loop.  The output is
    # seed-for-seed identical: numpy's Generator uses the same bounded-integer
    # algorithm for `integers(..., size=n)` as for n successive scalar draws
    # (covered by a regression test against the scalar-loop reference).
    offsets = rng.integers(1, n_classes, size=n_flip)
    targets[flip_indices] = (targets[flip_indices] + offsets) % n_classes
    return dataset.with_targets(targets)


def add_feature_noise(
    dataset: Dataset,
    noise_scale: float,
    seed: SeedLike = None,
) -> Dataset:
    """Add ``noise_scale * N(0, 1)`` noise to every feature value."""
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
    if noise_scale == 0.0 or len(dataset) == 0:
        return dataset.copy()
    rng = RandomState(seed)
    noise = rng.normal(0.0, 1.0, size=dataset.features.shape) * noise_scale
    return dataset.with_features(dataset.features + noise)
