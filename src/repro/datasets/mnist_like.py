"""Synthetic MNIST-style digit images.

The paper splits MNIST into per-client partitions varying in size, label
distribution and noise (Sec. V-A, setups (a)–(e)).  MNIST itself is not
available offline, so this generator creates small greyscale images from ten
structured per-class templates (simple stroke patterns on an ``image_size`` ×
``image_size`` grid) perturbed with Gaussian pixel noise and small shifts.

What matters for the valuation experiments is that

* a model trained on more samples reaches a higher test accuracy,
* label noise and feature noise degrade a client's usefulness, and
* class-skewed partitions create genuinely different client values.

The template construction below yields tasks with those properties while a
tiny MLP/CNN can reach high accuracy in well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

#: Seed of the fixed stream the class templates are drawn from.  This value is
#: content-identity-bearing: the templates define the task itself (every
#: ``seed=`` argument only varies sampling around them), so changing it
#: changes every utility, every fingerprint and every store entry derived from
#: MNIST-like tasks.  Never reuse it for another template family.
TEMPLATE_SEED = 12345


def _digit_templates(image_size: int, n_classes: int, rng: np.random.Generator) -> np.ndarray:
    """Build one stroke-pattern template per class.

    Templates combine horizontal bars, vertical bars and diagonals in a
    class-specific layout, then add a small fixed random texture so every class
    is linearly distinguishable but not trivially so.
    """
    templates = np.zeros((n_classes, image_size, image_size))
    for cls in range(n_classes):
        canvas = np.zeros((image_size, image_size))
        # Horizontal bar whose row depends on the class.
        row = (cls * 2 + 1) % image_size
        canvas[row, :] = 1.0
        # Vertical bar whose column depends on the class.
        col = (cls * 3 + 2) % image_size
        canvas[:, col] = 1.0
        # Diagonal for odd classes, anti-diagonal for even classes.
        if cls % 2 == 1:
            np.fill_diagonal(canvas, 1.0)
        else:
            np.fill_diagonal(np.fliplr(canvas), 1.0)
        # Class-specific fixed texture (low amplitude).
        texture = rng.normal(0.0, 0.15, size=(image_size, image_size))
        templates[cls] = np.clip(canvas + texture, 0.0, 1.5)
    return templates


def make_mnist_like(
    n_samples: int,
    image_size: int = 8,
    n_classes: int = 10,
    pixel_noise: float = 0.25,
    max_shift: int = 1,
    seed: SeedLike = None,
    name: str = "mnist-like",
) -> Dataset:
    """Generate an MNIST-style synthetic image classification dataset.

    Parameters
    ----------
    n_samples:
        Number of images.
    image_size:
        Side length of the square images (default 8 for speed).
    n_classes:
        Number of digit classes (default 10, as in MNIST).
    pixel_noise:
        Standard deviation of additive Gaussian pixel noise.
    max_shift:
        Maximum absolute shift (in pixels) applied independently per axis,
        emulating writing-position variation.
    """
    check_positive(n_samples, "n_samples")
    check_positive(image_size, "image_size")
    check_positive(n_classes, "n_classes")
    rng = RandomState(seed)
    # Templates are derived from a fixed stream so that different calls with
    # different seeds still describe the *same* underlying task.
    template_rng = np.random.default_rng(TEMPLATE_SEED)
    templates = _digit_templates(image_size, n_classes, template_rng)

    targets = rng.integers(0, n_classes, size=n_samples)
    images = np.empty((n_samples, image_size, image_size))
    for idx, cls in enumerate(targets):
        image = templates[cls].copy()
        if max_shift > 0:
            shift_r = int(rng.integers(-max_shift, max_shift + 1))
            shift_c = int(rng.integers(-max_shift, max_shift + 1))
            image = np.roll(image, shift=(shift_r, shift_c), axis=(0, 1))
        image = image + rng.normal(0.0, pixel_noise, size=image.shape)
        images[idx] = image
    return Dataset(images, targets, num_classes=n_classes, name=name)
