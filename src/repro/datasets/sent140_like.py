"""Synthetic Sent-140-style text sentiment dataset.

Sent-140 is a tweet sentiment corpus included in LEAF and mentioned in the
paper's experimental setup.  Offline we replace it with a bag-of-words
generator: each synthetic *user* has a vocabulary-usage profile, each sample is
a sparse count vector over a small vocabulary, and the binary sentiment target
depends on the balance of "positive" versus "negative" vocabulary mass.
Samples carry user ids in ``group_ids`` for user-based FL partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive


def make_sent140_like(
    n_samples: int,
    n_users: int = 20,
    vocabulary_size: int = 50,
    document_length: int = 12,
    seed: SeedLike = None,
    name: str = "sent140-like",
) -> Dataset:
    """Generate bag-of-words sentiment data grouped by user.

    The first half of the vocabulary carries positive sentiment weight, the
    second half negative; a document's label is determined by a noisy logistic
    over its sentiment-weighted word counts.
    """
    check_positive(n_samples, "n_samples")
    check_positive(n_users, "n_users")
    check_positive(vocabulary_size, "vocabulary_size")
    rng = RandomState(seed)

    # Per-user topic preference over the vocabulary (Dirichlet draw).
    user_profiles = rng.dirichlet(np.ones(vocabulary_size) * 0.3, size=n_users)
    sentiment_weights = np.concatenate(
        [
            np.linspace(1.0, 0.2, vocabulary_size // 2),
            np.linspace(-0.2, -1.0, vocabulary_size - vocabulary_size // 2),
        ]
    )

    users = rng.integers(0, n_users, size=n_samples)
    counts = np.zeros((n_samples, vocabulary_size))
    for idx in range(n_samples):
        profile = user_profiles[users[idx]]
        words = rng.choice(vocabulary_size, size=document_length, p=profile)
        counts[idx] = np.bincount(words, minlength=vocabulary_size)

    logits = counts @ sentiment_weights + rng.normal(0.0, 0.5, size=n_samples)
    targets = (logits > 0).astype(int)
    return Dataset(
        counts,
        targets,
        num_classes=2,
        name=name,
        group_ids=users,
    )
