"""Dataset container shared by the model zoo, the FL simulator and valuation.

A :class:`Dataset` is a thin immutable-ish wrapper around a feature matrix and
a target vector, with convenience methods for subsetting, concatenation and
shuffled splits.  Classification targets are integer class ids; regression
targets are floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, SeedLike


@dataclass
class Dataset:
    """Features, targets and light metadata for one learning task.

    Parameters
    ----------
    features:
        Array of shape ``(n_samples, ...)``.  Image datasets may keep a
        trailing spatial shape (e.g. ``(n, 8, 8)``); tabular datasets use 2-D.
    targets:
        Array of shape ``(n_samples,)``.
    num_classes:
        Number of classes for classification tasks, ``None`` for regression.
    name:
        Human-readable identifier used in reports.
    group_ids:
        Optional per-sample group labels (writer id, occupation, ...) used by
        group-based partitioners.
    """

    features: np.ndarray
    targets: np.ndarray
    num_classes: Optional[int] = None
    name: str = "dataset"
    group_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features)
        self.targets = np.asarray(self.targets)
        if len(self.features) != len(self.targets):
            raise ValueError(
                "features and targets must have the same number of samples "
                f"({len(self.features)} vs {len(self.targets)})"
            )
        if self.group_ids is not None:
            self.group_ids = np.asarray(self.group_ids)
            if len(self.group_ids) != len(self.targets):
                raise ValueError("group_ids must match the number of samples")

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.targets)

    @property
    def n_samples(self) -> int:
        return len(self.targets)

    @property
    def n_features(self) -> int:
        """Number of features after flattening any spatial dimensions."""
        if self.features.ndim == 1:
            return 1
        return int(np.prod(self.features.shape[1:]))

    @property
    def is_classification(self) -> bool:
        return self.num_classes is not None

    @property
    def flat_features(self) -> np.ndarray:
        """Features reshaped to ``(n_samples, n_features)``."""
        return self.features.reshape(len(self), -1)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def subset(self, indices: Sequence[int] | np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to the given sample indices."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[idx],
            targets=self.targets[idx],
            num_classes=self.num_classes,
            name=name or self.name,
            group_ids=None if self.group_ids is None else self.group_ids[idx],
        )

    def shuffled(self, seed: SeedLike = None) -> "Dataset":
        """Return a copy with samples in random order."""
        rng = RandomState(seed)
        order = rng.permutation(len(self))
        return self.subset(order)

    def take(self, n: int, name: Optional[str] = None) -> "Dataset":
        """Return the first ``n`` samples (or all samples if fewer exist)."""
        n = min(n, len(self))
        return self.subset(np.arange(n), name=name)

    def copy(self) -> "Dataset":
        return Dataset(
            features=self.features.copy(),
            targets=self.targets.copy(),
            num_classes=self.num_classes,
            name=self.name,
            group_ids=None if self.group_ids is None else self.group_ids.copy(),
        )

    def with_targets(self, targets: np.ndarray) -> "Dataset":
        """Return a copy with replaced targets (used by label-noise injection)."""
        clone = self.copy()
        clone.targets = np.asarray(targets)
        if len(clone.targets) != len(clone.features):
            raise ValueError("replacement targets must match the sample count")
        return clone

    def with_features(self, features: np.ndarray) -> "Dataset":
        """Return a copy with replaced features (used by feature-noise injection)."""
        clone = self.copy()
        clone.features = np.asarray(features)
        if len(clone.features) != len(clone.targets):
            raise ValueError("replacement features must match the sample count")
        return clone

    def label_distribution(self) -> np.ndarray:
        """Empirical class frequencies (classification only)."""
        if not self.is_classification:
            raise ValueError("label_distribution is only defined for classification")
        counts = np.bincount(self.targets.astype(int), minlength=self.num_classes)
        total = counts.sum()
        if total == 0:
            return np.zeros(self.num_classes)
        return counts / total

    @staticmethod
    def concatenate(datasets: Iterable["Dataset"], name: str = "union") -> "Dataset":
        """Concatenate several datasets (used to pool a coalition's data)."""
        parts = list(datasets)
        if not parts:
            raise ValueError("cannot concatenate an empty collection of datasets")
        num_classes = parts[0].num_classes
        for part in parts:
            if part.num_classes != num_classes:
                raise ValueError("all datasets must share the same num_classes")
        features = np.concatenate([p.features for p in parts], axis=0)
        targets = np.concatenate([p.targets for p in parts], axis=0)
        if all(p.group_ids is not None for p in parts):
            group_ids = np.concatenate([p.group_ids for p in parts], axis=0)
        else:
            group_ids = None
        return Dataset(features, targets, num_classes=num_classes, name=name, group_ids=group_ids)

    @staticmethod
    def empty_like(reference: "Dataset", name: str = "empty") -> "Dataset":
        """An empty dataset with the same feature shape and class count."""
        shape = (0,) + reference.features.shape[1:]
        return Dataset(
            features=np.zeros(shape, dtype=reference.features.dtype),
            targets=np.zeros(0, dtype=reference.targets.dtype),
            num_classes=reference.num_classes,
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"{self.num_classes}-class" if self.is_classification else "regression"
        return (
            f"Dataset(name={self.name!r}, n_samples={len(self)}, "
            f"n_features={self.n_features}, kind={kind})"
        )


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
) -> tuple[Dataset, Dataset]:
    """Shuffle and split a dataset into train and test portions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    rng = RandomState(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(round(test_fraction * len(dataset))))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )
