"""Multinomial (softmax) logistic regression.

A cheap parametric classifier used in unit tests, the quickstart example and
as a fast stand-in whenever an experiment only needs *a* classification model
rather than specifically an MLP or CNN.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.models.activations import softmax
from repro.models.base import ParametricModel
from repro.models.metrics import accuracy_score
from repro.utils.rng import SeedLike


class LogisticRegressionModel(ParametricModel):
    """Softmax regression over flattened features.

    Parameters are stored as a flat vector of shape
    ``n_classes * n_features + n_classes`` (weights followed by biases).
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        learning_rate: float = 0.5,
        epochs: int = 10,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            init_scale=init_scale,
            seed=seed,
        )
        if n_features <= 0 or n_classes < 2:
            raise ValueError("n_features must be positive and n_classes >= 2")
        self.n_features = n_features
        self.n_classes = n_classes

    def num_parameters(self) -> int:
        return self.n_classes * self.n_features + self.n_classes

    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        if self.init_scale == 0.0:
            return np.zeros(self.num_parameters())
        return rng.normal(0.0, self.init_scale, size=self.num_parameters())

    def _unpack(self, parameters: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        split = self.n_classes * self.n_features
        weights = parameters[:split].reshape(self.n_features, self.n_classes)
        biases = parameters[split:]
        return weights, biases

    def _probabilities(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        weights, biases = self._unpack(parameters)
        logits = features.reshape(len(features), -1) @ weights + biases
        return softmax(logits)

    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        features = features.reshape(len(features), -1)
        targets = targets.astype(int)
        n = len(features)
        probabilities = self._probabilities(parameters, features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n), targets] = 1.0
        delta = (probabilities - one_hot) / n
        grad_w = features.T @ delta
        grad_b = delta.sum(axis=0)
        return np.concatenate([grad_w.ravel(), grad_b])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        return self._probabilities(self.get_parameters(), features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy (the paper's classification utility)."""
        if len(dataset) == 0:
            return 0.0
        predictions = self.predict(dataset.flat_features)
        return accuracy_score(dataset.targets, predictions)
