"""Multinomial (softmax) logistic regression.

A cheap parametric classifier used in unit tests, the quickstart example and
as a fast stand-in whenever an experiment only needs *a* classification model
rather than specifically an MLP or CNN.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.models.activations import softmax
from repro.models.base import ParametricModel
from repro.models.metrics import accuracy_score
from repro.utils.rng import SeedLike


class LogisticRegressionModel(ParametricModel):
    """Softmax regression over flattened features.

    Parameters are stored as a flat vector of shape
    ``n_classes * n_features + n_classes`` (weights followed by biases).
    """

    supports_vectorized = True

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        learning_rate: float = 0.5,
        epochs: int = 10,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            init_scale=init_scale,
            seed=seed,
        )
        if n_features <= 0 or n_classes < 2:
            raise ValueError("n_features must be positive and n_classes >= 2")
        self.n_features = n_features
        self.n_classes = n_classes

    def num_parameters(self) -> int:
        return self.n_classes * self.n_features + self.n_classes

    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        if self.init_scale == 0.0:
            return np.zeros(self.num_parameters())
        return rng.normal(0.0, self.init_scale, size=self.num_parameters())

    def _unpack(self, parameters: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        split = self.n_classes * self.n_features
        weights = parameters[:split].reshape(self.n_features, self.n_classes)
        biases = parameters[split:]
        return weights, biases

    def _probabilities(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        weights, biases = self._unpack(parameters)
        logits = features.reshape(len(features), -1) @ weights + biases
        return softmax(logits)

    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        features = features.reshape(len(features), -1)
        targets = targets.astype(int)
        n = len(features)
        probabilities = self._probabilities(parameters, features)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n), targets] = 1.0
        delta = (probabilities - one_hot) / n
        grad_w = features.T @ delta
        grad_b = delta.sum(axis=0)
        return np.concatenate([grad_w.ravel(), grad_b])

    # ------------------------------------------------------------------ #
    # Batched (stacked-parameter) kernels
    # ------------------------------------------------------------------ #
    def _batch_unpack(self, parameters: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        split = self.n_classes * self.n_features
        weights = parameters[:, :split].reshape(-1, self.n_features, self.n_classes)
        biases = parameters[:, split:]
        return weights, biases

    def _batch_probabilities(
        self, parameters: np.ndarray, features: np.ndarray
    ) -> np.ndarray:
        weights, biases = self._batch_unpack(parameters)
        logits = features @ weights + biases[:, None, :]
        return softmax(logits)

    def batch_gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Stacked cross-entropy gradients: ``(B, P) × (B, m, ...) → (B, P)``.

        The same operations as :meth:`_gradient`, lifted one batch axis up:
        each slice's matmuls see operands of identical shape and layout to
        the serial path, which is what keeps vectorized training numerically
        aligned with serial training (see ``docs/performance.md``).
        """
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        batch, m = parameters.shape[0], features.shape[1]
        features = features.reshape(batch, m, -1)
        targets = np.asarray(targets).astype(int)
        probabilities = self._batch_probabilities(parameters, features)
        # (p - one_hot) / m without materialising the one-hot tensor; the
        # per-element arithmetic is identical to the serial expression.
        delta = probabilities.copy()
        delta[np.arange(batch)[:, None], np.arange(m)[None, :], targets] -= 1.0
        delta /= m
        grad_w = np.matmul(features.transpose(0, 2, 1), delta)
        grad_b = delta.sum(axis=1)
        return np.concatenate([grad_w.reshape(batch, -1), grad_b], axis=1)

    def batch_predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Class predictions of every stacked model on shared features."""
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        features = features.reshape(1, len(features), -1)
        probabilities = self._batch_probabilities(
            parameters, np.broadcast_to(features, (parameters.shape[0],) + features.shape[1:])
        )
        return np.argmax(probabilities, axis=-1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        return self._probabilities(self.get_parameters(), features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy (the paper's classification utility)."""
        if len(dataset) == 0:
            return 0.0
        predictions = self.predict(dataset.flat_features)
        return accuracy_score(dataset.targets, predictions)
