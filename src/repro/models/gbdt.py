"""Gradient-boosted decision trees (XGBoost stand-in).

The paper's Adult experiments use XGBoost as the FL model.  XGBoost is not
available offline, so this module implements second-order gradient boosting
with regression trees in NumPy: per boosting round a CART-style tree is fitted
to the gradients/hessians of the logistic (binary) or softmax (multiclass)
loss, exactly as XGBoost does, with depth / leaf-weight shrinkage / L2
regularisation hyperparameters.

Because tree ensembles have no flat parameter vector to average, FedAvg does
not apply — the paper makes the same point ("gradient-based approximation is
not applicable to the XGB model", Table V).  The FL simulator therefore trains
this model centrally on a coalition's *pooled* data, which is all the
valuation algorithms need: a utility per coalition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.models.activations import sigmoid, softmax
from repro.models.base import Model
from repro.models.metrics import accuracy_score
from repro.utils.rng import RandomState, SeedLike


@dataclass
class _TreeNode:
    """A node of a regression tree; leaves carry an output weight."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class _RegressionTree:
    """Second-order regression tree fitted to (gradient, hessian) targets."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        reg_lambda: float = 1.0,
        n_thresholds: int = 16,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.n_thresholds = n_thresholds
        self.root: Optional[_TreeNode] = None

    def _leaf_weight(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _gain(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(grad.sum() ** 2 / (hess.sum() + self.reg_lambda))

    def _best_split(self, features, grad, hess):
        best = (None, None, 0.0)  # feature, threshold, gain improvement
        parent_gain = self._gain(grad, hess)
        n_features = features.shape[1]
        for feature in range(n_features):
            column = features[:, feature]
            candidates = np.unique(
                np.quantile(column, np.linspace(0.1, 0.9, self.n_thresholds))
            )
            for threshold in candidates:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = len(column) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = (
                    self._gain(grad[left_mask], hess[left_mask])
                    + self._gain(grad[~left_mask], hess[~left_mask])
                    - parent_gain
                )
                if gain > best[2]:
                    best = (feature, float(threshold), gain)
        return best

    def _build(self, features, grad, hess, depth):
        node = _TreeNode(weight=self._leaf_weight(grad, hess))
        if depth >= self.max_depth or len(grad) < 2 * self.min_samples_leaf:
            return node
        feature, threshold, gain = self._best_split(features, grad, hess)
        if feature is None or gain <= 1e-12:
            return node
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], grad[mask], hess[mask], depth + 1)
        node.right = self._build(features[~mask], grad[~mask], hess[~mask], depth + 1)
        return node

    def fit(self, features: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "_RegressionTree":
        self.root = self._build(features, grad, hess, depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        outputs = np.empty(len(features))
        for index, row in enumerate(features):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            outputs[index] = node.weight
        return outputs


class GradientBoostedTrees(Model):
    """Gradient-boosted classification trees, trained on pooled coalition data.

    Parameters
    ----------
    n_classes:
        Number of classes; 2 uses binary logistic loss, >2 one-vs-all softmax.
    n_rounds:
        Number of boosting rounds.
    max_depth, learning_rate, reg_lambda, subsample:
        The usual XGBoost-style knobs.
    """

    is_parametric = False

    def __init__(
        self,
        n_classes: int = 2,
        n_rounds: int = 10,
        max_depth: int = 3,
        learning_rate: float = 0.3,
        reg_lambda: float = 1.0,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if n_classes < 2:
            raise ValueError("n_classes must be at least 2")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        self.n_classes = n_classes
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._seed = seed
        self._trees: list[list[_RegressionTree]] = []
        self._base_score = 0.0

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset, seed: SeedLike = None) -> "GradientBoostedTrees":
        self._trees = []
        if len(dataset) == 0:
            return self
        rng = RandomState(seed if seed is not None else self._seed)
        features = dataset.flat_features
        targets = dataset.targets.astype(int)
        n = len(features)
        n_outputs = 1 if self.n_classes == 2 else self.n_classes
        raw = np.zeros((n, n_outputs))

        for _ in range(self.n_rounds):
            if self.n_classes == 2:
                probabilities = sigmoid(raw[:, 0])
                grad = (probabilities - targets).reshape(n, 1)
                hess = (probabilities * (1 - probabilities)).reshape(n, 1)
            else:
                probabilities = softmax(raw)
                one_hot = np.zeros_like(probabilities)
                one_hot[np.arange(n), targets] = 1.0
                grad = probabilities - one_hot
                hess = probabilities * (1 - probabilities)
            round_trees: list[_RegressionTree] = []
            if self.subsample < 1.0:
                sample = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                sample = np.arange(n)
            for output in range(n_outputs):
                tree = _RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                )
                tree.fit(features[sample], grad[sample, output], hess[sample, output])
                raw[:, output] += self.learning_rate * tree.predict(features)
                round_trees.append(tree)
            self._trees.append(round_trees)
        return self

    # ------------------------------------------------------------------ #
    # Prediction / evaluation
    # ------------------------------------------------------------------ #
    def _raw_scores(self, features: np.ndarray) -> np.ndarray:
        n_outputs = 1 if self.n_classes == 2 else self.n_classes
        raw = np.zeros((len(features), n_outputs))
        for round_trees in self._trees:
            for output, tree in enumerate(round_trees):
                raw[:, output] += self.learning_rate * tree.predict(features)
        return raw

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float).reshape(len(features), -1)
        raw = self._raw_scores(features)
        if self.n_classes == 2:
            positive = sigmoid(raw[:, 0])
            return np.column_stack([1 - positive, positive])
        return softmax(raw)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy; an unfitted ensemble predicts the majority-less prior."""
        if len(dataset) == 0:
            return 0.0
        predictions = self.predict(dataset.flat_features)
        return accuracy_score(dataset.targets, predictions)

    @property
    def n_trees(self) -> int:
        return sum(len(round_trees) for round_trees in self._trees)
