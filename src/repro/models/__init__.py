"""NumPy model zoo used as the FL model substrate.

The paper trains MLP, CNN and XGBoost models under TensorFlow / TensorFlow
Federated.  Offline we provide equivalent model families implemented directly
on NumPy:

* :class:`~repro.models.linear.LinearRegressionModel` — the linear-regression
  setting used by the paper's theory (Thm. 2, Lemma 1).
* :class:`~repro.models.logistic.LogisticRegressionModel` — softmax regression.
* :class:`~repro.models.mlp.MLPClassifier` — multi-layer perceptron.
* :class:`~repro.models.cnn.SimpleCNN` — small convolutional network (im2col).
* :class:`~repro.models.gbdt.GradientBoostedTrees` — gradient-boosted decision
  trees standing in for XGBoost.

All parametric models expose flat parameter get/set so the FL simulator can
run FedAvg-style aggregation and the gradient-based valuation baselines can
reconstruct coalition models from recorded client updates.
"""

from repro.models.base import Model, ParametricModel
from repro.models.linear import LinearRegressionModel
from repro.models.logistic import LogisticRegressionModel
from repro.models.mlp import MLPClassifier
from repro.models.cnn import SimpleCNN
from repro.models.gbdt import GradientBoostedTrees
from repro.models.metrics import accuracy_score, mean_squared_error, negative_mse

__all__ = [
    "Model",
    "ParametricModel",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "MLPClassifier",
    "SimpleCNN",
    "GradientBoostedTrees",
    "accuracy_score",
    "mean_squared_error",
    "negative_mse",
]
