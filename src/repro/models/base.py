"""Model interfaces shared by the FL simulator and the valuation layer.

Two abstractions are defined:

* :class:`Model` — anything that can be fitted on a dataset and evaluated on a
  test dataset, returning a scalar utility.  Non-parametric models (e.g. the
  gradient-boosted trees standing in for XGBoost) implement only this.
* :class:`ParametricModel` — additionally exposes its parameters as a single
  flat vector and supports local gradient-descent epochs, which is what
  FedAvg-style aggregation and the gradient-based valuation baselines
  (OR, λ-MR, GTG-Shapley) require.
"""

from __future__ import annotations

import abc
import copy
from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike


class Model(abc.ABC):
    """Minimal model protocol: fit on data, predict, report utility."""

    #: whether the model exposes flat parameters usable for FedAvg aggregation
    is_parametric: bool = False

    @abc.abstractmethod
    def fit(self, dataset: Dataset, seed: SeedLike = None) -> "Model":
        """Train the model from scratch on ``dataset`` and return ``self``."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets (class ids or regression values) for ``features``."""

    @abc.abstractmethod
    def evaluate(self, dataset: Dataset) -> float:
        """Scalar utility of the model on ``dataset`` (accuracy or −MSE)."""

    def clone(self) -> "Model":
        """Return an unfitted copy with identical hyperparameters."""
        return copy.deepcopy(self)


class ParametricModel(Model):
    """A model whose state is a flat parameter vector trainable by SGD.

    Subclasses implement :meth:`_init_parameters`, :meth:`_gradient` and the
    prediction/evaluation methods.  This base class provides parameter get/set,
    mini-batch local training (``train_epochs``) and full ``fit``, which is a
    fresh initialisation followed by local training — exactly the primitives
    the FL server and clients need.
    """

    is_parametric = True

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 5,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.init_scale = init_scale
        self._init_seed = seed
        self._parameters: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Parameter handling
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""

    @abc.abstractmethod
    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        """Return a freshly initialised flat parameter vector."""

    @abc.abstractmethod
    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Mini-batch gradient of the training loss at ``parameters``."""

    def get_parameters(self) -> np.ndarray:
        """Copy of the current flat parameter vector (initialising if needed)."""
        if self._parameters is None:
            self.initialize(self._init_seed)
        return self._parameters.copy()

    def set_parameters(self, parameters: np.ndarray) -> None:
        parameters = np.asarray(parameters, dtype=float)
        expected = self.num_parameters()
        if parameters.shape != (expected,):
            raise ValueError(
                f"expected parameter vector of shape ({expected},), got {parameters.shape}"
            )
        self._parameters = parameters.copy()

    def initialize(self, seed: SeedLike = None) -> "ParametricModel":
        """(Re-)initialise parameters; used by the FL server at round zero."""
        rng = RandomState(seed if seed is not None else self._init_seed)
        self._parameters = np.asarray(self._init_parameters(rng), dtype=float)
        if self._parameters.shape != (self.num_parameters(),):
            raise RuntimeError(
                "model initialisation produced a parameter vector of the wrong size"
            )
        return self

    @property
    def is_initialized(self) -> bool:
        return self._parameters is not None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_epochs(
        self,
        dataset: Dataset,
        epochs: Optional[int] = None,
        seed: SeedLike = None,
        proximal_mu: float = 0.0,
        reference_parameters: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run mini-batch SGD epochs from the current parameters.

        ``proximal_mu``/``reference_parameters`` implement the FedProx proximal
        term ``(μ/2)·||w − w_ref||²`` used by the FedProx algorithm.
        Returns the updated flat parameter vector (also stored on the model).
        """
        if self._parameters is None:
            self.initialize(seed)
        epochs = self.epochs if epochs is None else epochs
        rng = RandomState(seed)
        params = self._parameters
        n = len(dataset)
        if n == 0 or epochs == 0:
            return params.copy()
        features = dataset.features
        targets = dataset.targets
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                grad = self._gradient(params, features[batch], targets[batch])
                if self.l2 > 0:
                    grad = grad + self.l2 * params
                if proximal_mu > 0.0 and reference_parameters is not None:
                    grad = grad + proximal_mu * (params - reference_parameters)
                params = params - self.learning_rate * grad
        self._parameters = params
        return params.copy()

    def fit(self, dataset: Dataset, seed: SeedLike = None) -> "ParametricModel":
        """Fresh initialisation followed by ``self.epochs`` of local training."""
        self.initialize(seed)
        self.train_epochs(dataset, seed=seed)
        return self

    def gradient_on(self, dataset: Dataset) -> np.ndarray:
        """Full-batch gradient at the current parameters (for analysis/tests)."""
        if self._parameters is None:
            self.initialize(self._init_seed)
        if len(dataset) == 0:
            return np.zeros(self.num_parameters())
        return self._gradient(self._parameters, dataset.features, dataset.targets)
