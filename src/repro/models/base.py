"""Model interfaces shared by the FL simulator and the valuation layer.

Two abstractions are defined:

* :class:`Model` — anything that can be fitted on a dataset and evaluated on a
  test dataset, returning a scalar utility.  Non-parametric models (e.g. the
  gradient-boosted trees standing in for XGBoost) implement only this.
* :class:`ParametricModel` — additionally exposes its parameters as a single
  flat vector and supports local gradient-descent epochs, which is what
  FedAvg-style aggregation and the gradient-based valuation baselines
  (OR, λ-MR, GTG-Shapley) require.

Parametric models additionally speak a *batched* protocol over stacked
parameter matrices ``(B, P)`` — one row per coalition model trained in
lockstep — used by the vectorized multi-coalition training engine
(:mod:`repro.fl.vectorized`).  The base class provides exact per-slice
reference implementations; subclasses that implement truly vectorized
gradients/predictions advertise it with ``supports_vectorized = True``
(non-parametric models such as the GBDT, and models without batched
kernels such as the CNN, are transparently trained on the serial path
instead).
"""

from __future__ import annotations

import abc
import copy
from typing import Optional, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.utils.rng import RandomState, SeedLike


class Model(abc.ABC):
    """Minimal model protocol: fit on data, predict, report utility."""

    #: whether the model exposes flat parameters usable for FedAvg aggregation
    is_parametric: bool = False

    @abc.abstractmethod
    def fit(self, dataset: Dataset, seed: SeedLike = None) -> "Model":
        """Train the model from scratch on ``dataset`` and return ``self``."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets (class ids or regression values) for ``features``."""

    @abc.abstractmethod
    def evaluate(self, dataset: Dataset) -> float:
        """Scalar utility of the model on ``dataset`` (accuracy or −MSE)."""

    def clone(self) -> "Model":
        """Return an unfitted copy with identical hyperparameters."""
        return copy.deepcopy(self)


class ParametricModel(Model):
    """A model whose state is a flat parameter vector trainable by SGD.

    Subclasses implement :meth:`_init_parameters`, :meth:`_gradient` and the
    prediction/evaluation methods.  This base class provides parameter get/set,
    mini-batch local training (``train_epochs``) and full ``fit``, which is a
    fresh initialisation followed by local training — exactly the primitives
    the FL server and clients need.
    """

    is_parametric = True

    #: whether the subclass implements truly vectorized batched primitives
    #: (:meth:`batch_gradient` / :meth:`batch_predict` over stacked parameter
    #: matrices).  The vectorized multi-coalition trainer only engages models
    #: that set this to True; everything else stays on the serial path.
    supports_vectorized = False

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 5,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.1,
        seed: SeedLike = None,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.init_scale = init_scale
        self._init_seed = seed
        self._parameters: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Parameter handling
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Total number of scalar parameters."""

    @abc.abstractmethod
    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        """Return a freshly initialised flat parameter vector."""

    @abc.abstractmethod
    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Mini-batch gradient of the training loss at ``parameters``."""

    def get_parameters(self) -> np.ndarray:
        """Copy of the current flat parameter vector (initialising if needed)."""
        if self._parameters is None:
            self.initialize(self._init_seed)
        return self._parameters.copy()

    def set_parameters(self, parameters: np.ndarray) -> None:
        parameters = np.asarray(parameters, dtype=float)
        expected = self.num_parameters()
        if parameters.shape != (expected,):
            raise ValueError(
                f"expected parameter vector of shape ({expected},), got {parameters.shape}"
            )
        self._parameters = parameters.copy()

    def initialize(self, seed: SeedLike = None) -> "ParametricModel":
        """(Re-)initialise parameters; used by the FL server at round zero."""
        rng = RandomState(seed if seed is not None else self._init_seed)
        self._parameters = np.asarray(self._init_parameters(rng), dtype=float)
        if self._parameters.shape != (self.num_parameters(),):
            raise RuntimeError(
                "model initialisation produced a parameter vector of the wrong size"
            )
        return self

    @property
    def is_initialized(self) -> bool:
        return self._parameters is not None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_epochs(
        self,
        dataset: Dataset,
        epochs: Optional[int] = None,
        seed: SeedLike = None,
        proximal_mu: float = 0.0,
        reference_parameters: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run mini-batch SGD epochs from the current parameters.

        ``proximal_mu``/``reference_parameters`` implement the FedProx proximal
        term ``(μ/2)·||w − w_ref||²`` used by the FedProx algorithm.
        Returns the updated flat parameter vector (also stored on the model).
        """
        if self._parameters is None:
            self.initialize(seed)
        epochs = self.epochs if epochs is None else epochs
        rng = RandomState(seed)
        params = self._parameters
        n = len(dataset)
        if n == 0 or epochs == 0:
            return params.copy()
        features = dataset.features
        targets = dataset.targets
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                grad = self._gradient(params, features[batch], targets[batch])
                if self.l2 > 0:
                    grad = grad + self.l2 * params
                if proximal_mu > 0.0 and reference_parameters is not None:
                    grad = grad + proximal_mu * (params - reference_parameters)
                params = params - self.learning_rate * grad
        self._parameters = params
        return params.copy()

    def fit(self, dataset: Dataset, seed: SeedLike = None) -> "ParametricModel":
        """Fresh initialisation followed by ``self.epochs`` of local training."""
        self.initialize(seed)
        self.train_epochs(dataset, seed=seed)
        return self

    def gradient_on(self, dataset: Dataset) -> np.ndarray:
        """Full-batch gradient at the current parameters (for analysis/tests)."""
        if self._parameters is None:
            self.initialize(self._init_seed)
        if len(dataset) == 0:
            return np.zeros(self.num_parameters())
        return self._gradient(self._parameters, dataset.features, dataset.targets)

    # ------------------------------------------------------------------ #
    # Batched (stacked-parameter) protocol
    # ------------------------------------------------------------------ #
    # One row per coalition model trained in lockstep: parameters are a
    # ``(B, P)`` matrix, per-slice mini-batches a ``(B, m, ...)`` feature
    # stack.  The defaults below are exact per-slice loops — bitwise
    # identical to the serial primitives by construction — so every
    # parametric model is batch-*correct*; only models that override
    # :meth:`batch_gradient` / :meth:`batch_predict` with genuinely
    # vectorized kernels (``supports_vectorized = True``) are batch-*fast*.

    def _check_stacked(self, parameters: np.ndarray) -> np.ndarray:
        parameters = np.asarray(parameters, dtype=float)
        expected = self.num_parameters()
        if parameters.ndim != 2 or parameters.shape[1] != expected:
            raise ValueError(
                f"expected stacked parameters of shape (B, {expected}), "
                f"got {parameters.shape}"
            )
        return parameters

    def batch_init_parameters(
        self, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Stack of fresh initialisations, slice ``b`` drawn from ``rngs[b]``.

        Deliberately a per-slice loop over :meth:`_init_parameters`: each
        generator is consumed exactly as :meth:`initialize` would consume it,
        so slice ``b`` is bitwise-identical to a serial initialisation from
        the same generator — the anchor of the vectorized trainer's
        seed-for-seed equivalence contract.
        """
        expected = self.num_parameters()
        rows = []
        for rng in rngs:
            row = np.asarray(self._init_parameters(rng), dtype=float)
            if row.shape != (expected,):
                raise RuntimeError(
                    "model initialisation produced a parameter vector of the "
                    "wrong size"
                )
            rows.append(row)
        if not rows:
            return np.empty((0, expected), dtype=float)
        return np.stack(rows)

    def batch_gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Per-slice mini-batch gradients: ``(B, P) × (B, m, ...) → (B, P)``.

        Reference implementation: a loop over :meth:`_gradient`.  Vectorized
        subclasses replace it with stacked linear algebra.
        """
        parameters = self._check_stacked(parameters)
        if parameters.shape[0] == 0:
            return parameters.copy()
        return np.stack(
            [
                self._gradient(parameters[b], features[b], targets[b])
                for b in range(parameters.shape[0])
            ]
        )

    def batch_predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Predictions of every stacked model on shared features → ``(B, n)``.

        Reference implementation: per-slice :meth:`predict` through a cloned
        engine model.
        """
        parameters = self._check_stacked(parameters)
        engine = self.clone()
        rows = []
        for row in parameters:
            engine.set_parameters(row)
            rows.append(np.asarray(engine.predict(features)))
        if not rows:
            return np.empty((0, len(features)))
        return np.stack(rows)

    def batch_evaluate(self, parameters: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Utility of every stacked model on ``dataset`` → ``(B,)``.

        Always evaluates per slice through a cloned engine model, never
        through batched kernels: given identical final parameters the
        utilities are bitwise-identical to :meth:`evaluate`, which pins the
        vectorized trainer's only possible float divergence inside the
        training matmuls (see ``docs/performance.md``).
        """
        parameters = self._check_stacked(parameters)
        engine = self.clone()
        values = []
        for row in parameters:
            engine.set_parameters(row)
            values.append(float(engine.evaluate(dataset)))
        return np.asarray(values, dtype=float)
