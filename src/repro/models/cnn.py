"""Small convolutional neural network.

The paper's second neural FL model is "the widely-used convolutional neural
network".  This implementation keeps the architecture deliberately small so
that training a coalition model stays fast on CPU:

    conv(3x3, F filters, stride 1, valid) -> ReLU -> 2x2 max-pool
        -> flatten -> dense -> softmax

The convolution is implemented with im2col so both the forward and backward
passes reduce to matrix multiplications.  All parameters (filters, filter
biases, dense weights, dense biases) are packed into one flat vector for
FedAvg aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.models.activations import relu, relu_grad, softmax
from repro.models.base import ParametricModel
from repro.models.metrics import accuracy_score
from repro.utils.rng import SeedLike


def _im2col(images: np.ndarray, kernel: int) -> np.ndarray:
    """Rearrange image patches into rows for convolution-as-matmul.

    ``images`` has shape ``(n, H, W)``; the result has shape
    ``(n, out_h * out_w, kernel * kernel)`` where ``out_h = H - kernel + 1``.
    """
    n, height, width = images.shape
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    strides = images.strides
    patches = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, out_h, out_w, kernel, kernel),
        strides=(strides[0], strides[1], strides[2], strides[1], strides[2]),
        writeable=False,
    )
    return patches.reshape(n, out_h * out_w, kernel * kernel)


class SimpleCNN(ParametricModel):
    """One-conv-layer CNN classifier over square greyscale images.

    Parameters
    ----------
    image_size:
        Side length of the (square) input images.
    n_classes:
        Number of output classes.
    n_filters:
        Number of convolution filters.
    kernel_size:
        Side length of the square convolution kernel.
    """

    def __init__(
        self,
        image_size: int,
        n_classes: int,
        n_filters: int = 4,
        kernel_size: int = 3,
        learning_rate: float = 0.2,
        epochs: int = 8,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            init_scale=init_scale,
            seed=seed,
        )
        if image_size < kernel_size + 1:
            raise ValueError("image_size must exceed kernel_size")
        if n_classes < 2 or n_filters <= 0:
            raise ValueError("need at least two classes and one filter")
        self.image_size = image_size
        self.n_classes = n_classes
        self.n_filters = n_filters
        self.kernel_size = kernel_size
        self.conv_out = image_size - kernel_size + 1
        self.pool_out = self.conv_out // 2
        if self.pool_out < 1:
            raise ValueError("image too small for a 2x2 max-pool after convolution")
        self.flat_size = n_filters * self.pool_out * self.pool_out

    # ------------------------------------------------------------------ #
    # Parameter packing
    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        conv = self.n_filters * self.kernel_size * self.kernel_size + self.n_filters
        dense = self.flat_size * self.n_classes + self.n_classes
        return conv + dense

    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        k2 = self.kernel_size * self.kernel_size
        conv_w = rng.normal(0.0, self.init_scale * np.sqrt(2.0 / k2), size=self.n_filters * k2)
        conv_b = np.zeros(self.n_filters)
        dense_w = rng.normal(
            0.0,
            self.init_scale * np.sqrt(2.0 / self.flat_size),
            size=self.flat_size * self.n_classes,
        )
        dense_b = np.zeros(self.n_classes)
        return np.concatenate([conv_w, conv_b, dense_w, dense_b])

    def _unpack(self, parameters: np.ndarray):
        k2 = self.kernel_size * self.kernel_size
        offset = 0
        conv_w = parameters[offset : offset + self.n_filters * k2].reshape(self.n_filters, k2)
        offset += self.n_filters * k2
        conv_b = parameters[offset : offset + self.n_filters]
        offset += self.n_filters
        dense_w = parameters[offset : offset + self.flat_size * self.n_classes].reshape(
            self.flat_size, self.n_classes
        )
        offset += self.flat_size * self.n_classes
        dense_b = parameters[offset : offset + self.n_classes]
        return conv_w, conv_b, dense_w, dense_b

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _reshape_images(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 2:
            features = features.reshape(len(features), self.image_size, self.image_size)
        return features

    def _forward(self, parameters: np.ndarray, images: np.ndarray):
        conv_w, conv_b, dense_w, dense_b = self._unpack(parameters)
        n = len(images)
        columns = _im2col(images, self.kernel_size)  # (n, P, k2)
        conv_pre = columns @ conv_w.T + conv_b  # (n, P, F)
        conv_pre = conv_pre.reshape(n, self.conv_out, self.conv_out, self.n_filters)
        conv_act = relu(conv_pre)

        # 2x2 max-pool with stride 2 (trailing row/col dropped when odd).
        crop = self.pool_out * 2
        pooled_view = conv_act[:, :crop, :crop, :].reshape(
            n, self.pool_out, 2, self.pool_out, 2, self.n_filters
        )
        pooled = pooled_view.max(axis=(2, 4))  # (n, P_out, P_out, F)
        # Argmax mask for backprop: mark positions equal to the pooled maximum.
        pooled_broadcast = pooled[:, :, None, :, None, :]
        pool_mask = (pooled_view == pooled_broadcast).astype(float)
        # Normalise ties so the gradient mass is preserved.
        tie_counts = pool_mask.sum(axis=(2, 4), keepdims=True)
        pool_mask = pool_mask / np.maximum(tie_counts, 1.0)

        flat = pooled.reshape(n, self.flat_size)
        logits = flat @ dense_w + dense_b
        probabilities = softmax(logits)
        cache = (columns, conv_pre, pool_mask, flat, crop)
        return probabilities, cache

    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        images = self._reshape_images(features)
        targets = np.asarray(targets).astype(int)
        n = len(images)
        conv_w, conv_b, dense_w, dense_b = self._unpack(parameters)
        probabilities, cache = self._forward(parameters, images)
        columns, conv_pre, pool_mask, flat, crop = cache

        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n), targets] = 1.0
        delta_logits = (probabilities - one_hot) / n  # (n, C)

        grad_dense_w = flat.T @ delta_logits
        grad_dense_b = delta_logits.sum(axis=0)

        delta_flat = delta_logits @ dense_w.T  # (n, flat)
        delta_pooled = delta_flat.reshape(n, self.pool_out, self.pool_out, self.n_filters)
        # Route gradients back through the max-pool.
        delta_conv_cropped = (
            pool_mask * delta_pooled[:, :, None, :, None, :]
        ).reshape(n, crop, crop, self.n_filters)
        delta_conv = np.zeros((n, self.conv_out, self.conv_out, self.n_filters))
        delta_conv[:, :crop, :crop, :] = delta_conv_cropped
        delta_conv = delta_conv * relu_grad(conv_pre)

        delta_conv_flat = delta_conv.reshape(n, -1, self.n_filters)  # (n, P, F)
        grad_conv_w = np.einsum("npf,npk->fk", delta_conv_flat, columns)
        grad_conv_b = delta_conv_flat.sum(axis=(0, 1))

        return np.concatenate(
            [grad_conv_w.ravel(), grad_conv_b, grad_dense_w.ravel(), grad_dense_b]
        )

    # ------------------------------------------------------------------ #
    # Prediction / evaluation
    # ------------------------------------------------------------------ #
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        images = self._reshape_images(features)
        probabilities, _ = self._forward(self.get_parameters(), images)
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy (the paper's classification utility)."""
        if len(dataset) == 0:
            return 0.0
        predictions = self.predict(dataset.features)
        return accuracy_score(dataset.targets, predictions)
