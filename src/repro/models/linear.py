"""Linear regression model.

Used both as an FL model in its own right and as the analytical setting of the
paper's theory (Thm. 2 variance comparison, Lemma 1 / Thm. 3 error bounds),
which assume an FL linear-regression model trained on Gaussian data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.models.base import ParametricModel
from repro.models.metrics import negative_mse
from repro.utils.rng import SeedLike


class LinearRegressionModel(ParametricModel):
    """Linear regression ``y = X w + b`` trained with mini-batch SGD.

    The utility reported by :meth:`evaluate` is the *negative* mean squared
    error so that, consistently with classification accuracy, larger is better.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    fit_intercept:
        Whether to learn a bias term.
    """

    supports_vectorized = True

    def __init__(
        self,
        n_features: int,
        fit_intercept: bool = True,
        learning_rate: float = 0.05,
        epochs: int = 20,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            init_scale=init_scale,
            seed=seed,
        )
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = n_features
        self.fit_intercept = fit_intercept

    def num_parameters(self) -> int:
        return self.n_features + (1 if self.fit_intercept else 0)

    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        if self.init_scale == 0.0:
            return np.zeros(self.num_parameters())
        return rng.normal(0.0, self.init_scale, size=self.num_parameters())

    def _split(self, parameters: np.ndarray) -> tuple[np.ndarray, float]:
        if self.fit_intercept:
            return parameters[:-1], float(parameters[-1])
        return parameters, 0.0

    def _predict_with(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        weights, bias = self._split(parameters)
        return features.reshape(len(features), -1) @ weights + bias

    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        features = features.reshape(len(features), -1)
        residual = self._predict_with(parameters, features) - targets
        n = len(features)
        grad_w = 2.0 * features.T @ residual / n
        if self.fit_intercept:
            grad_b = 2.0 * residual.mean()
            return np.concatenate([grad_w, [grad_b]])
        return grad_w

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        return self._predict_with(self.get_parameters(), features.reshape(len(features), -1))

    # ------------------------------------------------------------------ #
    # Batched (stacked-parameter) kernels
    # ------------------------------------------------------------------ #
    def _batch_split(self, parameters: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.fit_intercept:
            return parameters[:, :-1], parameters[:, -1]
        return parameters, np.zeros(parameters.shape[0])

    def _batch_predict_with(
        self, parameters: np.ndarray, features: np.ndarray
    ) -> np.ndarray:
        weights, biases = self._batch_split(parameters)
        return (features @ weights[..., None])[..., 0] + biases[:, None]

    def batch_gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Stacked squared-error gradients: ``(B, P) × (B, m, ...) → (B, P)``.

        Note the serial path computes ``X.T @ r`` as a BLAS GEMV while the
        stacked path runs a width-1 GEMM per slice; the kernels may round
        differently in the last ulps, which is exactly the divergence the
        equivalence policy in ``docs/performance.md`` bounds and tests.
        """
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        batch, m = parameters.shape[0], features.shape[1]
        features = features.reshape(batch, m, -1)
        targets = np.asarray(targets, dtype=float)
        residual = self._batch_predict_with(parameters, features) - targets
        grad_w = (
            2.0 * np.matmul(features.transpose(0, 2, 1), residual[..., None])[..., 0] / m
        )
        if self.fit_intercept:
            grad_b = 2.0 * residual.mean(axis=1)
            return np.concatenate([grad_w, grad_b[:, None]], axis=1)
        return grad_w

    def batch_predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Regression predictions of every stacked model on shared features."""
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        flat = features.reshape(1, len(features), -1)
        stacked = np.broadcast_to(flat, (parameters.shape[0],) + flat.shape[1:])
        return self._batch_predict_with(parameters, stacked)

    def evaluate(self, dataset: Dataset) -> float:
        """Negative MSE on ``dataset`` (higher is better)."""
        if len(dataset) == 0:
            return float("-inf")
        predictions = self.predict(dataset.flat_features)
        return negative_mse(dataset.targets, predictions)

    def fit_closed_form(self, dataset: Dataset, ridge: float = 1e-8) -> "LinearRegressionModel":
        """Ordinary least squares with a tiny ridge term, for exact solutions.

        Used by the theory module and tests as the "fully trained" reference
        that SGD should approach.
        """
        features = dataset.flat_features
        targets = dataset.targets.astype(float)
        if self.fit_intercept:
            design = np.column_stack([features, np.ones(len(features))])
        else:
            design = features
        gram = design.T @ design + ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ targets)
        self.set_parameters(solution)
        return self
