"""Model evaluation metrics and utility functions.

The valuation layer measures a coalition's worth with the *utility function*
``U(M_S)``, which the paper sets to test accuracy for classification models
and to negative mean-squared-error for the linear-regression theory sections.
"""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified samples; 0.0 for empty inputs."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    return float(np.mean(y_true == y_pred))


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error; ``inf`` for empty inputs (an untrained regressor)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if len(y_true) == 0:
        return float("inf")
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    return float(np.mean((y_true - y_pred) ** 2))


def negative_mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Negative MSE, the regression utility used in the paper's Lemma 1."""
    return -mean_squared_error(y_true, y_pred)


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error, used in the Thm. 2 variance analysis."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if len(y_true) == 0:
        return float("inf")
    return float(np.mean(np.abs(y_true - y_pred)))


def cross_entropy(probabilities: np.ndarray, y_true: np.ndarray, eps: float = 1e-12) -> float:
    """Average categorical cross-entropy given predicted class probabilities."""
    probabilities = np.asarray(probabilities, dtype=float)
    y_true = np.asarray(y_true, dtype=int)
    if len(y_true) == 0:
        return 0.0
    picked = probabilities[np.arange(len(y_true)), y_true]
    return float(-np.mean(np.log(np.clip(picked, eps, 1.0))))
