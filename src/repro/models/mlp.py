"""Multi-layer perceptron classifier.

One of the two neural FL models in the paper's experiments.  Hidden layers use
ReLU (or tanh) and the output layer is a softmax trained with cross-entropy.
Parameters for all layers are packed into a single flat vector so the FL
server can aggregate them with FedAvg.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.models.activations import get_activation, softmax
from repro.models.base import ParametricModel
from repro.models.metrics import accuracy_score
from repro.utils.rng import SeedLike


class MLPClassifier(ParametricModel):
    """Feed-forward neural network with configurable hidden layers.

    Parameters
    ----------
    n_features:
        Flattened input dimensionality.
    n_classes:
        Number of output classes.
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(32, 16)``.
    activation:
        Hidden activation name (``"relu"`` or ``"tanh"``).
    """

    supports_vectorized = True

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden_sizes: Sequence[int] = (32,),
        activation: str = "relu",
        learning_rate: float = 0.2,
        epochs: int = 10,
        batch_size: int = 32,
        l2: float = 0.0,
        init_scale: float = 0.2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            learning_rate=learning_rate,
            epochs=epochs,
            batch_size=batch_size,
            l2=l2,
            init_scale=init_scale,
            seed=seed,
        )
        if n_features <= 0 or n_classes < 2:
            raise ValueError("n_features must be positive and n_classes >= 2")
        hidden_sizes = tuple(int(h) for h in hidden_sizes)
        if any(h <= 0 for h in hidden_sizes):
            raise ValueError("hidden layer sizes must be positive")
        self.n_features = n_features
        self.n_classes = n_classes
        self.hidden_sizes = hidden_sizes
        self.activation_name = activation
        self._activation, self._activation_grad = get_activation(activation)
        # Layer sizes: input -> hidden... -> output.
        self._layer_sizes = (n_features,) + hidden_sizes + (n_classes,)
        self._shapes = [
            (self._layer_sizes[i], self._layer_sizes[i + 1])
            for i in range(len(self._layer_sizes) - 1)
        ]

    # ------------------------------------------------------------------ #
    # Parameter packing
    # ------------------------------------------------------------------ #
    def num_parameters(self) -> int:
        return sum(rows * cols + cols for rows, cols in self._shapes)

    def _init_parameters(self, rng: np.random.Generator) -> np.ndarray:
        chunks = []
        for rows, cols in self._shapes:
            scale = self.init_scale * np.sqrt(2.0 / rows)
            chunks.append(rng.normal(0.0, scale, size=rows * cols))
            chunks.append(np.zeros(cols))
        return np.concatenate(chunks)

    def _unpack(self, parameters: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        layers = []
        offset = 0
        for rows, cols in self._shapes:
            weight = parameters[offset : offset + rows * cols].reshape(rows, cols)
            offset += rows * cols
            bias = parameters[offset : offset + cols]
            offset += cols
            layers.append((weight, bias))
        return layers

    @staticmethod
    def _pack(layers: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        chunks = []
        for weight, bias in layers:
            chunks.append(weight.ravel())
            chunks.append(bias.ravel())
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _forward(
        self, parameters: np.ndarray, features: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Return output probabilities plus cached pre/post activations."""
        layers = self._unpack(parameters)
        activations = [features]
        pre_activations = []
        hidden = features
        for weight, bias in layers[:-1]:
            pre = hidden @ weight + bias
            pre_activations.append(pre)
            hidden = self._activation(pre)
            activations.append(hidden)
        out_weight, out_bias = layers[-1]
        logits = hidden @ out_weight + out_bias
        pre_activations.append(logits)
        return softmax(logits), pre_activations, activations

    def _gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        features = features.reshape(len(features), -1).astype(float)
        targets = targets.astype(int)
        n = len(features)
        layers = self._unpack(parameters)
        probabilities, pre_activations, activations = self._forward(parameters, features)

        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(n), targets] = 1.0
        delta = (probabilities - one_hot) / n

        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(layers)
        # Output layer.
        grads[-1] = (activations[-1].T @ delta, delta.sum(axis=0))
        # Hidden layers (backwards).
        for layer_index in range(len(layers) - 2, -1, -1):
            weight_next = layers[layer_index + 1][0]
            delta = (delta @ weight_next.T) * self._activation_grad(
                pre_activations[layer_index]
            )
            grads[layer_index] = (activations[layer_index].T @ delta, delta.sum(axis=0))
        return self._pack(grads)

    # ------------------------------------------------------------------ #
    # Batched (stacked-parameter) kernels
    # ------------------------------------------------------------------ #
    def _batch_unpack(self, parameters: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        batch = parameters.shape[0]
        layers = []
        offset = 0
        for rows, cols in self._shapes:
            weight = parameters[:, offset : offset + rows * cols].reshape(batch, rows, cols)
            offset += rows * cols
            bias = parameters[:, offset : offset + cols]
            offset += cols
            layers.append((weight, bias))
        return layers

    def _batch_forward(
        self, parameters: np.ndarray, features: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Stacked forward pass: probabilities plus cached activations."""
        layers = self._batch_unpack(parameters)
        activations = [features]
        pre_activations = []
        hidden = features
        for weight, bias in layers[:-1]:
            pre = hidden @ weight + bias[:, None, :]
            pre_activations.append(pre)
            hidden = self._activation(pre)
            activations.append(hidden)
        out_weight, out_bias = layers[-1]
        logits = hidden @ out_weight + out_bias[:, None, :]
        pre_activations.append(logits)
        return softmax(logits), pre_activations, activations

    def batch_gradient(
        self, parameters: np.ndarray, features: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Stacked backprop: ``(B, P) × (B, m, ...) → (B, P)``.

        Mirrors :meth:`_gradient` with every matmul lifted one batch axis up;
        per-slice operand shapes and layouts match the serial path exactly.
        """
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        batch, m = parameters.shape[0], features.shape[1]
        features = features.reshape(batch, m, -1)
        targets = np.asarray(targets).astype(int)
        layers = self._batch_unpack(parameters)
        probabilities, pre_activations, activations = self._batch_forward(
            parameters, features
        )

        # (p - one_hot) / m without materialising the one-hot tensor; the
        # per-element arithmetic is identical to the serial expression.
        delta = probabilities.copy()
        delta[np.arange(batch)[:, None], np.arange(m)[None, :], targets] -= 1.0
        delta /= m

        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(layers)
        grads[-1] = (
            np.matmul(activations[-1].transpose(0, 2, 1), delta),
            delta.sum(axis=1),
        )
        for layer_index in range(len(layers) - 2, -1, -1):
            weight_next = layers[layer_index + 1][0]
            delta = (delta @ weight_next.transpose(0, 2, 1)) * self._activation_grad(
                pre_activations[layer_index]
            )
            grads[layer_index] = (
                np.matmul(activations[layer_index].transpose(0, 2, 1), delta),
                delta.sum(axis=1),
            )
        chunks = []
        for weight, bias in grads:
            chunks.append(weight.reshape(batch, -1))
            chunks.append(bias)
        return np.concatenate(chunks, axis=1)

    def batch_predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Class predictions of every stacked model on shared features."""
        parameters = self._check_stacked(parameters)
        features = np.asarray(features, dtype=float)
        flat = features.reshape(1, len(features), -1)
        stacked = np.broadcast_to(flat, (parameters.shape[0],) + flat.shape[1:])
        probabilities, _, _ = self._batch_forward(parameters, np.ascontiguousarray(stacked))
        return np.argmax(probabilities, axis=-1)

    # ------------------------------------------------------------------ #
    # Prediction / evaluation
    # ------------------------------------------------------------------ #
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float).reshape(len(features), -1)
        probabilities, _, _ = self._forward(self.get_parameters(), features)
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def evaluate(self, dataset: Dataset) -> float:
        """Test accuracy (the paper's classification utility)."""
        if len(dataset) == 0:
            return 0.0
        predictions = self.predict(dataset.flat_features)
        return accuracy_score(dataset.targets, predictions)
