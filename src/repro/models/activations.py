"""Activation functions and their derivatives for the NumPy neural networks."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its pre-activation input."""
    return (x > 0.0).astype(x.dtype)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    t = np.tanh(x)
    return 1.0 - t * t


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Softmax over the last axis with the max-subtraction trick for stability.

    Works unchanged for ``(n, C)`` logits and for the ``(B, n, C)`` stacks the
    batched multi-coalition kernels produce (for 2-D input the last axis *is*
    axis 1, so this is the historical row-wise behaviour).
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


_ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
}


def get_activation(name: str):
    """Return ``(function, derivative)`` for a named hidden activation."""
    try:
        return _ACTIVATIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from exc
