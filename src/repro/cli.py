"""``repro`` — the command-line face of the experiment pipeline.

Subcommands
-----------
``repro run``
    Execute a campaign described either by CLI flags (one task) or a JSON
    config file (any plan).  Each (task, algorithm) cell is recorded in a
    manifest as it completes, results land beside it, and a persistent
    utility store makes reruns retraining-free.
``repro run --scenario <names>``
    Robustness mode: run the algorithm grid on each named scenario *and* its
    behavior-free clean counterpart, then report per-algorithm robustness —
    adversary rank positions, precision@k for spotting the injected bad
    actors, and rank correlation against the clean valuation.
``repro resume``
    Finish an interrupted run from its manifest: only missing cells are
    computed; with the same store attached their coalitions come from disk.
    Cells interrupted mid-valuation continue from their estimator
    checkpoints (``checkpoints/`` under the run dir), replaying at most the
    in-flight chunk.
``repro run/resume --stop-on --checkpoint-every --progress --json-stream``
    The anytime surface (see docs/anytime.md): early-stop rules per cell
    (``budget:64,ci:0.02,rank:2@top5,wallclock:30``), checkpoint cadence,
    and per-chunk progress/snapshot streaming.
``repro worker <queue-dir>``
    Serve a fleet lease queue (see docs/fleet.md): claim coalition batches,
    evaluate them with a local executor, deposit utilities into the shared
    persistent store, heartbeat the lease.  Pairs with
    ``repro run --backend fleet --queue-dir DIR --store PATH`` on any
    machine that shares the queue directory and store.
``repro serve <state-dir>``
    Run the valuation service (see docs/service.md): an HTTP/JSON job server
    where tenants POST valuation jobs, stream live snapshot events (SSE),
    and read results; jobs are scheduled by priority with tenant fairness,
    preempted gracefully at chunk boundaries, and recovered from checkpoints
    after a crash — bitwise-identical to an uninterrupted ``repro run``.
``repro submit`` / ``repro jobs``
    The scripting client for a running service: submit a job (``--wait`` /
    ``--stream`` to follow it), list/inspect/cancel/stream jobs.
``repro scenarios list`` / ``repro scenarios show``
    Browse the registered client-behavior scenarios (see docs/scenarios.md).
``repro store stats`` / ``repro store gc``
    Inspect or compact a utility store.
``repro trace <run-dir>`` / ``repro stats <run-dir>``
    Read a finished run's telemetry journal back (see docs/observability.md):
    ``trace`` renders the span tree and its critical path, ``stats`` the
    metric summaries (p50/p90/p99; ``--json`` for machine-readable output,
    ``--prometheus`` for Prometheus text exposition).  Telemetry is on by
    default for ``run``/``resume``; ``--no-telemetry`` switches it off —
    values and store keys are bitwise-identical either way.
``repro list-tasks``
    Show the registered task kinds and algorithm names a plan may reference.
``repro check [paths]``
    Run the determinism & concurrency contract checker
    (:mod:`repro.analysis`, see docs/static-analysis.md) over the given
    files/directories (default: ``src tests``).  Exits non-zero on findings;
    ``--json`` for machine-readable output, ``--baseline`` to gate against a
    committed (shrinking) baseline, ``--select``/``--ignore`` to pick rules.

Example
-------
::

    repro run --run-dir runs/demo --store store.sqlite \\
        --task adult --model logistic --n-clients 3 --scale tiny
    repro resume --run-dir runs/demo --store store.sqlite

A JSON config (``repro run --config plan.json``) carries a full plan::

    {
      "name": "table5-campaign",
      "algorithms": ["MC-Shapley", "IPSS", "Extended-TMC"],
      "tasks": [
        {"kind": "adult", "model": "mlp", "n_clients": 3, "scale": "tiny"},
        {"kind": "femnist", "model": "mlp", "n_clients": 6, "scale": "tiny"}
      ]
    }
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Optional, Sequence

from repro.experiments.config import ExperimentScale
from repro.experiments.pipeline import (
    DEFAULT_ALGORITHMS,
    ExperimentPlan,
    RunReport,
    available_algorithms,
    resume_run,
    run_plan,
)
from repro.core import parse_stopping_rule
from repro.experiments.reporting import format_table
from repro.experiments.specs import SYNTHETIC_SETUPS, TaskSpec, available_tasks
from repro.experiments.tables import robustness_table
from repro.fleet.coordinator import WORKER_BACKENDS
from repro.parallel.executors import EXECUTOR_BACKENDS
from repro.scenarios import available_scenarios, get_scenario, run_robustness
from repro.store import STORE_BACKENDS, open_store
from repro.telemetry import Telemetry, prometheus_text, read_journal
from repro.telemetry.report import (
    build_span_tree,
    load_metrics,
    render_stats,
    render_trace,
)
from repro.version import __version__

_SCALE_NAMES = ("tiny", "small", "paper")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resumable, store-backed FL data-valuation experiments.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="execute a campaign (flags or --config)")
    run.add_argument("--run-dir", required=True, help="directory for manifest + results")
    run.add_argument("--config", help="JSON plan file (overrides the task flags)")
    run.add_argument(
        "--scenario",
        help="comma-separated scenario names: run the robustness harness "
        "(each scenario plus its clean counterpart) instead of a single task; "
        "see `repro scenarios list`",
    )
    # --task/--setup/--n-clients default to None so scenario mode can tell
    # "left alone" from "explicitly set" and refuse flags it would ignore.
    run.add_argument(
        "--task", choices=available_tasks(), help="task kind (default: adult)"
    )
    run.add_argument("--setup", choices=SYNTHETIC_SETUPS, help="synthetic tasks only")
    run.add_argument("--model", default="logistic")
    run.add_argument("--n-clients", type=int, help="clients per task (default: 3)")
    run.add_argument("--scale", choices=_SCALE_NAMES, default="tiny")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--algorithms",
        help=f"comma-separated names (default: {','.join(DEFAULT_ALGORITHMS)}; "
        f"known: {','.join(available_algorithms())})",
    )
    run.add_argument("--n-workers", type=int, default=1)
    run.add_argument(
        "--backend",
        choices=EXECUTOR_BACKENDS,
        help="coalition-evaluation backend (default: serial, auto-threads "
        "when --n-workers > 1); 'vectorized' trains whole coalition batches "
        "in lockstep on stacked parameters — see docs/performance.md",
    )
    run.add_argument(
        "--queue-dir",
        help="fleet backend only: shared lease-queue directory (created if "
        "missing); workers join with `repro worker QUEUE_DIR`",
    )
    run.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        metavar="N",
        help="fleet backend only: worker processes the run launches itself "
        "(default 0: rely on externally started `repro worker` processes)",
    )
    run.add_argument(
        "--worker-backend",
        choices=WORKER_BACKENDS,
        help="fleet backend only: executor each worker evaluates with "
        "(default: serial)",
    )
    run.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="S",
        help="fleet backend only: batch lease duration; an expired lease "
        "requeues the batch for another worker (default 30)",
    )
    run.add_argument("--resume", action="store_true", help="continue an existing run dir")
    _add_anytime_arguments(run)
    _add_store_arguments(run)
    _add_output_arguments(run)

    worker = subparsers.add_parser(
        "worker",
        help="serve a fleet lease queue: claim coalition batches, evaluate, "
        "deposit into the shared store",
    )
    worker.add_argument("queue_dir", help="lease-queue directory shared with the run")
    worker.add_argument(
        "--backend",
        choices=WORKER_BACKENDS,
        default="serial",
        help="executor used inside this worker (default: serial)",
    )
    worker.add_argument(
        "--n-workers",
        type=int,
        default=1,
        help="concurrency level for this worker's internal executor",
    )
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="S",
        help="lease duration requested per claim (default 30)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="S",
        help="sleep between claim attempts when the queue is empty",
    )
    worker.add_argument(
        "--max-batches",
        type=int,
        metavar="N",
        help="exit after serving N batches (default: unlimited)",
    )
    worker.add_argument(
        "--idle-timeout",
        type=float,
        metavar="S",
        help="exit after S seconds without claiming anything",
    )
    worker.add_argument(
        "--stop-when-finished",
        action="store_true",
        help="exit once no active runs and no outstanding batches remain",
    )
    _add_output_arguments(worker)

    resume = subparsers.add_parser("resume", help="finish an interrupted run")
    resume.add_argument("--run-dir", required=True)
    _add_anytime_arguments(resume)
    _add_store_arguments(resume)
    _add_output_arguments(resume)

    serve = subparsers.add_parser(
        "serve",
        help="run the valuation service: an HTTP job server over a durable "
        "state directory (see docs/service.md)",
    )
    serve.add_argument(
        "state_dir",
        help="service state directory (job queue, store, checkpoints, events)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8310,
        help="listen port (0 binds an ephemeral port and prints it; default 8310)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent scheduler workers (jobs running at once; default 2)",
    )
    _add_store_arguments(serve)
    _add_output_arguments(serve)

    submit = subparsers.add_parser(
        "submit", help="submit a valuation job to a running `repro serve`"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8310", help="service base URL"
    )
    submit.add_argument("--spec", help="JSON JobSpec file (overrides task flags)")
    submit.add_argument("--task", choices=available_tasks())
    submit.add_argument("--setup", choices=SYNTHETIC_SETUPS)
    submit.add_argument("--model", default="logistic")
    submit.add_argument("--n-clients", type=int)
    submit.add_argument("--scale", choices=_SCALE_NAMES, default="tiny")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--algorithm",
        default="IPSS",
        help=f"one algorithm name (known: {','.join(available_algorithms())})",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="higher runs first and may preempt lower-priority running jobs",
    )
    submit.add_argument("--stop-on", metavar="SPEC")
    submit.add_argument("--checkpoint-every", type=int, default=1, metavar="N")
    submit.add_argument("--backend", choices=EXECUTOR_BACKENDS)
    submit.add_argument("--n-workers", type=int, default=1)
    submit.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )
    submit.add_argument(
        "--stream",
        action="store_true",
        help="print the job's event stream (JSONL) until it finishes",
    )
    _add_output_arguments(submit)

    jobs = subparsers.add_parser(
        "jobs", help="list, inspect, cancel or stream jobs on a `repro serve`"
    )
    jobs.add_argument("job_id", nargs="?", help="one job to show (default: list)")
    jobs.add_argument(
        "--url", default="http://127.0.0.1:8310", help="service base URL"
    )
    jobs.add_argument("--tenant", help="list filter")
    jobs.add_argument("--status", help="list filter (queued/running/done/...)")
    jobs.add_argument(
        "--cancel", action="store_true", help="cancel the given job id"
    )
    jobs.add_argument(
        "--stream",
        action="store_true",
        help="stream the given job's events (JSONL) until it finishes",
    )
    _add_output_arguments(jobs)

    scenarios = subparsers.add_parser(
        "scenarios", help="browse the client-behavior scenario catalog"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_list = scenarios_sub.add_parser("list", help="registered scenarios")
    _add_output_arguments(scenarios_list)
    scenarios_show = scenarios_sub.add_parser(
        "show", help="full definition of one scenario"
    )
    scenarios_show.add_argument("name")
    _add_output_arguments(scenarios_show)

    store = subparsers.add_parser("store", help="inspect or compact a utility store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser("stats", help="entry counts per task namespace")
    _add_store_arguments(stats, required=True)
    _add_output_arguments(stats)
    gc = store_sub.add_parser("gc", help="drop corrupt/duplicate/foreign entries")
    _add_store_arguments(gc, required=True)
    gc.add_argument(
        "--keep-namespace",
        help="also drop every entry outside this task fingerprint",
    )
    _add_output_arguments(gc)

    trace = subparsers.add_parser(
        "trace", help="span tree + critical path of a finished run's telemetry"
    )
    trace.add_argument("run_dir", help="run directory (or a journal.jsonl path)")
    trace.add_argument(
        "--max-children",
        type=int,
        default=12,
        metavar="N",
        help="collapse sibling spans beyond N into one summary line (default 12)",
    )
    _add_output_arguments(trace)

    stats_cmd = subparsers.add_parser(
        "stats", help="metric summaries (p50/p90/p99) of a finished run's telemetry"
    )
    stats_cmd.add_argument("run_dir", help="run directory (or a journal.jsonl path)")
    stats_cmd.add_argument(
        "--prometheus",
        action="store_true",
        help="Prometheus text exposition format instead of the table",
    )
    _add_output_arguments(stats_cmd)

    list_tasks = subparsers.add_parser(
        "list-tasks", help="registered task kinds and algorithms"
    )
    _add_output_arguments(list_tasks)

    check = subparsers.add_parser(
        "check", help="run the determinism/concurrency contract checker"
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    check.add_argument(
        "--baseline",
        help="JSON baseline file: listed findings are accepted, stale "
        "entries fail the gate",
    )
    check.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    check.add_argument(
        "--select", help="comma-separated rule codes to run (default: all)"
    )
    check.add_argument("--ignore", help="comma-separated rule codes to skip")
    check.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    _add_output_arguments(check)
    return parser


def _add_anytime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stop-on",
        metavar="SPEC",
        help="early-stop rule(s) per cell, e.g. 'budget:64', 'ci:0.02', "
        "'rank:3@top5', 'wallclock:30'; comma-separated terms stop on "
        "whichever fires first (see docs/anytime.md)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="persist the estimator state every N chunks so an interrupted "
        "valuation resumes mid-run (0 disables; default 1)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per estimator chunk to stderr",
    )
    parser.add_argument(
        "--json-stream",
        action="store_true",
        help="stream one JSON object per estimator chunk to stdout "
        "(followed by a final {'event': 'report'} object)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=0.0,
        metavar="S",
        help="with --json-stream: emit a {'event': 'heartbeat'} line after S "
        "seconds without a snapshot, so consumers can tell a stalled run "
        "from a slow chunk (0 disables; default 0)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the run's telemetry journal (<run-dir>/telemetry/); "
        "values and store keys are identical either way — telemetry is "
        "observational only (see docs/observability.md)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser, required: bool = False) -> None:
    parser.add_argument(
        "--store",
        required=required,
        help="persistent utility store path (SQLite file or JSONL directory)",
    )
    parser.add_argument(
        "--store-backend",
        choices=STORE_BACKENDS,
        help="force a backend instead of inferring it from the path",
    )


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON on stdout"
    )


def _open_store_arg(args) -> Optional[object]:
    if getattr(args, "store", None) is None:
        return None
    return open_store(args.store, backend=getattr(args, "store_backend", None))


def _fleet_overrides(args) -> dict:
    """Fleet execution flags, normalised for dataclasses.replace / the plan."""
    overrides = {}
    if getattr(args, "queue_dir", None):
        overrides["queue_dir"] = args.queue_dir
    if getattr(args, "spawn_workers", 0):
        overrides["spawn_workers"] = args.spawn_workers
    if getattr(args, "worker_backend", None):
        overrides["worker_backend"] = args.worker_backend
    if getattr(args, "lease_seconds", 30.0) != 30.0:
        overrides["lease_seconds"] = args.lease_seconds
    return overrides


def _plan_from_args(args) -> ExperimentPlan:
    if args.config:
        with open(args.config, "r", encoding="utf-8") as handle:
            plan = ExperimentPlan.from_dict(json.load(handle))
        overrides = _fleet_overrides(args)
        if args.backend:
            # Executor choice is machine-local, not plan content: a CLI
            # override neither changes values nor the plan fingerprint.
            overrides["backend"] = args.backend
        if overrides:
            plan = dataclasses.replace(plan, **overrides)
        return plan
    task = args.task or "adult"
    spec = TaskSpec(
        kind=task,
        setup=args.setup if task == "synthetic" else None,
        model=args.model,
        n_clients=3 if args.n_clients is None else args.n_clients,
        scale=args.scale,
        seed=args.seed,
    )
    return ExperimentPlan(
        tasks=(spec,),
        algorithms=_algorithms_from_args(args) or DEFAULT_ALGORITHMS,
        n_workers=args.n_workers,
        backend=args.backend,
        **_fleet_overrides(args),
    )


def _stop_rule_from_args(args):
    spec = getattr(args, "stop_on", None)
    if not spec:
        return None
    return parse_stopping_rule(spec)


def _telemetry_from_args(args) -> Optional[Telemetry]:
    """A journal-backed handle for this run, or ``None`` with --no-telemetry."""
    if getattr(args, "no_telemetry", False):
        return None
    return Telemetry.for_run_dir(args.run_dir)


class _StreamCallback:
    """--json-stream observer: snapshot events (and optional heartbeats).

    Events go through the service's :class:`~repro.service.stream.EventWriter`
    — the same writer the SSE endpoint uses — so a CLI stream and an HTTP
    stream of the same run are line-identical.  With ``--heartbeat S`` a
    :class:`~repro.service.stream.Heartbeat` shares the writer, emitting
    ``{"event": "heartbeat"}`` whenever S seconds pass without a snapshot.
    """

    def __init__(self, telemetry: Optional[Telemetry], heartbeat_seconds: float):
        from repro.service.stream import EventWriter, Heartbeat

        self._telemetry = telemetry
        # Live metric deltas ride along on each snapshot event: what the
        # counters/histograms accumulated since the previous event.
        self._last_state = telemetry.snapshot() if telemetry is not None else None
        self._writer = EventWriter(stream=sys.stdout)
        self._heartbeat = None
        if heartbeat_seconds:
            self._heartbeat = Heartbeat(self._writer.emit, heartbeat_seconds).start()

    def __call__(self, spec, algorithm, snapshot) -> None:
        payload = {"event": "snapshot", "task": spec.label(), **snapshot.to_dict()}
        if self._telemetry is not None:
            payload["metrics"] = self._telemetry.delta_since(self._last_state)
            self._last_state = self._telemetry.snapshot()
        if self._heartbeat is not None:
            self._heartbeat.touch()
        self._writer.emit(payload)

    def close(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.stop()


def _close_callback(callback) -> None:
    close = getattr(callback, "close", None)
    if close is not None:
        close()


def _snapshot_callback(args, telemetry: Optional[Telemetry] = None):
    """Per-chunk observer for --json-stream / --progress (None otherwise)."""
    if getattr(args, "json_stream", False):
        return _StreamCallback(telemetry, getattr(args, "heartbeat", 0.0))
    if getattr(args, "progress", False) and not getattr(args, "json", False):

        def emit(spec, algorithm, snapshot):
            max_ci = snapshot.max_ci95()
            extra = "" if max_ci is None else f", max-ci95 {max_ci:.4g}"
            marker = "done" if snapshot.done else f"chunk {snapshot.chunk_index}"
            print(
                f"  {spec.label()} × {algorithm}: {marker}, "
                f"{snapshot.evaluations} evaluations{extra}",
                file=sys.stderr,
            )

        return emit
    return None


def _emit_report(report, args) -> None:
    if getattr(args, "json_stream", False):
        print(json.dumps({"event": "report", **report.to_dict()}, sort_keys=True))


def _print_report(report: RunReport, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    done_rows = [row for row in report.rows if row.get("status") == "done"]
    if done_rows:
        print(
            format_table(
                done_rows,
                columns=[
                    "task",
                    "algorithm",
                    "time_s",
                    "evaluations",
                    "store_hits",
                    "error_l2",
                ],
                title=f"run: {report.run_dir}",
            )
        )
    for row in report.rows:
        if row.get("status") == "skipped":
            print(f"skipped {row['task']} × {row['algorithm']}: {row['reason']}")
    continued = (
        f", {report.cells_continued} continued mid-run" if report.cells_continued else ""
    )
    print(
        f"cells: {report.cells_run} run, {report.cells_resumed} resumed, "
        f"{report.cells_skipped} skipped{continued} "
        f"| fl_trainings: {report.fl_trainings} "
        f"| store_hits: {report.store_hits}"
    )
    accounting = report.accounting()
    batches = ", ".join(
        f"{backend}:{count}"
        for backend, count in sorted(accounting["batch_counts"].items())
    )
    print(
        f"accounting: {accounting['evaluations']} evaluations, "
        f"{accounting['store_hits']} store hits, "
        f"{accounting['cache_hits']} cache hits "
        f"(hit-rate {accounting['cache_hit_rate']:.1%})"
        + (f" | batches {batches}" if batches else "")
    )


def _algorithms_from_args(args) -> Optional[tuple]:
    if not args.algorithms:
        return None
    return tuple(name.strip() for name in args.algorithms.split(",") if name.strip())


def _cmd_run(args) -> int:
    if args.scenario:
        return _cmd_run_scenarios(args)
    plan = _plan_from_args(args)
    store = _open_store_arg(args)
    telemetry = _telemetry_from_args(args)
    quiet = args.json or args.json_stream
    callback = _snapshot_callback(args, telemetry)
    try:
        report = run_plan(
            plan,
            args.run_dir,
            store=store,
            resume=args.resume,
            log=None if quiet else lambda message: print(message, file=sys.stderr),
            stop_rule=_stop_rule_from_args(args),
            checkpoint_every=args.checkpoint_every,
            on_snapshot=callback,
            telemetry=telemetry,
        )
    finally:
        _close_callback(callback)
        if telemetry is not None:
            telemetry.close()
        if store is not None:
            store.close()
    if args.json_stream:
        _emit_report(report, args)
    else:
        _print_report(report, args.json)
    return 0


def _cmd_worker(args) -> int:
    """``repro worker QUEUE_DIR``: serve a fleet lease queue until told to stop."""
    from repro.fleet.worker import run_worker

    if not os.path.isdir(args.queue_dir):
        raise ValueError(
            f"queue directory {args.queue_dir!r} does not exist; start the "
            "coordinating run (repro run --backend fleet --queue-dir ...) "
            "first, or create the directory"
        )
    quiet = args.json
    stats = run_worker(
        args.queue_dir,
        backend=args.backend,
        n_workers=args.n_workers,
        lease_seconds=args.lease_seconds,
        poll_interval=args.poll_interval,
        max_batches=args.max_batches,
        idle_timeout=args.idle_timeout,
        stop_when_finished=args.stop_when_finished,
        log=None if quiet else lambda message: print(message, file=sys.stderr),
    )
    payload = {
        "worker_id": stats.worker_id,
        "batches": stats.batches,
        "trainings": stats.trainings,
        "store_hits": stats.store_hits,
        "released": stats.released,
        "renewals_lost": stats.renewals_lost,
        "runs_seen": stats.runs_seen,
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(
            f"worker {stats.worker_id}: {stats.batches} batches, "
            f"{stats.trainings} trainings, {stats.store_hits} store hits, "
            f"{stats.released} released"
        )
    return 0


def _cmd_run_scenarios(args) -> int:
    """``repro run --scenario a,b``: the robustness-harness face of ``run``."""
    if args.config:
        raise ValueError(
            "--scenario and --config are mutually exclusive; put scenario "
            "tasks into the config plan instead (kind='scenario')"
        )
    ignored = [
        flag
        for flag, value in (
            ("--task", args.task),
            ("--setup", args.setup),
            ("--n-clients", args.n_clients),
        )
        if value is not None
    ]
    if ignored:
        raise ValueError(
            f"{', '.join(ignored)} cannot be combined with --scenario: the "
            "scenario definition fixes the dataset, partition and client "
            "count (see `repro scenarios show <name>`)"
        )
    names = [name.strip() for name in args.scenario.split(",") if name.strip()]
    store = _open_store_arg(args)
    telemetry = _telemetry_from_args(args)
    quiet = args.json or args.json_stream
    callback = _snapshot_callback(args, telemetry)
    try:
        report = run_robustness(
            names,
            args.run_dir,
            algorithms=_algorithms_from_args(args),
            model=args.model,
            scale=args.scale,
            seed=args.seed,
            store=store,
            n_workers=args.n_workers,
            backend=args.backend,
            resume=args.resume,
            log=None if quiet else lambda message: print(message, file=sys.stderr),
            stop_rule=_stop_rule_from_args(args),
            checkpoint_every=args.checkpoint_every,
            on_snapshot=callback,
            telemetry=telemetry,
        )
    finally:
        _close_callback(callback)
        if telemetry is not None:
            telemetry.close()
        if store is not None:
            store.close()
    if args.json_stream:
        _emit_report(report, args)
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(robustness_table(report.rows, title=f"robustness: {args.run_dir}"))
    print(
        f"cells: {report.cells_run} run, {report.cells_resumed} resumed, "
        f"{report.cells_skipped} skipped | fl_trainings: {report.fl_trainings} "
        f"| store_hits: {report.store_hits}"
    )
    return 0


def _cmd_resume(args) -> int:
    store = _open_store_arg(args)
    telemetry = _telemetry_from_args(args)
    quiet = args.json or args.json_stream
    callback = _snapshot_callback(args, telemetry)
    try:
        report = resume_run(
            args.run_dir,
            store=store,
            log=None if quiet else lambda message: print(message, file=sys.stderr),
            stop_rule=_stop_rule_from_args(args),
            checkpoint_every=args.checkpoint_every,
            on_snapshot=callback,
            telemetry=telemetry,
        )
    finally:
        _close_callback(callback)
        if telemetry is not None:
            telemetry.close()
        if store is not None:
            store.close()
    if args.json_stream:
        _emit_report(report, args)
    else:
        _print_report(report, args.json)
    return 0


def _cmd_serve(args) -> int:
    """``repro serve STATE_DIR``: the valuation service (docs/service.md)."""
    from repro.service.scheduler import ValuationService
    from repro.service.server import serve as bind_server

    quiet = args.json
    service = ValuationService(
        args.state_dir,
        workers=args.workers,
        store_path=getattr(args, "store", None),
        store_backend=getattr(args, "store_backend", None),
        log=None if quiet else lambda message: print(message, file=sys.stderr),
    )
    server = bind_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    service.start()
    banner = {
        "event": "serving",
        "host": host,
        "port": port,
        "state_dir": args.state_dir,
        "workers": args.workers,
        "recovered": list(service.recovered_jobs),
    }
    # Always printed (and flushed) first, so scripts can scrape the bound
    # port even with --port 0.
    print(json.dumps(banner, sort_keys=True), flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass  # graceful shutdown below checkpoints + requeues running jobs
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


def _submit_spec_from_args(args) -> dict:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            return json.load(handle)
    task = args.task or "adult"
    task_payload = {
        "kind": task,
        "model": args.model,
        "n_clients": 3 if args.n_clients is None else args.n_clients,
        "scale": args.scale,
        "seed": args.seed,
    }
    if task == "synthetic":
        task_payload["setup"] = args.setup
    payload = {
        "task": task_payload,
        "algorithm": args.algorithm,
        "tenant": args.tenant,
        "priority": args.priority,
        "checkpoint_every": args.checkpoint_every,
    }
    if args.stop_on:
        payload["stop_on"] = args.stop_on
    if args.backend:
        payload["backend"] = args.backend
    if args.n_workers != 1:
        payload["n_workers"] = args.n_workers
    return payload


def _cmd_submit(args) -> int:
    """``repro submit``: POST one job to a running service."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    record = client.submit(_submit_spec_from_args(args))
    job_id = record["job_id"]
    if args.stream:
        for event in client.stream(job_id):
            print(json.dumps(event, sort_keys=True), flush=True)
        record = client.job(job_id)
    elif args.wait:
        record = client.wait(job_id)
    if args.json or args.stream:
        print(json.dumps(record, sort_keys=True))
    else:
        print(f"{job_id}: {record['status']} ({record['task']} × {record['algorithm']})")
    return 0 if record["status"] in ("queued", "running", "done") else 1


def _cmd_jobs(args) -> int:
    """``repro jobs``: list/inspect/cancel/stream jobs on a running service."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.cancel:
        if not args.job_id:
            raise ValueError("--cancel requires a job id")
        print(json.dumps(client.cancel(args.job_id), sort_keys=True))
        return 0
    if args.stream:
        if not args.job_id:
            raise ValueError("--stream requires a job id")
        for event in client.stream(args.job_id):
            print(json.dumps(event, sort_keys=True), flush=True)
        return 0
    if args.job_id:
        print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
        return 0
    records = client.jobs(tenant=args.tenant, status=args.status)
    if args.json:
        print(json.dumps({"jobs": records}, indent=2, sort_keys=True))
        return 0
    if not records:
        print("no jobs")
        return 0
    print(
        format_table(
            [
                {
                    "job": r["job_id"],
                    "status": r["status"],
                    "tenant": r["tenant"],
                    "priority": r["priority"],
                    "algorithm": r["algorithm"],
                    "task": r["task"],
                    "attempts": r["attempts"],
                    "preemptions": r["preemptions"],
                }
                for r in records
            ],
            columns=[
                "job",
                "status",
                "tenant",
                "priority",
                "algorithm",
                "task",
                "attempts",
                "preemptions",
            ],
            title=f"jobs: {args.url}",
        )
    )
    return 0


def _require_existing_store(args) -> None:
    """Inspection commands must not conjure a fresh store from a typo'd path."""
    if not os.path.exists(args.store):
        raise FileNotFoundError(f"no store at {args.store!r}")


def _cmd_store_stats(args) -> int:
    _require_existing_store(args)
    with _open_store_arg(args) as store:
        summary = store.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"backend:  {summary['backend']}")
    print(f"location: {summary['location']}")
    print(f"entries:  {summary['entries']}  ({summary['size_bytes']} bytes)")
    namespace_bytes = summary.get("namespace_bytes") or {}
    if summary["namespaces"]:
        width = max(len(namespace) for namespace in summary["namespaces"])
        for namespace, count in sorted(summary["namespaces"].items()):
            size = namespace_bytes.get(namespace)
            suffix = "" if size is None else f"  {size:>10} bytes"
            print(f"  {namespace:<{width}}  {count:>6} coalitions{suffix}")
    return 0


def _cmd_store_gc(args) -> int:
    _require_existing_store(args)
    with _open_store_arg(args) as store:
        result = store.gc(keep_namespace=args.keep_namespace)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"kept {result.kept} entries; dropped {result.dropped_corrupt} corrupt, "
        f"{result.dropped_duplicates} duplicate, "
        f"{result.dropped_namespaces} out-of-namespace"
    )
    return 0


def _span_node_to_dict(node) -> dict:
    """JSON shape of one reconstructed span (children nested)."""
    payload = {
        "name": node.name,
        "span": node.span_id,
        "start": node.start,
        "dur_s": node.duration,
        "status": node.status,
    }
    if node.attrs:
        payload["attrs"] = node.attrs
    if node.children:
        payload["children"] = [_span_node_to_dict(child) for child in node.children]
    return payload


def _cmd_trace(args) -> int:
    """``repro trace <run-dir>``: span tree + critical path from the journal."""
    from repro.telemetry.report import critical_path

    records = read_journal(args.run_dir)
    roots = build_span_tree(records)
    if args.json:
        payload = {
            "spans": [_span_node_to_dict(root) for root in roots],
            "critical_path": [
                {"name": node.name, "span": node.span_id, "dur_s": node.duration}
                for node in critical_path(roots)
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not roots:
        print("no spans recorded (run finished before any instrumented section?)")
        return 0
    print(render_trace(roots, max_children=args.max_children), end="")
    return 0


def _cmd_stats(args) -> int:
    """``repro stats <run-dir>``: metric summaries from the journal."""
    registry = load_metrics(read_journal(args.run_dir))
    if args.prometheus:
        print(prometheus_text(registry.to_dict()), end="")
        return 0
    if args.json:
        print(json.dumps(registry.summaries(), indent=2, sort_keys=True))
        return 0
    print(render_stats(registry), end="")
    return 0


def _cmd_list_tasks(args) -> int:
    payload = {
        "tasks": available_tasks(),
        "synthetic_setups": list(SYNTHETIC_SETUPS),
        "scales": list(_SCALE_NAMES),
        "algorithms": available_algorithms(),
        "default_algorithms": list(DEFAULT_ALGORITHMS),
        "scenarios": available_scenarios(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("task kinds:      " + ", ".join(payload["tasks"]))
    print("synthetic setups:" + "".join(f"\n  {s}" for s in payload["synthetic_setups"]))
    print("scales:          " + ", ".join(payload["scales"]))
    print("algorithms:      " + ", ".join(payload["algorithms"]))
    print("defaults:        " + ", ".join(payload["default_algorithms"]))
    print("scenarios:       " + ", ".join(payload["scenarios"]))
    return 0


def _cmd_scenarios_list(args) -> int:
    names = available_scenarios()
    if args.json:
        payload = {
            name: {
                "summary": get_scenario(name).summary(),
                "description": get_scenario(name).description,
            }
            for name in names
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    width = max((len(name) for name in names), default=0)
    for name in names:
        print(f"{name.ljust(width)}  {get_scenario(name).summary()}")
    return 0


def _cmd_scenarios_show(args) -> int:
    scenario = get_scenario(args.name)
    if args.json:
        print(json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"name:        {scenario.name}")
    print(f"description: {scenario.description or '-'}")
    print(f"base:        {scenario.summary()}")
    layout = scenario.layout()
    print(f"clients:     {layout.base_clients} base -> {layout.n_clients} total")
    print(f"adversaries: {list(layout.adversaries) or '-'}")
    if layout.roles:
        for client, role in sorted(layout.roles.items()):
            print(f"  client {client}: {role}")
    return 0


def _cmd_check(args) -> int:
    """``repro check``: the contract checker (see repro.analysis)."""
    from pathlib import Path

    from repro.analysis import RULES, check_paths, write_baseline

    if args.list_rules:
        rules = [RULES[code] for code in sorted(RULES)]
        if args.json:
            payload = {
                rule.code: {"name": rule.name, "summary": rule.summary}
                for rule in rules
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    if args.write_baseline and not args.baseline:
        raise ValueError("--write-baseline requires --baseline FILE")
    select = None if not args.select else args.select.split(",")
    ignore = None if not args.ignore else args.ignore.split(",")
    if args.write_baseline:
        report = check_paths(
            [Path(p) for p in args.paths], select=select, ignore=ignore
        )
        write_baseline(report.findings, Path(args.baseline))
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0
    report = check_paths(
        [Path(p) for p in args.paths],
        select=select,
        ignore=ignore,
        baseline=None if not args.baseline else Path(args.baseline),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return report.exit_code
    for finding in report.findings:
        print(finding.format())
    suppressed = report.suppressed_by_pragma + report.suppressed_by_baseline
    suffix = f" ({suppressed} suppressed)" if suppressed else ""
    print(
        f"repro check: {len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s){suffix}",
        file=sys.stderr,
    )
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "list-tasks": _cmd_list_tasks,
        "check": _cmd_check,
    }
    try:
        if args.command == "store":
            handler = {"stats": _cmd_store_stats, "gc": _cmd_store_gc}[args.store_command]
            return handler(args)
        if args.command == "scenarios":
            handler = {
                "list": _cmd_scenarios_list,
                "show": _cmd_scenarios_show,
            }[args.scenarios_command]
            return handler(args)
        return handlers[args.command](args)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
