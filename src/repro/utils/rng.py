"""Deterministic random-number handling.

Every stochastic component in the library (dataset generation, partitioning,
model initialisation, FL client ordering, sampling-based valuation) accepts a
seed or an already-constructed :class:`numpy.random.Generator`.  These helpers
normalise the two and derive independent child generators so experiments are
reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def RandomState(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    ``None`` produces an OS-seeded generator (non-deterministic); an ``int``
    produces a deterministic generator; an existing generator is returned
    unchanged so that callers can thread a single stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from a generator."""
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def fixed_rng(seed: Optional[int] = 0) -> np.random.Generator:
    """Convenience constructor used by tests: always deterministic."""
    return np.random.default_rng(0 if seed is None else seed)
