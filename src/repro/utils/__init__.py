"""Shared utilities: coalition combinatorics, caching, RNG control and timing.

These helpers are intentionally free of any federated-learning or valuation
logic so that every other subpackage (``repro.core``, ``repro.fl``,
``repro.datasets``, ``repro.experiments``) can depend on them without creating
import cycles.
"""

from repro.utils.combinatorics import (
    all_coalitions,
    coalition_key,
    coalitions_of_size,
    count_coalitions_up_to,
    marginal_coefficient,
    max_fully_enumerable_size,
    n_choose_k,
    random_coalition,
    random_coalition_of_size,
    random_permutation,
)
from repro.utils.cache import UtilityCache
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_client_count,
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "all_coalitions",
    "coalition_key",
    "coalitions_of_size",
    "count_coalitions_up_to",
    "marginal_coefficient",
    "max_fully_enumerable_size",
    "n_choose_k",
    "random_coalition",
    "random_coalition_of_size",
    "random_permutation",
    "UtilityCache",
    "RandomState",
    "spawn_rng",
    "Timer",
    "check_client_count",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]
