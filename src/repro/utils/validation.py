"""Lightweight argument validation shared across subpackages.

Raising early with a clear message keeps the valuation and FL code free of
repetitive ``if``-checks and gives callers actionable errors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(value: float, name: str, inclusive: bool = True) -> float:
    """Require ``value`` to lie in [0, 1] (or (0, 1) when not inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must lie in (0, 1), got {value}")
    return value


def check_client_count(n_clients: int, minimum: int = 1) -> int:
    """Require a sensible number of FL clients."""
    if not isinstance(n_clients, (int, np.integer)):
        raise TypeError(f"n_clients must be an integer, got {type(n_clients)!r}")
    if n_clients < minimum:
        raise ValueError(f"n_clients must be >= {minimum}, got {n_clients}")
    return int(n_clients)


def check_probability_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Require a non-negative vector summing to one (within tolerance)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    total = arr.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return arr


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Require two sized containers to have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} vs {len(b)})"
        )
