"""Coalition combinatorics used by every Shapley-value computation scheme.

Throughout the library a *coalition* is represented as a ``frozenset`` of
zero-based client indices.  The helpers here enumerate coalitions, sample
coalitions uniformly from a stratum (all coalitions of a given size), and
compute the combinatorial coefficients that appear in the MC-SV and CC-SV
definitions (Def. 3 and Def. 4 of the paper).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, Sequence

import numpy as np

Coalition = frozenset


def coalition_key(members: Iterable[int]) -> frozenset:
    """Return the canonical (hashable) representation of a coalition."""
    return frozenset(int(m) for m in members)


def n_choose_k(n: int, k: int) -> int:
    """Binomial coefficient C(n, k); zero outside the valid range."""
    if k < 0 or k > n or n < 0:
        return 0
    return math.comb(n, k)


def marginal_coefficient(n: int, coalition_size: int) -> float:
    """Weight of a single marginal contribution in the exact MC-SV.

    For a coalition ``S`` not containing client ``i`` the MC-SV definition
    (Def. 3) weights ``U(S ∪ {i}) − U(S)`` by ``1 / (n · C(n−1, |S|))``.
    """
    if n <= 0:
        raise ValueError(f"number of clients must be positive, got {n}")
    if coalition_size < 0 or coalition_size > n - 1:
        raise ValueError(
            f"coalition size must lie in [0, {n - 1}], got {coalition_size}"
        )
    return 1.0 / (n * n_choose_k(n - 1, coalition_size))


def all_coalitions(n: int, include_empty: bool = True) -> Iterator[frozenset]:
    """Yield every coalition of ``n`` clients in size order.

    The number of coalitions is ``2**n``; callers are expected to keep ``n``
    small (exact Shapley computation is only feasible for roughly n <= 15).
    """
    start = 0 if include_empty else 1
    clients = range(n)
    for size in range(start, n + 1):
        for combo in itertools.combinations(clients, size):
            yield frozenset(combo)


def coalitions_of_size(n: int, size: int) -> Iterator[frozenset]:
    """Yield every coalition of exactly ``size`` clients out of ``n``."""
    if size < 0 or size > n:
        return iter(())
    return (frozenset(c) for c in itertools.combinations(range(n), size))


def unrank_combination(n: int, k: int, rank: int) -> frozenset:
    """The ``rank``-th size-``k`` subset of ``range(n)`` in lexicographic order.

    Ranks follow the combinatorial number system and match the enumeration
    order of ``itertools.combinations(range(n), k)`` (hence of
    :func:`coalitions_of_size`):  ``unrank_combination(n, k, r)`` equals the
    ``r``-th element of that stream, computed in ``O(n)`` without enumerating
    the ``C(n, k)`` predecessors.  This is what lets a sampler draw from a
    stratum of astronomically many coalitions while allocating only the
    coalitions it actually returns.
    """
    total = n_choose_k(n, k)
    if rank < 0 or rank >= total:
        raise ValueError(
            f"rank must lie in [0, C({n},{k})={total}), got {rank}"
        )
    members: list[int] = []
    remaining = k
    candidate = 0
    while remaining > 0:
        with_candidate = n_choose_k(n - candidate - 1, remaining - 1)
        if rank < with_candidate:
            members.append(candidate)
            remaining -= 1
        else:
            rank -= with_candidate
        candidate += 1
    return frozenset(members)


#: strata at most this large draw sample *ranks* in one vectorised
#: ``rng.choice(total, replace=False)`` call; larger strata use rejection
#: sampling on coalitions so nothing C(n, k)-shaped is ever allocated
SAMPLING_ENUMERATION_LIMIT = 4096


def sample_coalitions_of_size(
    n: int,
    k: int,
    rng: np.random.Generator,
    count: int,
):
    """Sample ``count`` coalitions of exactly ``k`` clients uniformly.

    Memory is ``O(count)`` regardless of how large the stratum is — the
    2^n-shaped coalition list is never materialised:

    * ``count >= C(n, k)`` — the whole stratum, enumerated lazily into a list
      (no RNG consumed: every coalition is in the sample).
    * stratum of at most :data:`SAMPLING_ENUMERATION_LIMIT` coalitions —
      ``count`` distinct *ranks* are drawn without replacement in one
      ``rng.choice`` call and unranked lexicographically
      (:func:`unrank_combination`).
    * larger strata — rejection-sampled without replacement, one
      :func:`random_coalition_of_size` draw per attempt; duplicates are
      vanishingly rare at any budget that could actually be *evaluated*
      (each sampled coalition costs one FL training), so the expected number
      of draws stays within a whisker of ``count``.

    Returns a list of ``frozenset`` coalitions without replacement; ordering
    is deterministic given the RNG state (lexicographic-rank order on the
    vectorised path, draw order on the rejection path).
    """
    if k < 0 or k > n:
        raise ValueError(f"coalition size must lie in [0, {n}], got {k}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    total = n_choose_k(n, k)
    if count >= total:
        return list(coalitions_of_size(n, k))
    if total <= SAMPLING_ENUMERATION_LIMIT:
        picks = rng.choice(total, size=count, replace=False)
        return [unrank_combination(n, k, int(rank)) for rank in picks]
    chosen: dict[frozenset, None] = {}
    while len(chosen) < count:
        chosen.setdefault(random_coalition_of_size(n, k, rng), None)
    return list(chosen)


def count_coalitions_up_to(n: int, max_size: int) -> int:
    """Number of coalitions with at most ``max_size`` members (including ∅)."""
    max_size = min(max_size, n)
    return sum(n_choose_k(n, k) for k in range(0, max_size + 1))


def max_fully_enumerable_size(n: int, budget: int) -> int:
    """Largest ``k*`` such that all coalitions of size ≤ k* fit in ``budget``.

    This is line 1 of Alg. 3 (IPSS): ``k* = max{k : sum_{j<=k} C(n, j) <= γ}``.
    Returns ``-1`` when even the empty coalition does not fit (budget < 1).
    """
    if budget < 1:
        return -1
    total = 0
    k_star = -1
    for k in range(0, n + 1):
        total += n_choose_k(n, k)
        if total <= budget:
            k_star = k
        else:
            break
    return k_star


def random_coalition(
    n: int,
    rng: np.random.Generator,
    exclude: Iterable[int] | None = None,
) -> frozenset:
    """Sample a coalition uniformly from all subsets of the eligible clients."""
    excluded = set(exclude) if exclude is not None else set()
    eligible = [i for i in range(n) if i not in excluded]
    mask = rng.random(len(eligible)) < 0.5
    return frozenset(c for c, keep in zip(eligible, mask) if keep)


def random_coalition_of_size(
    n: int,
    size: int,
    rng: np.random.Generator,
    exclude: Iterable[int] | None = None,
) -> frozenset:
    """Sample a coalition of exactly ``size`` clients uniformly at random."""
    excluded = set(exclude) if exclude is not None else set()
    eligible = [i for i in range(n) if i not in excluded]
    if size > len(eligible):
        raise ValueError(
            f"cannot sample coalition of size {size} from {len(eligible)} clients"
        )
    chosen = rng.choice(len(eligible), size=size, replace=False)
    return frozenset(eligible[int(i)] for i in chosen)


def random_permutation(n: int, rng: np.random.Generator) -> tuple[int, ...]:
    """Sample a uniformly random permutation of the ``n`` clients."""
    return tuple(int(i) for i in rng.permutation(n))


def predecessors_in_permutation(
    permutation: Sequence[int], client: int
) -> frozenset:
    """Clients that appear before ``client`` in ``permutation``.

    Used by permutation-based Shapley estimators (Perm-Shapley, Extended-TMC):
    the marginal contribution of ``client`` under a permutation π is
    ``U(pred ∪ {client}) − U(pred)``.
    """
    preds: list[int] = []
    for member in permutation:
        if member == client:
            return frozenset(preds)
        preds.append(member)
    raise ValueError(f"client {client} does not appear in the permutation")


def stratum_sizes(n: int) -> list[int]:
    """Number of coalitions in each stratum k = 0..n for ``n`` clients."""
    return [n_choose_k(n, k) for k in range(n + 1)]


def balanced_coalitions_of_size(
    n: int,
    size: int,
    budget: int,
    rng: np.random.Generator,
) -> list[frozenset]:
    """Sample up to ``budget`` distinct coalitions of ``size`` clients such that
    every client appears (as close as possible to) equally often.

    This realises constraint (3) of Alg. 3: ``∀ i, j ∈ N, C_i = C_j`` where
    ``C_k`` counts the sampled coalitions containing client ``k``.  Each new
    coalition greedily takes the ``size`` clients with the lowest appearance
    count so far (random tie-breaking); duplicates are escaped by re-drawing
    with probabilities that still favour under-represented clients, so counts
    stay within one of each other except in heavily constrained corner cases.
    """
    if size <= 0 or size > n or budget <= 0:
        return []
    total_available = n_choose_k(n, size)
    if budget >= total_available:
        return list(coalitions_of_size(n, size))

    counts = np.zeros(n, dtype=float)
    chosen: list[frozenset] = []
    seen: set[frozenset] = set()
    while len(chosen) < budget:
        # Greedy pick: the `size` least-used clients, random tie-breaking.
        jitter = rng.random(n)
        order = np.lexsort((jitter, counts))
        members = frozenset(int(c) for c in order[:size])
        if members in seen:
            # Escape duplicates by weighted sampling that still favours
            # under-represented clients.
            members = None
            for _ in range(20):
                weights = counts.max() - counts + 1.0
                weights = weights / weights.sum()
                draw = rng.choice(n, size=size, replace=False, p=weights)
                candidate = frozenset(int(c) for c in draw)
                if candidate not in seen:
                    members = candidate
                    break
            if members is None:
                break
        seen.add(members)
        chosen.append(members)
        for member in members:
            counts[member] += 1
    return chosen


def client_appearance_counts(
    coalitions: Iterable[frozenset], n: int
) -> np.ndarray:
    """Count how many of the given coalitions contain each client."""
    counts = np.zeros(n, dtype=int)
    for coalition in coalitions:
        for member in coalition:
            counts[member] += 1
    return counts
