"""Coalition-utility cache.

Training an FL model for a coalition is by far the dominant cost of every
valuation algorithm (the paper denotes it τ).  The cache memoises the utility
``U(M_S)`` per coalition so that algorithms which revisit the same coalition
(e.g. MC-SV visits ``S`` and ``S ∪ {i}`` for many ``i``) pay the cost once.

The cache also counts hits, misses and evaluations, which the experiment
harness uses as a hardware-independent cost model (number of FL trainings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional


@dataclass
class CacheStats:
    """Counters describing how a :class:`UtilityCache` was used."""

    hits: int = 0
    misses: int = 0

    @property
    def evaluations(self) -> int:
        """Number of distinct coalition evaluations actually performed."""
        return self.misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class UtilityCache:
    """Memoises ``coalition -> utility`` lookups around an evaluator callable.

    Parameters
    ----------
    evaluator:
        Callable mapping a coalition (``frozenset`` of client indices) to the
        utility of the FL model trained on that coalition.
    max_size:
        Optional bound on the number of cached entries.  ``None`` (default)
        keeps everything, which is appropriate because the number of distinct
        coalitions evaluated by any approximation algorithm is small.
    """

    evaluator: Callable[[frozenset], float]
    max_size: Optional[int] = None
    _store: Dict[frozenset, float] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def __call__(self, coalition: Iterable[int]) -> float:
        return self.utility(coalition)

    def utility(self, coalition: Iterable[int]) -> float:
        """Return ``U(M_S)``, evaluating and caching on first use."""
        key = frozenset(int(c) for c in coalition)
        if key in self._store:
            self.stats.hits += 1
            return self._store[key]
        value = float(self.evaluator(key))
        self.stats.misses += 1
        if self.max_size is not None and len(self._store) >= self.max_size:
            # Drop the oldest entry; insertion order is preserved by dict.
            oldest = next(iter(self._store))
            del self._store[oldest]
        self._store[key] = value
        return value

    def prefetch(self, coalitions: Iterable[Iterable[int]]) -> None:
        """Evaluate (and cache) a batch of coalitions."""
        for coalition in coalitions:
            self.utility(coalition)

    def contains(self, coalition: Iterable[int]) -> bool:
        return frozenset(int(c) for c in coalition) in self._store

    def peek(self, coalition: Iterable[int]) -> Optional[float]:
        """Return a cached utility without triggering evaluation."""
        return self._store.get(frozenset(int(c) for c in coalition))

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def evaluations(self) -> int:
        """Number of FL trainings performed through this cache."""
        return self.stats.evaluations
