"""Coalition-utility cache.

Training an FL model for a coalition is by far the dominant cost of every
valuation algorithm (the paper denotes it τ).  The cache memoises the utility
``U(M_S)`` per coalition so that algorithms which revisit the same coalition
(e.g. MC-SV visits ``S`` and ``S ∪ {i}`` for many ``i``) pay the cost once.

The cache also counts hits, misses and evaluations, which the experiment
harness uses as a hardware-independent cost model (number of FL trainings).

Concurrency
-----------
The cache is safe to share between threads: store and counters are guarded by
a lock, and concurrent first lookups of the *same* coalition are single-flight
(one thread evaluates, the others wait for the result), so a coalition is
never trained twice just because two workers raced on it.  This is the
foundation the :mod:`repro.parallel` batch-evaluation engine builds on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

#: sentinel distinguishing "absent" from a cached value
_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing how a :class:`UtilityCache` was used."""

    hits: int = 0
    misses: int = 0

    @property
    def evaluations(self) -> int:
        """Number of evaluator calls actually performed.

        Every miss triggers one evaluation.  Note that with a bounded
        ``max_size`` a coalition evicted and later revisited is *re-evaluated*
        and counts again — this counter models total FL-training cost, not the
        number of distinct coalitions ever seen.
        """
        return self.misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class UtilityCache:
    """Memoises ``coalition -> utility`` lookups around an evaluator callable.

    Parameters
    ----------
    evaluator:
        Callable mapping a coalition (``frozenset`` of client indices) to the
        utility of the FL model trained on that coalition.
    max_size:
        Optional bound on the number of cached entries.  ``None`` (default)
        keeps everything, which is appropriate because the number of distinct
        coalitions evaluated by any approximation algorithm is small.
    """

    evaluator: Callable[[frozenset], float]
    max_size: Optional[int] = None
    _store: Dict[frozenset, float] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _in_flight: Dict[frozenset, threading.Event] = field(
        default_factory=dict, repr=False
    )

    def __call__(self, coalition: Iterable[int]) -> float:
        return self.utility(coalition)

    def utility(self, coalition: Iterable[int]) -> float:
        """Return ``U(M_S)``, evaluating and caching on first use.

        Thread-safe and single-flight: when several threads miss on the same
        coalition simultaneously, exactly one evaluates while the others block
        until the value lands in the store.
        """
        key = frozenset(int(c) for c in coalition)
        while True:
            with self._lock:
                cached = self._store.get(key, _MISSING)
                if cached is not _MISSING:
                    self.stats.hits += 1
                    return cached
                event = self._in_flight.get(key)
                if event is None:
                    event = threading.Event()
                    self._in_flight[key] = event
                    break  # this thread owns the evaluation
            # Another thread is evaluating this coalition: wait and retry
            # (retry rather than read directly, in case of eviction/failure).
            event.wait()
        try:
            value = float(self.evaluator(key))
        except BaseException:
            with self._lock:
                del self._in_flight[key]
            event.set()
            raise
        with self._lock:
            self._insert(key, value)
            del self._in_flight[key]
        event.set()
        return value

    def _insert(self, key: frozenset, value: float) -> None:
        """Record a miss and store the value; caller must hold the lock.

        Re-inserting a key that is already cached (e.g. two overlapping
        process-backend batches both depositing the same coalition) only
        refreshes the value: it must not evict an unrelated entry from a
        full cache nor inflate the miss counter.
        """
        if key in self._store:
            self._store[key] = value
            return
        self.stats.misses += 1
        if self.max_size is not None and len(self._store) >= self.max_size:
            # Drop the oldest entry; insertion order is preserved by dict.
            oldest = next(iter(self._store))
            del self._store[oldest]
        self._store[key] = value

    def lookup(self, coalition: Iterable[int]) -> Optional[float]:
        """Return the cached utility, counting a hit — or ``None`` if absent.

        Unlike :meth:`peek` this participates in hit accounting; it is the
        read half of the ``lookup``/``store`` pair used by batch evaluators
        that compute misses externally (e.g. in a process pool).
        """
        key = frozenset(int(c) for c in coalition)
        with self._lock:
            cached = self._store.get(key, _MISSING)
            if cached is _MISSING:
                return None
            self.stats.hits += 1
            return cached

    def store(self, coalition: Iterable[int], value: float) -> float:
        """Insert an externally computed utility, counting it as a miss.

        The write half of the ``lookup``/``store`` pair: a batch evaluator
        that trained the coalition elsewhere (another process, a remote
        worker) deposits the result here so later lookups hit.
        """
        key = frozenset(int(c) for c in coalition)
        with self._lock:
            self._insert(key, float(value))
        return float(value)

    def prefetch(self, coalitions: Iterable[Iterable[int]]) -> None:
        """Evaluate (and cache) a batch of coalitions."""
        for coalition in coalitions:
            self.utility(coalition)

    def contains(self, coalition: Iterable[int]) -> bool:
        with self._lock:
            return frozenset(int(c) for c in coalition) in self._store

    def peek(self, coalition: Iterable[int]) -> Optional[float]:
        """Return a cached utility without triggering evaluation or counting."""
        with self._lock:
            return self._store.get(frozenset(int(c) for c in coalition))

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def evaluations(self) -> int:
        """Number of FL trainings performed through this cache.

        Counts evaluator calls: a coalition evicted from a bounded cache and
        evaluated again counts twice (see :attr:`CacheStats.evaluations`).
        """
        return self.stats.evaluations
