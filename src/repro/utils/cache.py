"""Coalition-utility cache.

Training an FL model for a coalition is by far the dominant cost of every
valuation algorithm (the paper denotes it τ).  The cache memoises the utility
``U(M_S)`` per coalition so that algorithms which revisit the same coalition
(e.g. MC-SV visits ``S`` and ``S ∪ {i}`` for many ``i``) pay the cost once.

The cache also counts hits, misses and evaluations, which the experiment
harness uses as a hardware-independent cost model (number of FL trainings).

Concurrency
-----------
The cache is safe to share between threads: store and counters are guarded by
a lock, and concurrent first lookups of the *same* coalition are single-flight
(one thread evaluates, the others wait for the result), so a coalition is
never trained twice just because two workers raced on it.  This is the
foundation the :mod:`repro.parallel` batch-evaluation engine builds on.

Persistence
-----------
The cache optionally sits on top of a persistent, content-addressed
:class:`~repro.store.UtilityStore` (see :meth:`UtilityCache.attach_store`):
memory misses consult the disk tier before evaluating, and freshly evaluated
values are written through.  A persistent hit costs zero FL trainings and is
counted separately (``stats.store_hits``) — the ``evaluations`` cost model
still reports only genuine evaluator calls, which is what lets a resumed
benchmark campaign report exactly how much training it actually re-paid.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import UtilityStore
    from repro.telemetry import Telemetry

#: sentinel distinguishing "absent" from a cached value
_MISSING = object()


@dataclass
class CacheStats:
    """Counters describing how a :class:`UtilityCache` was used."""

    hits: int = 0
    misses: int = 0
    store_hits: int = 0

    @property
    def evaluations(self) -> int:
        """Number of evaluator calls actually performed.

        Every miss triggers one evaluation.  Note that with a bounded
        ``max_size`` a coalition evicted and later revisited is *re-evaluated*
        and counts again — this counter models total FL-training cost, not the
        number of distinct coalitions ever seen.  Hits served by a persistent
        store tier (``store_hits``) perform no evaluation and are not misses.
        """
        return self.misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.store_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without an evaluation (either tier)."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.store_hits) / self.lookups


@dataclass
class UtilityCache:
    """Memoises ``coalition -> utility`` lookups around an evaluator callable.

    Parameters
    ----------
    evaluator:
        Callable mapping a coalition (``frozenset`` of client indices) to the
        utility of the FL model trained on that coalition.
    max_size:
        Optional bound on the number of cached entries.  ``None`` (default)
        keeps everything, which is appropriate because the number of distinct
        coalitions evaluated by any approximation algorithm is small.
    persistent:
        Optional :class:`~repro.store.UtilityStore` disk tier consulted on
        memory misses and written through on evaluation (see
        :meth:`attach_store`).
    namespace:
        Content-address namespace (a task fingerprint) under which this
        cache's coalitions are keyed in the persistent tier.
    """

    evaluator: Callable[[frozenset], float]
    max_size: Optional[int] = None
    persistent: Optional["UtilityStore"] = None
    namespace: str = "default"
    telemetry: Optional["Telemetry"] = field(default=None, repr=False)
    _store: Dict[frozenset, float] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _in_flight: Dict[frozenset, threading.Event] = field(
        default_factory=dict, repr=False
    )

    def attach_store(
        self, persistent: Optional["UtilityStore"], namespace: Optional[str] = None
    ) -> None:
        """Plug a persistent tier beneath the in-memory cache.

        The namespace must fingerprint *everything* that determines the
        utility (task spec, FL config, model, seed) — see
        :func:`repro.experiments.tasks.task_fingerprint` — otherwise two
        different tasks would alias each other's training results.
        """
        with self._lock:
            self.persistent = persistent
            if namespace is not None:
                self.namespace = namespace

    def set_telemetry(self, telemetry: Optional["Telemetry"]) -> None:
        """Attach (or detach with ``None``) the telemetry handle.

        Telemetry observes lookups and evaluation latency only — it never
        influences keys, values or eviction, so attaching it cannot change
        what any caller computes (the fingerprint-neutrality contract).
        """
        with self._lock:
            self.telemetry = telemetry

    def _persistent_key(self, key: frozenset) -> str:
        from repro.store.fingerprint import utility_key

        return utility_key(self.namespace, key)

    def _persistent_get(self, key: frozenset) -> Optional[float]:
        if self.persistent is None:
            return None
        return self.persistent.get(self._persistent_key(key))

    def _persistent_put(self, key: frozenset, value: float) -> None:
        if self.persistent is not None:
            self.persistent.put(self._persistent_key(key), value)

    def __call__(self, coalition: Iterable[int]) -> float:
        return self.utility(coalition)

    def utility(self, coalition: Iterable[int]) -> float:
        """Return ``U(M_S)``, evaluating and caching on first use.

        Thread-safe and single-flight: when several threads miss on the same
        coalition simultaneously, exactly one evaluates while the others block
        until the value lands in the store.
        """
        key = frozenset(int(c) for c in coalition)
        while True:
            with self._lock:
                cached = self._store.get(key, _MISSING)
                if cached is not _MISSING:
                    self.stats.hits += 1
                    if self.telemetry is not None:
                        self.telemetry.count("cache.hit")
                    return cached
                event = self._in_flight.get(key)
                if event is None:
                    event = threading.Event()
                    self._in_flight[key] = event
                    break  # this thread owns the evaluation
            # Another thread is evaluating this coalition: wait and retry
            # (retry rather than read directly, in case of eviction/failure).
            event.wait()
        try:
            stored = self._persistent_get(key)
            if stored is not None:
                # Disk-tier hit: no evaluation happened, so it is neither a
                # hit (memory) nor a miss (evaluator call) — it has its own
                # counter and is promoted into the memory tier for free.
                with self._lock:
                    self.stats.store_hits += 1
                    if self.telemetry is not None:
                        self.telemetry.count("store.hit")
                    self._insert(key, stored, count_miss=False)
                    del self._in_flight[key]
                event.set()
                return stored
            if self.telemetry is not None:
                if self.persistent is not None:
                    self.telemetry.count("store.miss")
                t0 = time.perf_counter()
                value = float(self.evaluator(key))
                self.telemetry.observe("utility.eval_seconds", time.perf_counter() - t0)
            else:
                value = float(self.evaluator(key))
            # Inside the try: a failing store write (disk full, lock timeout)
            # must still release the in-flight entry, or every later lookup
            # of this coalition would block forever on the unset event.
            self._persistent_put(key, value)
        except BaseException:
            with self._lock:
                del self._in_flight[key]
            event.set()
            raise
        with self._lock:
            self._insert(key, value)
            del self._in_flight[key]
        event.set()
        return value

    def _insert(self, key: frozenset, value: float, count_miss: bool = True) -> None:
        """Record a miss and store the value; caller must hold the lock.

        Re-inserting a key that is already cached (e.g. two overlapping
        process-backend batches both depositing the same coalition) only
        refreshes the value: it must not evict an unrelated entry from a
        full cache nor inflate the miss counter.  ``count_miss=False`` is the
        promotion path for values served by the persistent tier, which cost
        no evaluation.
        """
        if key in self._store:
            self._store[key] = value
            return
        if count_miss:
            self.stats.misses += 1
        if self.max_size is not None and len(self._store) >= self.max_size:
            # Drop the oldest entry; insertion order is preserved by dict.
            oldest = next(iter(self._store))
            del self._store[oldest]
        self._store[key] = value

    def lookup(self, coalition: Iterable[int]) -> Optional[float]:
        """Return the cached utility, counting a hit — or ``None`` if absent.

        Unlike :meth:`peek` this participates in hit accounting; it is the
        read half of the ``lookup``/``store`` pair used by batch evaluators
        that compute misses externally (e.g. in a process pool).
        """
        key = frozenset(int(c) for c in coalition)
        with self._lock:
            cached = self._store.get(key, _MISSING)
            if cached is not _MISSING:
                self.stats.hits += 1
                if self.telemetry is not None:
                    self.telemetry.count("cache.hit")
                return cached
        stored = self._persistent_get(key)
        if stored is None:
            if self.telemetry is not None and self.persistent is not None:
                self.telemetry.count("store.miss")
            return None
        with self._lock:
            self.stats.store_hits += 1
            if self.telemetry is not None:
                self.telemetry.count("store.hit")
            self._insert(key, stored, count_miss=False)
        return stored

    def store(self, coalition: Iterable[int], value: float) -> float:
        """Insert an externally computed utility, counting it as a miss.

        The write half of the ``lookup``/``store`` pair: a batch evaluator
        that trained the coalition elsewhere (another process, a remote
        worker) deposits the result here so later lookups hit.  The value is
        written through to the persistent tier, so the external training is
        never repeated by any process sharing the store.
        """
        key = frozenset(int(c) for c in coalition)
        self._persistent_put(key, float(value))
        with self._lock:
            self._insert(key, float(value))
        return float(value)

    def prefetch(self, coalitions: Iterable[Iterable[int]]) -> None:
        """Evaluate (and cache) a batch of coalitions."""
        for coalition in coalitions:
            self.utility(coalition)

    def contains(self, coalition: Iterable[int]) -> bool:
        with self._lock:
            return frozenset(int(c) for c in coalition) in self._store

    def peek(self, coalition: Iterable[int]) -> Optional[float]:
        """Return a cached utility without triggering evaluation or counting."""
        with self._lock:
            return self._store.get(frozenset(int(c) for c in coalition))

    def clear(self) -> None:
        """Drop the in-memory tier and reset counters.

        The persistent tier is deliberately left untouched: clearing is how
        the experiment runner isolates per-algorithm cost accounting, not a
        request to forget training results (use ``persistent.gc()`` for
        that).  With a store attached, cleared entries therefore reload as
        ``store_hits`` rather than re-evaluations.
        """
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def evaluations(self) -> int:
        """Number of FL trainings performed through this cache.

        Counts evaluator calls: a coalition evicted from a bounded cache and
        evaluated again counts twice (see :attr:`CacheStats.evaluations`).
        Values served by the persistent tier do not count — they cost no
        training.
        """
        return self.stats.evaluations

    @property
    def store_hits(self) -> int:
        """Number of lookups served by the persistent disk tier."""
        return self.stats.store_hits
