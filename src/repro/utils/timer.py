"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    _start: Optional[float] = None
    _elapsed: float = 0.0
    laps: list = field(default_factory=list)

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def lap(self, label: str = "") -> float:
        """Record an intermediate elapsed value without stopping the timer."""
        current = self.elapsed
        self.laps.append((label, current))
        return current

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds (live value while running)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0
        self.laps = []
