"""Coalition-level federated training.

:class:`FederatedTrainer` is the bridge between the valuation layer and the FL
substrate: given the per-client datasets and a model factory it can train an
FL model for *any* coalition ``S ⊆ N`` and report its utility on the test
set.  Parametric models are trained with the federated loop (FedAvg/FedProx/
FedSGD); non-parametric models (the XGBoost stand-in) are trained centrally on
the coalition's pooled data, mirroring the paper's remark that gradient-based
federation does not apply to tree models.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional, Sequence

from repro.datasets.base import Dataset
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.history import TrainingHistory
from repro.fl.server import FLServer
from repro.models.base import Model, ParametricModel
from repro.utils.rng import RandomState, SeedLike, derive_seed

ModelFactory = Callable[[], Model]


def train_federated(
    model: ParametricModel,
    client_datasets: Sequence[Dataset],
    config: Optional[FLConfig] = None,
    seed: SeedLike = None,
) -> tuple[ParametricModel, Optional[TrainingHistory]]:
    """Convenience wrapper: train one FL model across the given client datasets."""
    clients = [FLClient(i, dataset) for i, dataset in enumerate(client_datasets)]
    server = FLServer(model, clients, config)
    trained = server.train(seed=seed)
    return trained, server.history


class FederatedTrainer:
    """Trains FL models for arbitrary coalitions of a fixed set of clients.

    Parameters
    ----------
    client_datasets:
        One dataset per FL client; the client's index is its id.
    test_dataset:
        Held-out data on which coalition models are evaluated.
    model_factory:
        Zero-argument callable returning a fresh, unfitted model.
    config:
        Federated-training hyperparameters (ignored for non-parametric models).
    seed:
        Base seed; each coalition derives a deterministic seed from it so the
        same coalition always produces the same model.
    client_dropout:
        Optional per-client straggler probabilities (one entry per client,
        each in ``[0, 1]``): in every round, client ``i`` skips local
        training with probability ``client_dropout[i]`` and reports the
        global parameters back unchanged.  ``None`` means every client is
        fully reliable.  Used by the scenario engine
        (:mod:`repro.scenarios`) to model stragglers/dropouts.
    """

    def __init__(
        self,
        client_datasets: Sequence[Dataset],
        test_dataset: Dataset,
        model_factory: ModelFactory,
        config: Optional[FLConfig] = None,
        seed: SeedLike = 0,
        client_dropout: Optional[Sequence[float]] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("at least one client dataset is required")
        self.client_datasets = list(client_datasets)
        self.test_dataset = test_dataset
        self.model_factory = model_factory
        self.config = config or FLConfig()
        if client_dropout is not None:
            client_dropout = [float(p) for p in client_dropout]
            if len(client_dropout) != len(self.client_datasets):
                raise ValueError(
                    "client_dropout needs one probability per client "
                    f"({len(client_dropout)} given for {len(self.client_datasets)} clients)"
                )
            for probability in client_dropout:
                if not 0.0 <= probability <= 1.0:
                    raise ValueError(
                        f"dropout probabilities must lie in [0, 1], got {probability}"
                    )
            if not any(client_dropout):
                client_dropout = None
        self.client_dropout = client_dropout
        self._base_seed = derive_seed(RandomState(seed))
        probe = model_factory()
        # Kept as the template for capability probing (vectorization gating)
        # and as the computation engine of the vectorized trainer; the
        # factory is assumed to be pure (every call hyperparameter-identical),
        # which per-coalition caching already relies on.
        self._probe = probe
        self._parametric = probe.is_parametric
        if self.client_dropout is not None and not self._parametric:
            # Pooled (non-parametric) training has no rounds to drop out of;
            # silently ignoring the dropout would fingerprint and report a
            # straggler task whose stragglers never straggled.
            raise ValueError(
                "client_dropout requires a parametric FL model (round-based "
                "training); non-parametric models train on pooled data and "
                "cannot model stragglers"
            )

    @property
    def n_clients(self) -> int:
        return len(self.client_datasets)

    def _coalition_seed(self, coalition: frozenset) -> int:
        """Deterministic, collision-resistant per-coalition seed.

        The seed is derived from a SHA-256 hash of the *sorted member tuple*
        mixed with the base seed (truncated to 63 bits), so it is
        order-independent, stable across processes (unlike ``hash()``) and —
        unlike a sum of member indices, which systematically collided for
        e.g. ``{0, 3}`` vs ``{1, 2}`` — collision-resistant: distinct
        coalitions share a seed only with birthday probability ~``m²/2⁶³``.
        This matters for parallel evaluation: utilities must not become
        correlated across distinct coalitions regardless of which worker
        trains them or in which order.
        """
        key = f"{self._base_seed}|{','.join(str(m) for m in sorted(coalition))}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % (2**63 - 1)

    def _effective_members(self, members: frozenset) -> frozenset:
        """Members that actually contribute training data.

        Clients with empty datasets cannot influence training, so they are
        excluded from both the training run and the coalition seed.  This
        keeps ``U(S) == U(S ∪ {free rider})`` *exactly*, which in turn makes
        the null-player axiom hold exactly for the computed values instead of
        only up to training noise.
        """
        return frozenset(m for m in members if len(self.client_datasets[m]) > 0)

    def _client(self, member: int) -> FLClient:
        dropout = 0.0 if self.client_dropout is None else self.client_dropout[member]
        return FLClient(member, self.client_datasets[member], dropout_p=dropout)

    def train_coalition(
        self, coalition: Iterable[int], record_history: bool = False
    ) -> tuple[Model, Optional[TrainingHistory]]:
        """Train a model on the coalition's data; empty coalitions stay untrained."""
        members = frozenset(int(c) for c in coalition)
        invalid = [m for m in members if not 0 <= m < self.n_clients]
        if invalid:
            raise ValueError(f"unknown client ids in coalition: {invalid}")
        model = self.model_factory()
        members = self._effective_members(members)
        seed = self._coalition_seed(members)

        if not members:
            if isinstance(model, ParametricModel):
                model.initialize(seed)
            return model, None

        if self._parametric:
            # Strip history recording unless this call asked for it: plain
            # utility evaluation must not allocate per-round client updates
            # even when the trainer's config was built for a gradient-based
            # baseline (O(rounds × clients × P) memory per coalition).
            config = (
                self.config.with_history()
                if record_history
                else self.config.without_history()
            )
            clients = [self._client(m) for m in sorted(members)]
            server = FLServer(model, clients, config)
            server.train(seed=seed)
            return model, server.history

        # Non-parametric models (tree ensembles): pool the coalition's data.
        pooled = Dataset.concatenate(
            [self.client_datasets[m] for m in sorted(members)],
            name=f"coalition-{sorted(members)}",
        )
        model.fit(pooled, seed=seed)
        return model, None

    def utility(self, coalition: Iterable[int]) -> float:
        """Utility ``U(M_S)``: test performance of the coalition's model."""
        model, _ = self.train_coalition(coalition)
        return float(model.evaluate(self.test_dataset))

    def grand_coalition_history(self, seed: SeedLike = None) -> TrainingHistory:
        """Train on all clients with history recording (for gradient baselines)."""
        members = frozenset(range(self.n_clients))
        if not self._parametric:
            raise TypeError(
                "training history requires a parametric model; gradient-based "
                "baselines are not applicable to tree models (see paper Table V)"
            )
        model = self.model_factory()
        clients = [self._client(i) for i in range(self.n_clients)]
        server = FLServer(model, clients, self.config.with_history())
        run_seed = self._coalition_seed(members) if seed is None else seed
        server.train(seed=run_seed)
        return server.history

    def template_model(self) -> Model:
        """A fresh model instance, used for evaluating reconstructed parameters."""
        return self.model_factory()
