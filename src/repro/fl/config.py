"""Configuration of the federated training loop."""

from __future__ import annotations

from dataclasses import dataclass

SUPPORTED_ALGORITHMS = ("fedavg", "fedprox", "fedsgd")


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of a federated training run.

    Parameters
    ----------
    rounds:
        Number of communication rounds between server and clients.
    local_epochs:
        Local SGD epochs each client runs per round (FedAvg / FedProx).
        FedSGD ignores this and always takes a single full-batch step.
    algorithm:
        One of ``"fedavg"``, ``"fedprox"`` or ``"fedsgd"``.
    proximal_mu:
        FedProx proximal coefficient; only used when ``algorithm="fedprox"``.
    client_fraction:
        Fraction of the coalition's clients sampled per round (1.0 = all).
    record_history:
        Whether to record per-round client updates; required by the
        gradient-based valuation baselines, off by default to save memory.
    """

    rounds: int = 5
    local_epochs: int = 1
    algorithm: str = "fedavg"
    proximal_mu: float = 0.1
    client_fraction: float = 1.0
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.algorithm not in SUPPORTED_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {SUPPORTED_ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {self.proximal_mu}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(
                f"client_fraction must lie in (0, 1], got {self.client_fraction}"
            )

    def with_history(self) -> "FLConfig":
        """Copy of this config with per-round history recording enabled."""
        return FLConfig(
            rounds=self.rounds,
            local_epochs=self.local_epochs,
            algorithm=self.algorithm,
            proximal_mu=self.proximal_mu,
            client_fraction=self.client_fraction,
            record_history=True,
        )
