"""Configuration of the federated training loop."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

SUPPORTED_ALGORITHMS = ("fedavg", "fedprox", "fedsgd")


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of a federated training run.

    Every field is validated eagerly with a :class:`ValueError` naming the
    offending field — a bad config must fail at construction, not several
    rounds deep inside a coalition-training loop.

    Parameters
    ----------
    rounds:
        Number of communication rounds between server and clients.
    local_epochs:
        Local SGD epochs each client runs per round (FedAvg / FedProx).
        FedSGD ignores this and always takes a single full-batch step.
    algorithm:
        One of ``"fedavg"``, ``"fedprox"`` or ``"fedsgd"``.
    proximal_mu:
        FedProx proximal coefficient; only used when ``algorithm="fedprox"``.
    client_fraction:
        Fraction of the coalition's clients sampled per round (1.0 = all).
    batch_size:
        Optional mini-batch size override for local training.  ``None``
        (default) keeps each model's own ``batch_size`` hyperparameter.
        When persisting utilities to a hand-namespaced store, the caller's
        namespace must cover this override (the experiment task builders
        never set it).
    record_history:
        Whether to record per-round client updates; required by the
        gradient-based valuation baselines, off by default to save memory.
    """

    rounds: int = 5
    local_epochs: int = 1
    algorithm: str = "fedavg"
    proximal_mu: float = 0.1
    client_fraction: float = 1.0
    batch_size: Optional[int] = None
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.algorithm not in SUPPORTED_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {SUPPORTED_ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {self.proximal_mu}")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError(
                f"client_fraction must lie in (0, 1], got {self.client_fraction}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def with_history(self) -> "FLConfig":
        """Copy of this config with per-round history recording enabled."""
        return replace(self, record_history=True)

    def without_history(self) -> "FLConfig":
        """Copy of this config with history recording disabled.

        Used by the plain coalition-utility path: valuation only needs the
        final utility, so per-round client updates must not be allocated even
        when the caller's config was built for a gradient-based baseline.
        """
        if not self.record_history:
            return self
        return replace(self, record_history=False)
