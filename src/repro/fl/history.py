"""Training-history records consumed by the gradient-based baselines.

OR, λ-MR, GTG-Shapley and DIG-FL all avoid re-training FL models for every
coalition by *reconstructing* coalition models from the per-round local
updates produced during the single grand-coalition FL run.  The records here
store exactly what those reconstructions need:

* the global parameters at the start of each round,
* each participating client's locally updated parameters, and
* each client's sample count (FedAvg aggregation weight).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.fl.aggregation import weighted_average


@dataclass
class ClientUpdate:
    """One client's contribution to one round."""

    client_id: int
    parameters: np.ndarray
    n_samples: int

    @property
    def delta(self) -> Optional[np.ndarray]:
        """Filled in lazily by :class:`RoundRecord` (update − global)."""
        return getattr(self, "_delta", None)


@dataclass
class RoundRecord:
    """Everything recorded about one communication round."""

    round_index: int
    global_before: np.ndarray
    updates: Dict[int, ClientUpdate] = field(default_factory=dict)
    global_after: Optional[np.ndarray] = None

    def add_update(self, update: ClientUpdate) -> None:
        update._delta = np.asarray(update.parameters, dtype=float) - self.global_before
        self.updates[update.client_id] = update

    def client_delta(self, client_id: int) -> np.ndarray:
        """Local update minus the round's starting global parameters."""
        update = self.updates[client_id]
        return np.asarray(update.parameters, dtype=float) - self.global_before

    def participating_clients(self) -> List[int]:
        return sorted(self.updates)

    def aggregate_subset(self, coalition: Iterable[int]) -> np.ndarray:
        """Reconstruct the post-round parameters if only ``coalition`` took part.

        This is the core primitive of the gradient-based approximations: the
        recorded local updates of the coalition's clients are FedAvg-averaged
        as if the other clients had not existed in this round.  Clients that
        did not participate in the recorded round are ignored; if none of the
        coalition's clients participated the round is a no-op for them and the
        starting global parameters are returned.
        """
        members = [c for c in coalition if c in self.updates]
        if not members:
            return self.global_before.copy()
        vectors = [self.updates[c].parameters for c in members]
        weights = [float(self.updates[c].n_samples) for c in members]
        return weighted_average(vectors, weights)


@dataclass
class TrainingHistory:
    """Per-round records of a grand-coalition FL run plus the initial model."""

    initial_parameters: np.ndarray
    rounds: List[RoundRecord] = field(default_factory=list)
    client_sizes: Dict[int, int] = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def add_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        for client_id, update in record.updates.items():
            self.client_sizes.setdefault(client_id, update.n_samples)

    def clients(self) -> List[int]:
        return sorted(self.client_sizes)

    def reconstruct_sequential(self, coalition: Iterable[int]) -> np.ndarray:
        """Reconstruct a coalition model by replaying every recorded round.

        Starting from the recorded initial parameters, each round applies the
        averaged *delta* of the coalition's clients for that round.  This is
        the reconstruction rule used by the OR baseline ("take gradients within
        the FL process with all clients the same as gradients under other
        combinations").
        """
        members = set(int(c) for c in coalition)
        parameters = self.initial_parameters.copy()
        if not members:
            return parameters
        for record in self.rounds:
            present = [c for c in members if c in record.updates]
            if not present:
                continue
            deltas = [record.client_delta(c) for c in present]
            weights = [float(record.updates[c].n_samples) for c in present]
            parameters = parameters + weighted_average(deltas, weights)
        return parameters

    def reconstruct_round(self, round_index: int, coalition: Iterable[int]) -> np.ndarray:
        """Reconstruct the post-round model of one round for a sub-coalition.

        Used by the per-round baselines (λ-MR, GTG-Shapley): the round starts
        from the *recorded* global parameters of that round, so only the
        current round's updates are restricted to the coalition.
        """
        if not 0 <= round_index < len(self.rounds):
            raise IndexError(f"round index {round_index} out of range")
        return self.rounds[round_index].aggregate_subset(coalition)
