"""Vectorized multi-coalition federated training.

One round of "``B`` coalitions × FedAvg" in the serial engine is ``B``
independent Python loops over small NumPy ops; here it is a handful of large
stacked ops.  :class:`VectorizedCoalitionTrainer` trains a whole batch of
coalitions in lockstep: parameters live in a stacked matrix ``(B, P)`` (one
row per coalition model), each client's local epochs run simultaneously for
every coalition that contains the client, and per-coalition aggregation calls
the very same :func:`~repro.fl.aggregation.fedavg_aggregate` the serial
server uses.

Equivalence contract
--------------------
The vectorized engine replays the serial path *seed-for-seed*:

* per-coalition seeds come from
  :meth:`~repro.fl.federation.FederatedTrainer._coalition_seed`, and the
  per-round child generators from the same :func:`~repro.utils.rng.spawn_rng`
  draws, so initialisation, straggler-dropout decisions and every mini-batch
  permutation consume exactly the streams the serial trainer would consume;
* parameter initialisation and the final utility evaluation run through the
  serial code paths per slice, and the batched FedAvg aggregation accumulates
  client updates in the serial order, so all three are bitwise-identical
  given identical inputs;
* the only operations that differ are the gradient matmuls, which are lifted
  one batch axis up with identical per-slice operand shapes.  In practice
  this is bitwise-identical too (BLAS dispatches the same per-slice kernels);
  the documented policy (``docs/performance.md``) only *guarantees* utilities
  within ``PARITY_ATOL`` of the serial path and treats store entries as
  first-writer-wins across backends.

Models opt in via ``supports_vectorized`` (linear, logistic, MLP); everything
else — non-parametric GBDT, the CNN, partial client participation — is
reported by :func:`vectorization_blocker` and transparently falls back to the
serial path in :class:`~repro.parallel.executors.VectorizedExecutor`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

import numpy as np

from repro.fl.federation import FederatedTrainer
from repro.telemetry import SIZE_BUCKETS
from repro.utils.rng import RandomState, spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

#: guaranteed absolute utility agreement between the vectorized and serial
#: backends (the measured divergence is ~0: see docs/performance.md)
PARITY_ATOL = 1e-9

#: fraction of available RAM the auto-detected batch budget claims
DEFAULT_MEMORY_FRACTION = 0.25

#: batch budget when available RAM cannot be probed (256 MiB)
FALLBACK_BATCH_BYTES = 256 * 1024 * 1024


def available_memory_bytes() -> Optional[int]:
    """``MemAvailable`` from ``/proc/meminfo`` in bytes, or ``None``.

    Linux-only by design; other platforms (or containers hiding
    ``/proc``) fall back to :data:`FALLBACK_BATCH_BYTES`.
    """
    try:
        with open("/proc/meminfo", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def resolve_batch_budget(max_batch_bytes: Optional[int]) -> int:
    """Resolve the stacked-batch byte budget.

    ``None`` auto-detects :data:`DEFAULT_MEMORY_FRACTION` of available RAM
    (falling back to :data:`FALLBACK_BATCH_BYTES` when it cannot be probed);
    an explicit integer overrides the detection unconditionally.
    """
    if max_batch_bytes is not None:
        budget = int(max_batch_bytes)
        if budget < 1:
            raise ValueError(f"max_batch_bytes must be >= 1, got {budget}")
        return budget
    available = available_memory_bytes()
    if available is None:
        return FALLBACK_BATCH_BYTES
    return max(1, int(available * DEFAULT_MEMORY_FRACTION))


def vectorization_blocker(trainer: FederatedTrainer) -> Optional[str]:
    """Why ``trainer`` cannot be trained on the vectorized path, or ``None``.

    The conditions mirror the serial semantics the vectorized engine can
    replay exactly; anything else must fall back to per-coalition training.
    """
    probe = trainer._probe
    if not trainer._parametric:
        return (
            f"{type(probe).__name__} is non-parametric: coalitions train on "
            "pooled data, there is no parameter matrix to stack"
        )
    if not getattr(probe, "supports_vectorized", False):
        return f"{type(probe).__name__} implements no vectorized batched kernels"
    if probe.is_initialized:
        return (
            "the model factory pre-initializes parameters; the FL server "
            "would skip seed-derived initialisation"
        )
    if trainer.config.client_fraction < 1.0:
        return (
            "client_fraction < 1 samples a different participant subset per "
            "coalition and round; lockstep training requires full participation"
        )
    return None


class VectorizedCoalitionTrainer:
    """Trains batches of coalitions in lockstep on stacked parameters.

    Parameters
    ----------
    trainer:
        The serial :class:`~repro.fl.federation.FederatedTrainer` whose
        semantics (datasets, model factory, config, seed derivation, dropout)
        this engine replays.  Raises :class:`ValueError` with the
        :func:`vectorization_blocker` reason when the trainer cannot be
        vectorized.
    chunk_size:
        Maximum number of coalitions trained in one stacked batch; larger
        batches amortise more Python overhead but hold ``chunk_size ×
        coalition-size × P`` floats of local parameters per round.
    max_batch_bytes:
        Memory budget for one stacked batch.  Batches are additionally
        packed by estimated footprint (see :meth:`estimated_batch_bytes`):
        a chunk closes as soon as adding the next coalition would exceed the
        budget, so a 500-client stratum streams through in RAM-sized slices
        instead of one giant stack.  ``None`` (the default) auto-detects
        :data:`DEFAULT_MEMORY_FRACTION` of available RAM; chunk boundaries
        are seed-for-seed value-invariant (per-coalition seeds), so any
        budget produces bitwise-identical utilities.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle; each stacked
        chunk then runs inside a ``vectorized.chunk`` span with its size and
        estimated bytes attached.  Observational only — chunk planning,
        seeds and values are identical with or without it.
    """

    def __init__(
        self,
        trainer: FederatedTrainer,
        chunk_size: int = 64,
        max_batch_bytes: Optional[int] = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        blocker = vectorization_blocker(trainer)
        if blocker is not None:
            raise ValueError(f"trainer cannot be vectorized: {blocker}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.trainer = trainer
        self.model = trainer._probe
        self.chunk_size = int(chunk_size)
        self.max_batch_bytes = resolve_batch_budget(max_batch_bytes)
        self.telemetry = telemetry
        # Per dataset size: stacked (features, targets, client → row) over
        # *all* non-empty clients of that size; built lazily, reused by every
        # batch (client data never changes under a trainer).
        self._stacks: Optional[dict] = None

    def set_telemetry(self, telemetry: "Optional[Telemetry]") -> None:
        """Attach (or detach with ``None``) the telemetry handle."""
        self.telemetry = telemetry

    @property
    def n_clients(self) -> int:
        return self.trainer.n_clients

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    def utilities(self, coalitions: Iterable[Iterable[int]]) -> List[float]:
        """Utilities ``U(M_S)`` for a batch of coalitions, in input order.

        Seed-for-seed equivalent to ``[trainer.utility(S) for S in ...]``;
        duplicates are simply trained twice (callers that care deduplicate —
        the batch oracle does).
        """
        keys = [frozenset(int(c) for c in coalition) for coalition in coalitions]
        for key in keys:
            invalid = [m for m in key if not 0 <= m < self.n_clients]
            if invalid:
                raise ValueError(f"unknown client ids in coalition: {invalid}")
        values: List[float] = []
        telemetry = self.telemetry
        for chunk in self.plan_chunks(keys):
            if telemetry is not None:
                with telemetry.span(
                    "vectorized.chunk",
                    size=len(chunk),
                    est_bytes=self.estimated_batch_bytes(chunk),
                ):
                    telemetry.observe("vectorized.chunk_size", len(chunk), SIZE_BUCKETS)
                    parameters = self.train_parameters(chunk)
                    evaluated = self.model.batch_evaluate(
                        parameters, self.trainer.test_dataset
                    )
            else:
                parameters = self.train_parameters(chunk)
                evaluated = self.model.batch_evaluate(
                    parameters, self.trainer.test_dataset
                )
            values.extend(float(v) for v in evaluated)
        return values

    # ------------------------------------------------------------------ #
    # Memory-budgeted batch planning
    # ------------------------------------------------------------------ #
    def estimated_coalition_bytes(self, coalition: frozenset) -> int:
        """Estimated stacked-training footprint of one coalition, in bytes.

        Counts the float64 tensors whose size scales with the batch: the
        coalition's parameter row, per-member local parameter rows plus the
        aggregation update stack (2·|S|·P), and the per-epoch permuted
        feature/target gathers (≈2× the member datasets).  Fixed engine
        state (the shared client data stacks, the model) is excluded — it
        does not grow with the batch, so it has no business in the packing
        decision.
        """
        members = sorted(
            self.trainer._effective_members(frozenset(coalition))
        )
        itemsize = 8
        n_parameters = self.model.num_parameters()
        parameter_floats = n_parameters * (1 + 2 * len(members))
        data_floats = 0
        datasets = self.trainer.client_datasets
        for client in members:
            dataset = datasets[client]
            data_floats += 2 * (
                int(np.asarray(dataset.features).size)
                + int(np.asarray(dataset.targets).size)
            )
        return itemsize * (parameter_floats + data_floats)

    def estimated_batch_bytes(self, coalitions: Sequence[frozenset]) -> int:
        """Estimated footprint of training the given coalitions as one stack."""
        return sum(self.estimated_coalition_bytes(key) for key in coalitions)

    def plan_chunks(self, keys: Sequence[frozenset]) -> List[List[frozenset]]:
        """Split a batch into chunks respecting both caps, in input order.

        Greedy packing: a chunk closes when it holds ``chunk_size``
        coalitions or when the next coalition's estimated footprint would
        push it past ``max_batch_bytes``.  Every chunk holds at least one
        coalition (an oversized single coalition still trains — the budget
        bounds *batching* overhead, it cannot shrink one model).  Chunk
        boundaries never change utilities: per-coalition seeds make slices
        independent, so packing is free to follow the RAM budget.
        """
        chunks: List[List[frozenset]] = []
        current: List[frozenset] = []
        current_bytes = 0
        for key in keys:
            cost = self.estimated_coalition_bytes(key)
            if current and (
                len(current) >= self.chunk_size
                or current_bytes + cost > self.max_batch_bytes
            ):
                chunks.append(current)
                current = []
                current_bytes = 0
            current.append(key)
            current_bytes += cost
        if current:
            chunks.append(current)
        return chunks

    def train_parameters(self, coalitions: Sequence[frozenset]) -> np.ndarray:
        """Final global parameters of every coalition's FL run → ``(B, P)``."""
        trainer = self.trainer
        model = self.model
        config = trainer.config
        members = [
            sorted(trainer._effective_members(frozenset(key))) for key in coalitions
        ]
        # One generator per coalition, seeded exactly like the serial path;
        # initialisation consumes it first, the round loop continues on it.
        rngs = [
            RandomState(trainer._coalition_seed(frozenset(m))) for m in members
        ]
        parameters = model.batch_init_parameters(rngs)
        active = [b for b in range(len(members)) if members[b]]
        if not active:
            return parameters

        datasets = trainer.client_datasets
        batch_size = (
            int(config.batch_size)
            if config.batch_size is not None
            else int(model.batch_size)
        )
        proximal_mu = config.proximal_mu if config.algorithm == "fedprox" else 0.0

        # A training *slice* is one (coalition, client) pair.  Slices are
        # independent given their parameters and generators, so any set of
        # slices whose datasets have equal length can run its local epochs in
        # one stacked call — grouping by dataset size (not by client) is what
        # turns "B coalitions × FedAvg" into a handful of large ops per
        # mini-batch step.  The group structure is membership-derived and
        # constant across rounds, so it is built once.
        groups = self._size_groups(members, active)

        # FedAvg aggregation, batched by coalition size: summing the stacked
        # ``(B_k, k, P)`` update tensor over its client axis accumulates in
        # the same order as the serial per-coalition ``sum(axis=0)``, so the
        # aggregate is bitwise-identical to fedavg_aggregate per coalition.
        # The normalised weights only depend on membership — precompute them.
        aggregation = []
        by_coalition_size: dict[int, list[int]] = {}
        for b in active:
            by_coalition_size.setdefault(len(members[b]), []).append(b)
        for k in sorted(by_coalition_size):
            bs = by_coalition_size[k]
            weights = np.asarray(
                [[float(len(datasets[c])) for c in members[b]] for b in bs]
            )
            normalized = weights / weights.sum(axis=1, keepdims=True)
            aggregation.append((np.asarray(bs), [members[b] for b in bs], normalized))

        for _round in range(config.rounds):
            # Per coalition: one spawn_rng draw, exactly as the serial server
            # does per round, yielding one child generator per participant.
            children = {}
            for b in active:
                spawned = spawn_rng(rngs[b], len(members[b]))
                for position, client in enumerate(members[b]):
                    children[(b, client)] = spawned[position]

            updated: dict[tuple[int, int], np.ndarray] = {}
            for group in groups:
                self._train_group(
                    group,
                    parameters,
                    children,
                    updated,
                    batch_size=batch_size,
                    proximal_mu=proximal_mu,
                )

            for index_array, member_lists, normalized in aggregation:
                rows = np.stack(
                    [
                        updated[(b, client)]
                        for b, coalition in zip(index_array, member_lists)
                        for client in coalition
                    ]
                )
                stacked = rows.reshape(len(index_array), -1, parameters.shape[1])
                parameters[index_array] = (stacked * normalized[:, :, None]).sum(axis=1)
        return parameters

    # ------------------------------------------------------------------ #
    # Lockstep local training
    # ------------------------------------------------------------------ #
    def _client_stacks(self) -> dict:
        """Stacked client data per dataset size, built once per engine."""
        if self._stacks is None:
            datasets = self.trainer.client_datasets
            by_size: dict[int, list[int]] = {}
            for client, dataset in enumerate(datasets):
                if len(dataset) > 0:
                    by_size.setdefault(len(dataset), []).append(client)
            self._stacks = {
                size: {
                    "features": np.stack([datasets[c].features for c in clients]),
                    "targets": np.stack([datasets[c].targets for c in clients]),
                    "row_of": {c: row for row, c in enumerate(clients)},
                }
                for size, clients in by_size.items()
            }
        return self._stacks

    def _size_groups(
        self, members: Sequence[Sequence[int]], active: Sequence[int]
    ) -> list[dict]:
        """Group (coalition, client) slices by dataset length.

        Each group references the engine's stacked features/targets for that
        size plus, per slice, the row index into the stack — so one
        fancy-index gather per epoch produces every slice's permuted data.
        """
        datasets = self.trainer.client_datasets
        stacks = self._client_stacks()
        by_size: dict[int, list[tuple[int, int]]] = {}
        for b in active:
            for client in members[b]:
                by_size.setdefault(len(datasets[client]), []).append((b, client))
        groups = []
        for size in sorted(by_size):
            slices = by_size[size]
            stack = stacks[size]
            groups.append(
                {
                    "size": size,
                    "slices": slices,
                    "features": stack["features"],
                    "targets": stack["targets"],
                    "client_rows": np.asarray(
                        [stack["row_of"][client] for _, client in slices]
                    ),
                }
            )
        return groups

    def _train_group(
        self,
        group: dict,
        parameters: np.ndarray,
        children: dict,
        updated: dict,
        batch_size: int,
        proximal_mu: float,
    ) -> None:
        """Run one round's local updates for every slice of one size group."""
        trainer = self.trainer
        model = self.model
        config = trainer.config
        n = group["size"]

        # Straggler dropout per slice: consume the drop decision from the
        # slice's child stream, then hand the same stream on to local
        # training — mirroring FLClient.local_update.  A dropped slice
        # reports the round-start global parameters back unchanged.
        if trainer.client_dropout is None:
            live = group["slices"]
            client_rows = group["client_rows"]
        else:
            live = []
            live_rows: list[int] = []
            for index, (b, client) in enumerate(group["slices"]):
                dropout_p = trainer.client_dropout[client]
                if dropout_p > 0.0 and children[(b, client)].uniform() < dropout_p:
                    updated[(b, client)] = parameters[b].copy()
                else:
                    live.append((b, client))
                    live_rows.append(index)
            if not live:
                return
            client_rows = group["client_rows"][np.asarray(live_rows)]

        stacked = parameters[np.asarray([b for b, _ in live])]  # (Bt, P) copy
        gens = [children[key] for key in live]
        features = group["features"]
        targets = group["targets"]

        if config.algorithm == "fedsgd":
            # A single full-batch step from the global parameters; the serial
            # client applies neither L2 nor the proximal term here.
            grad = model.batch_gradient(
                stacked, features[client_rows], targets[client_rows]
            )
            stacked = stacked - model.learning_rate * grad
        else:
            reference = stacked.copy() if proximal_mu > 0.0 else None
            for _epoch in range(config.local_epochs):
                orders = np.stack([gen.permutation(n) for gen in gens])
                # One gather per epoch: row r of the permuted stack is slice
                # r's client data in slice r's mini-batch order, row-identical
                # to the serial per-step indexing.
                permuted_features = features[client_rows[:, None], orders]
                permuted_targets = targets[client_rows[:, None], orders]
                for start in range(0, n, batch_size):
                    stop = start + batch_size
                    grad = model.batch_gradient(
                        stacked,
                        permuted_features[:, start:stop],
                        permuted_targets[:, start:stop],
                    )
                    if model.l2 > 0:
                        grad = grad + model.l2 * stacked
                    if proximal_mu > 0.0 and reference is not None:
                        grad = grad + proximal_mu * (stacked - reference)
                    stacked = stacked - model.learning_rate * grad

        for j, key in enumerate(live):
            updated[key] = stacked[j]
