"""Federated-learning simulator substrate.

The paper runs TensorFlow Federated with multi-process clients over gRPC; the
valuation algorithms, however, only interact with FL through two interfaces:

1. a *utility oracle* ``U(S)`` — train an FL model on the coalition ``S`` of
   clients and report its test performance (this is what every sampling-based
   method consumes), and
2. the *training history* of the grand-coalition FL run — per-round global
   models and per-client local updates (this is what the gradient-based
   baselines OR, λ-MR, GTG-Shapley and DIG-FL consume).

This package provides both on top of an in-process NumPy FedAvg/FedProx
simulator.  See DESIGN.md section 2 for the substitution rationale.
"""

from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.history import ClientUpdate, RoundRecord, TrainingHistory
from repro.fl.aggregation import fedavg_aggregate, weighted_average
from repro.fl.server import FLServer
from repro.fl.federation import FederatedTrainer, train_federated
from repro.fl.vectorized import VectorizedCoalitionTrainer, vectorization_blocker
from repro.fl.utility import CoalitionUtility, TabularUtility

__all__ = [
    "FLClient",
    "FLConfig",
    "ClientUpdate",
    "RoundRecord",
    "TrainingHistory",
    "fedavg_aggregate",
    "weighted_average",
    "FLServer",
    "FederatedTrainer",
    "train_federated",
    "VectorizedCoalitionTrainer",
    "vectorization_blocker",
    "CoalitionUtility",
    "TabularUtility",
]
