"""FL client: local dataset plus local-update logic.

In the paper a client is a cross-silo data provider (hospital, company).  The
simulator keeps each client in-process: ``local_update`` receives the current
global parameters, runs local training on the client's private dataset, and
returns the updated parameters together with the sample count the server
needs for weighted aggregation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.fl.config import FLConfig
from repro.models.base import ParametricModel
from repro.utils.rng import RandomState, SeedLike


class FLClient:
    """One federated-learning participant.

    Parameters
    ----------
    client_id:
        Stable integer identifier (index into the federation).
    dataset:
        The client's private training data.  May be empty (a "free rider").
    dropout_p:
        Per-round probability that the client *straggles*: it skips local
        training and reports the global parameters back unchanged (a stale,
        zero-information update that still enters the weighted aggregate).
        ``0.0`` (default) is a fully reliable client.  The drop decision is
        drawn from the per-round seed the server passes to
        :meth:`local_update`, so it is deterministic for a given coalition
        and round.
    """

    def __init__(
        self, client_id: int, dataset: Dataset, dropout_p: float = 0.0
    ) -> None:
        if not 0.0 <= dropout_p <= 1.0:
            raise ValueError(f"dropout_p must lie in [0, 1], got {dropout_p}")
        self.client_id = int(client_id)
        self.dataset = dataset
        self.dropout_p = float(dropout_p)

    @property
    def n_samples(self) -> int:
        return len(self.dataset)

    @property
    def is_empty(self) -> bool:
        return len(self.dataset) == 0

    def local_update(
        self,
        model: ParametricModel,
        global_parameters: np.ndarray,
        config: FLConfig,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Run local training from the global parameters and return new ones.

        The shared ``model`` object is used as a computation engine only: its
        parameters are overwritten with ``global_parameters`` before training,
        so no state leaks between clients.
        Empty clients return the global parameters unchanged, as does a
        straggler (``dropout_p > 0``) in a round it drops.
        """
        if self.is_empty:
            return np.asarray(global_parameters, dtype=float).copy()
        if self.dropout_p > 0.0:
            # Consume the drop decision from the round seed, then hand the
            # same stream on to local training: reliable clients' streams are
            # untouched, and a straggler's behaviour is round-deterministic.
            rng = RandomState(seed)
            if rng.uniform() < self.dropout_p:
                return np.asarray(global_parameters, dtype=float).copy()
            seed = rng
        model.set_parameters(global_parameters)
        if config.algorithm == "fedsgd":
            # A single full-batch gradient step; the server aggregates the result.
            gradient = model.gradient_on(self.dataset)
            updated = np.asarray(global_parameters, dtype=float) - model.learning_rate * gradient
            model.set_parameters(updated)
            return updated
        proximal_mu = config.proximal_mu if config.algorithm == "fedprox" else 0.0
        return model.train_epochs(
            self.dataset,
            epochs=config.local_epochs,
            seed=seed,
            proximal_mu=proximal_mu,
            reference_parameters=np.asarray(global_parameters, dtype=float),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FLClient(id={self.client_id}, n_samples={self.n_samples})"
