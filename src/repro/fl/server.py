"""FL server: orchestrates rounds of local training and aggregation."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.fl.aggregation import fedavg_aggregate
from repro.fl.client import FLClient
from repro.fl.config import FLConfig
from repro.fl.history import ClientUpdate, RoundRecord, TrainingHistory
from repro.models.base import ParametricModel
from repro.utils.rng import RandomState, SeedLike, spawn_rng


class FLServer:
    """Coordinator of a federated training run.

    The server owns the global model, selects clients each round, collects
    their locally updated parameters and aggregates them with FedAvg.  When
    ``config.record_history`` is enabled the full per-round trace is kept for
    the gradient-based valuation baselines.
    """

    def __init__(
        self,
        model: ParametricModel,
        clients: Sequence[FLClient],
        config: Optional[FLConfig] = None,
    ) -> None:
        if not clients:
            raise ValueError("the federation needs at least one client")
        if not model.is_parametric:
            raise TypeError(
                "FLServer requires a ParametricModel; use pooled training for "
                "non-parametric models such as GradientBoostedTrees"
            )
        self.model = model
        self.clients = list(clients)
        self.config = config or FLConfig()
        self.history: Optional[TrainingHistory] = None

    def _select_clients(self, rng: np.random.Generator) -> list[FLClient]:
        """Sample the participating clients for one round."""
        if self.config.client_fraction >= 1.0:
            return list(self.clients)
        n_selected = max(1, int(round(self.config.client_fraction * len(self.clients))))
        indices = rng.choice(len(self.clients), size=n_selected, replace=False)
        return [self.clients[int(i)] for i in sorted(indices)]

    def train(self, seed: SeedLike = None) -> ParametricModel:
        """Run the configured number of federated rounds and return the model."""
        rng = RandomState(seed)
        original_batch_size = None
        if self.config.batch_size is not None:
            # The config-level mini-batch override applies to local training
            # during this run only; restore the model's own hyperparameter
            # afterwards so a caller-owned model is not silently rewritten.
            original_batch_size = self.model.batch_size
            self.model.batch_size = int(self.config.batch_size)
        try:
            if not self.model.is_initialized:
                self.model.initialize(rng)
            global_parameters = self.model.get_parameters()

            if self.config.record_history:
                self.history = TrainingHistory(
                    initial_parameters=global_parameters.copy()
                )

            for round_index in range(self.config.rounds):
                participants = self._select_clients(rng)
                record = RoundRecord(
                    round_index=round_index, global_before=global_parameters.copy()
                )
                client_rngs = spawn_rng(rng, len(participants))
                updated_parameters = []
                sizes = []
                for client, client_rng in zip(participants, client_rngs):
                    local_parameters = client.local_update(
                        self.model, global_parameters, self.config, seed=client_rng
                    )
                    updated_parameters.append(local_parameters)
                    sizes.append(client.n_samples)
                    if self.config.record_history:
                        record.add_update(
                            ClientUpdate(
                                client_id=client.client_id,
                                parameters=local_parameters,
                                n_samples=client.n_samples,
                            )
                        )
                if sum(sizes) > 0:
                    global_parameters = fedavg_aggregate(updated_parameters, sizes)
                if self.config.record_history:
                    record.global_after = global_parameters.copy()
                    self.history.add_round(record)

            self.model.set_parameters(global_parameters)
        finally:
            if original_batch_size is not None:
                self.model.batch_size = original_batch_size
        return self.model
