"""Coalition utility oracles.

Every sampling-based valuation algorithm in :mod:`repro.core` is written
against a single callable interface: ``utility(coalition) -> float``.  The
classes here implement that interface on top of the FL simulator, add
memoisation (training the same coalition twice would be wasted work) and keep
a count of how many FL trainings were actually performed — the
hardware-independent cost model used in EXPERIMENTS.md alongside wall-clock
times.

Both oracles also speak the *batch-oracle protocol*
(``evaluate_batch(coalitions) -> {coalition: utility}``): algorithms hand over
their whole coalition plan at once and :class:`CoalitionUtility` trains the
cache misses concurrently when ``n_workers > 1`` (see
:mod:`repro.parallel`).  Per-coalition training seeds are content-derived and
collision-resistant, so parallel evaluation returns bitwise-identical
utilities to serial execution.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.datasets.base import Dataset
from repro.fl.config import FLConfig
from repro.fl.federation import FederatedTrainer, ModelFactory
from repro.parallel.batch_oracle import BatchUtilityOracle, coalition_batch_keys
from repro.parallel.executors import ExecutorLike
from repro.store import StoreLike, UtilityStore
from repro.utils.rng import SeedLike


class CoalitionUtility:
    """Cached utility oracle ``U(S)`` backed by federated training.

    Parameters
    ----------
    client_datasets:
        One training dataset per FL client.
    test_dataset:
        Held-out evaluation data defining the utility.
    model_factory:
        Zero-argument callable producing a fresh model.
    config:
        FL training configuration.
    seed:
        Base seed making coalition training deterministic.
    artificial_cost:
        Optional per-evaluation time (seconds) that experiments can use to
        model the paper's much larger per-coalition training cost τ without
        actually sleeping; exposed via :attr:`modeled_time`.
    n_workers:
        Concurrency level for batched evaluations (``evaluate_batch``): with
        ``n_workers > 1`` cache misses inside a batch are trained in parallel
        on the chosen executor.  ``1`` (default) stays strictly sequential.
    executor:
        Backend for batched evaluation: ``"serial"``, ``"thread"``,
        ``"process"``, ``"vectorized"``, an existing executor instance, or
        ``None`` to choose automatically.  The process backend requires the
        model factory and datasets to be picklable (no lambdas); the
        vectorized backend trains miss batches in lockstep on stacked
        parameter matrices when the model supports it (linear, logistic,
        MLP) and falls back to the serial loop otherwise — see
        ``docs/performance.md`` for the backend matrix.
    store:
        Optional persistent utility store (instance or path) beneath the
        cache: trained utilities are written through and survive the process,
        so a rerun — or a sibling worker process — serves them with zero FL
        trainings.  See :mod:`repro.store`.
    store_namespace:
        Content-address namespace (a task fingerprint) for this oracle's
        coalitions.  The experiment task builders
        (:mod:`repro.experiments.tasks`) compute and pass it automatically;
        when attaching a store by hand the caller must guarantee it uniquely
        identifies the (datasets, model, config, seed) combination.
    client_dropout:
        Optional per-client straggler probabilities forwarded to
        :class:`~repro.fl.federation.FederatedTrainer`; with a store attached
        the caller's namespace must cover them (the scenario fingerprint
        does).
    """

    def __init__(
        self,
        client_datasets: Sequence[Dataset],
        test_dataset: Dataset,
        model_factory: ModelFactory,
        config: Optional[FLConfig] = None,
        seed: SeedLike = 0,
        artificial_cost: float = 0.0,
        n_workers: int = 1,
        executor: ExecutorLike = None,
        store: StoreLike = None,
        store_namespace: Optional[str] = None,
        client_dropout: Optional[Sequence[float]] = None,
    ) -> None:
        self.trainer = FederatedTrainer(
            client_datasets=client_datasets,
            test_dataset=test_dataset,
            model_factory=model_factory,
            config=config,
            seed=seed,
            client_dropout=client_dropout,
        )
        self._oracle = BatchUtilityOracle(
            evaluator=self.trainer.utility,
            n_clients=self.trainer.n_clients,
            n_workers=n_workers,
            executor=executor,
            store=store,
            store_namespace=store_namespace,
        )
        self.artificial_cost = float(artificial_cost)

    # ------------------------------------------------------------------ #
    # Oracle interface
    # ------------------------------------------------------------------ #
    @property
    def n_clients(self) -> int:
        return self.trainer.n_clients

    def __call__(self, coalition: Iterable[int]) -> float:
        return self._oracle.utility(coalition)

    def utility(self, coalition: Iterable[int]) -> float:
        return self._oracle.utility(coalition)

    def evaluate_batch(
        self, coalitions: Iterable[Iterable[int]]
    ) -> dict[frozenset, float]:
        """Batch-oracle protocol: evaluate a coalition set, misses in parallel."""
        return self._oracle.evaluate_batch(coalitions)

    # ------------------------------------------------------------------ #
    # Parallelism
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._oracle.n_workers

    @property
    def executor(self):
        """The active :class:`~repro.parallel.executors.CoalitionExecutor`."""
        return self._oracle.executor

    @property
    def backend(self) -> str:
        """Registry name of the active executor backend (e.g. ``"serial"``)."""
        return self._oracle.backend

    def set_n_workers(self, n_workers: int, executor: ExecutorLike = None) -> None:
        """Reconfigure batch-evaluation concurrency (and optionally backend)."""
        self._oracle.set_n_workers(n_workers, executor)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def telemetry(self):
        """The attached :class:`~repro.telemetry.Telemetry` handle, if any."""
        return self._oracle.telemetry

    def set_telemetry(self, telemetry) -> None:
        """Attach (or detach with ``None``) telemetry across the oracle stack.

        Forwards to :meth:`BatchUtilityOracle.set_telemetry`: the cache, the
        executor and (when attached) the persistent store all pick it up.
        Observational only — values, seeds and store keys are unaffected.
        """
        self._oracle.set_telemetry(telemetry)
        if self._oracle.store is not None:
            self._oracle.store.set_telemetry(telemetry)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[UtilityStore]:
        """The attached persistent utility store, if any."""
        return self._oracle.store

    def attach_store(self, store: StoreLike, namespace: Optional[str] = None) -> None:
        """Attach (or detach, with ``None``) a persistent utility store."""
        self._oracle.attach_store(store, namespace)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release worker pools and any store handle this oracle opened.

        Deterministic teardown matters for the persistent store (a SQLite
        WAL checkpoint, JSONL file handles) and process pools; prefer the
        context-manager form ``with CoalitionUtility(...) as u: ...``.
        """
        self._oracle.close()

    def __enter__(self) -> "CoalitionUtility":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    @property
    def evaluations(self) -> int:
        """Number of coalition FL trainings performed so far."""
        return self._oracle.evaluations

    @property
    def cache_hits(self) -> int:
        return self._oracle.cache_hits

    @property
    def store_hits(self) -> int:
        """Utilities served by the persistent store (zero trainings each)."""
        return self._oracle.store_hits

    @property
    def batch_counts(self) -> dict[str, int]:
        """Batches dispatched per executor backend (see the oracle)."""
        return self._oracle.batch_counts

    @property
    def modeled_time(self) -> float:
        """Evaluations × artificial per-coalition cost (a τ·count cost model)."""
        return self.evaluations * self.artificial_cost

    def reset_cache(self) -> None:
        self._oracle.reset_cache()

    def snapshot_evaluations(self) -> int:
        """Convenience for measuring the evaluations used by one algorithm run."""
        return self.evaluations


class TabularUtility:
    """Utility oracle backed by a precomputed coalition → utility table.

    Used in unit tests (to check algorithms against hand-computed Shapley
    values, e.g. the paper's Table I example) and in analytical experiments
    where utilities come from a closed-form model rather than FL training.
    """

    def __init__(self, n_clients: int, table: Mapping[frozenset, float]) -> None:
        self.n_clients = int(n_clients)
        self._table = {frozenset(k): float(v) for k, v in table.items()}
        self._counter = 0

    #: materialising a 2^n-entry table beyond this many clients fails fast
    MAX_EXACT_CLIENTS = 20

    @classmethod
    def from_function(
        cls,
        n_clients: int,
        function: Callable[[frozenset], float],
        max_exact_clients: int | None = None,
    ) -> "TabularUtility":
        """Materialise a full utility table from a coalition function.

        The table holds all ``2^n`` coalitions, so the shared enumeration
        guard applies (default :attr:`MAX_EXACT_CLIENTS`, override via
        ``max_exact_clients``): a misconfigured large-n call raises with the
        sampling alternatives instead of exhausting memory.
        """
        from repro.core.plans import check_enumeration_limit
        from repro.utils.combinatorics import all_coalitions

        limit = cls.MAX_EXACT_CLIENTS if max_exact_clients is None else int(
            max_exact_clients
        )
        check_enumeration_limit(n_clients, limit, "utility-table materialisation")
        table = {s: function(s) for s in all_coalitions(n_clients)}
        return cls(n_clients, table)

    def __call__(self, coalition: Iterable[int]) -> float:
        key = frozenset(int(c) for c in coalition)
        if key not in self._table:
            raise KeyError(f"utility of coalition {sorted(key)} is not defined")
        self._counter += 1
        return self._table[key]

    def utility(self, coalition: Iterable[int]) -> float:
        return self(coalition)

    def evaluate_batch(
        self, coalitions: Iterable[Iterable[int]]
    ) -> dict[frozenset, float]:
        """Batch-oracle protocol: deduplicated sequential table lookups."""
        return {key: self(key) for key in coalition_batch_keys(coalitions)}

    @property
    def evaluations(self) -> int:
        """Number of lookups performed (each lookup models one FL training)."""
        return self._counter
