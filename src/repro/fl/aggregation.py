"""Server-side aggregation rules."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def weighted_average(
    vectors: Sequence[np.ndarray], weights: Sequence[float]
) -> np.ndarray:
    """Weighted average of parameter vectors.

    Weights are normalised internally; if they sum to zero (e.g. every client
    in the coalition holds an empty dataset) a plain unweighted mean is used.
    """
    if len(vectors) == 0:
        raise ValueError("cannot aggregate an empty list of parameter vectors")
    if len(vectors) != len(weights):
        raise ValueError("vectors and weights must have the same length")
    stacked = np.stack([np.asarray(v, dtype=float) for v in vectors])
    weight_arr = np.asarray(weights, dtype=float)
    if np.any(weight_arr < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weight_arr.sum()
    if total <= 0:
        return stacked.mean(axis=0)
    return (stacked * (weight_arr / total)[:, None]).sum(axis=0)


def fedavg_aggregate(
    client_parameters: Sequence[np.ndarray], client_sizes: Sequence[int]
) -> np.ndarray:
    """FedAvg: average client models weighted by their local sample counts."""
    return weighted_average(client_parameters, [float(s) for s in client_sizes])
