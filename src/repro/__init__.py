"""repro — reproduction of "Efficient Data Valuation Approximation in
Federated Learning: A Sampling-based Approach" (Wei et al., ICDE 2025).

The package is organised in five layers:

* :mod:`repro.datasets` — synthetic dataset generators, partitioners, noise.
* :mod:`repro.models` — NumPy MLP / CNN / logistic / linear / GBDT models.
* :mod:`repro.fl` — FedAvg-style federated simulator and coalition utilities.
* :mod:`repro.core` — the valuation algorithms: exact Shapley schemes, the
  unified stratified sampling framework, K-Greedy, IPSS and nine baselines.
* :mod:`repro.parallel` — batched coalition-evaluation engine: a batch-capable
  utility oracle with serial/thread/process executors (``n_workers``).
* :mod:`repro.store` — persistent, content-addressed coalition-utility store
  (SQLite / sharded JSONL) shared across processes and runs.
* :mod:`repro.scenarios` — composable client-behavior scenarios (free riders,
  poisoners, sybils, stragglers, ...) and the valuation-robustness harness
  that scores every algorithm against them (see ``docs/scenarios.md``).
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation section, plus the declarative, resumable
  experiment pipeline behind the ``repro`` CLI (see :mod:`repro.cli`).

Quickstart
----------
>>> from repro import quick_valuation            # doctest: +SKIP
>>> result = quick_valuation(n_clients=4)        # doctest: +SKIP
>>> result.values                                # doctest: +SKIP
"""

from repro.core import (
    IPSS,
    BudgetRule,
    ConvergenceRule,
    EstimatorState,
    KGreedy,
    MCShapley,
    StratifiedSampling,
    ValuationResult,
    ValuationSnapshot,
    WallClockRule,
    parse_stopping_rule,
    relative_error_l2,
)
from repro.fl import CoalitionUtility, FLConfig
from repro.parallel import BatchUtilityOracle
from repro.store import UtilityStore, open_store
from repro.version import __version__

__all__ = [
    "IPSS",
    "KGreedy",
    "MCShapley",
    "StratifiedSampling",
    "ValuationResult",
    "ValuationSnapshot",
    "EstimatorState",
    "BudgetRule",
    "ConvergenceRule",
    "WallClockRule",
    "parse_stopping_rule",
    "relative_error_l2",
    "CoalitionUtility",
    "BatchUtilityOracle",
    "FLConfig",
    "UtilityStore",
    "open_store",
    "quick_valuation",
    "__version__",
]


def quick_valuation(
    n_clients: int = 4,
    samples_per_client: int = 60,
    total_rounds: int = 10,
    seed: int = 0,
) -> ValuationResult:
    """Run IPSS on a small synthetic federation — a one-call smoke test.

    Builds a blob-classification task, splits it IID across ``n_clients``
    logistic-regression FL clients and estimates their data values with IPSS
    under a budget of ``total_rounds`` coalition evaluations.
    """
    from functools import partial

    from repro.datasets import make_classification_blobs, partition_iid, train_test_split
    from repro.models import LogisticRegressionModel

    pooled = make_classification_blobs(
        n_samples=samples_per_client * n_clients + 100,
        n_features=8,
        n_classes=3,
        seed=seed,
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=seed)
    clients = partition_iid(train, n_clients, seed=seed)
    utility = CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        # partial, not a lambda: the oracle stays picklable, so this helper
        # also works under the process executor backend (RPR004).
        model_factory=partial(
            LogisticRegressionModel, n_features=8, n_classes=3, epochs=5
        ),
        config=FLConfig(rounds=3, local_epochs=1),
        seed=seed,
    )
    return IPSS(total_rounds=total_rounds, seed=seed).run(utility)
