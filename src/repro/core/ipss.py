"""IPSS — Importance-Pruned Stratified Sampling (paper Alg. 3).

IPSS is the paper's main contribution: a budgeted MC-SV approximation that
exploits the *key combinations* phenomenon.  Given a sampling budget γ it

1. computes ``k* = max{k : Σ_{j≤k} C(n, j) ≤ γ}`` and exhaustively evaluates
   every coalition with at most ``k*`` clients (these are the high-impact,
   small coalitions),
2. spends the remaining budget on coalitions of size ``k* + 1`` sampled so
   that every client appears equally often (constraint (3) of Alg. 3, which
   balances the approximation error across clients), and
3. estimates each client's value with the MC-SV formula restricted to the
   evaluated coalitions.

Under the FL linear-regression model the relative error is bounded by
``O((n − k*) / (k* · n · t))`` (Thm. 3) and the time complexity is ``O(τ·γ)``
where τ is the cost of one FL training.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.combinatorics import (
    all_coalitions,
    balanced_coalitions_of_size,
    client_appearance_counts,
    count_coalitions_up_to,
    marginal_coefficient,
    max_fully_enumerable_size,
)
from repro.utils.rng import SeedLike


class IPSS(ValuationAlgorithm):
    """Importance-Pruned Stratified Sampling for MC-SV data valuation.

    Parameters
    ----------
    total_rounds:
        The sampling budget γ — the maximum number of coalition utility
        evaluations (FL trainings) the algorithm may spend.
    include_partial_stratum:
        Whether to spend the leftover budget on the (k*+1)-sized stratum
        (lines 8-14 of Alg. 3).  Disabling this reduces IPSS to K-Greedy with
        ``K = k*`` and is exposed for the ablation benchmark.
    """

    def __init__(
        self,
        total_rounds: int = 32,
        include_partial_stratum: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 1:
            raise ValueError(f"total_rounds must be >= 1, got {total_rounds}")
        self.total_rounds = total_rounds
        self.include_partial_stratum = include_partial_stratum
        self.name = "IPSS"
        self._last_k_star: int | None = None
        self._last_partial_count: int = 0

    # ------------------------------------------------------------------ #
    def k_star(self, n_clients: int) -> int:
        """The largest fully enumerated coalition size for the current budget."""
        return max_fully_enumerable_size(n_clients, self.total_rounds)

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        k_star = self.k_star(n_clients)
        if k_star < 0:
            raise ValueError(
                f"sampling budget {self.total_rounds} cannot even evaluate the "
                "empty coalition; increase total_rounds"
            )
        self._last_k_star = k_star

        # Phase 1 (lines 1-7): evaluate all coalitions of size <= k* — one
        # batch, trained concurrently by batch-capable oracles.
        utilities = self._batch_utilities(
            utility,
            (c for c in all_coalitions(n_clients) if len(c) <= k_star),
        )

        # Phase 2 (lines 8-14): spend the leftover budget on balanced samples
        # from the (k*+1)-sized stratum, again as a single batch.
        partial: list[frozenset] = []
        if self.include_partial_stratum and k_star + 1 <= n_clients:
            leftover = self.total_rounds - count_coalitions_up_to(n_clients, k_star)
            if leftover > 0:
                partial = balanced_coalitions_of_size(
                    n_clients, k_star + 1, leftover, rng
                )
                utilities.update(self._batch_utilities(utility, partial))
        self._last_partial_count = len(partial)
        partial_set = set(partial)

        # Phase 3 (lines 15-17): MC-SV restricted to the evaluated coalitions.
        values = np.zeros(n_clients)
        for client in range(n_clients):
            total = 0.0
            for coalition, base_utility in utilities.items():
                if client in coalition:
                    continue
                with_client = coalition | {client}
                if len(coalition) < k_star:
                    # Both endpoints were fully enumerated in phase 1.
                    weight = marginal_coefficient(n_clients, len(coalition))
                    total += weight * (utilities[with_client] - base_utility)
                elif len(coalition) == k_star and with_client in partial_set:
                    weight = marginal_coefficient(n_clients, len(coalition))
                    total += weight * (utilities[with_client] - base_utility)
            values[client] = total
        return values

    # ------------------------------------------------------------------ #
    def sampling_plan(self, n_clients: int) -> dict:
        """Describe how the budget would be spent for ``n`` clients (no training)."""
        k_star = self.k_star(n_clients)
        exhaustive = count_coalitions_up_to(n_clients, max(k_star, 0)) if k_star >= 0 else 0
        leftover = max(0, self.total_rounds - exhaustive)
        return {
            "total_rounds": self.total_rounds,
            "k_star": k_star,
            "exhaustive_evaluations": exhaustive,
            "partial_stratum_size": k_star + 1 if k_star + 1 <= n_clients else None,
            "partial_budget": leftover if self.include_partial_stratum else 0,
        }

    def last_appearance_counts(self, n_clients: int, coalitions) -> np.ndarray:
        """Client appearance counts of a phase-2 sample (for fairness checks)."""
        return client_appearance_counts(coalitions, n_clients)

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "k_star": self._last_k_star,
            "partial_stratum_samples": self._last_partial_count,
            "include_partial_stratum": self.include_partial_stratum,
        }
