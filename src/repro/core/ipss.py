"""IPSS — Importance-Pruned Stratified Sampling (paper Alg. 3).

IPSS is the paper's main contribution: a budgeted MC-SV approximation that
exploits the *key combinations* phenomenon.  Given a sampling budget γ it

1. computes ``k* = max{k : Σ_{j≤k} C(n, j) ≤ γ}`` and exhaustively evaluates
   every coalition with at most ``k*`` clients (these are the high-impact,
   small coalitions),
2. spends the remaining budget on coalitions of size ``k* + 1`` sampled so
   that every client appears equally often (constraint (3) of Alg. 3, which
   balances the approximation error across clients), and
3. estimates each client's value with the MC-SV formula restricted to the
   evaluated coalitions.

Under the FL linear-regression model the relative error is bounded by
``O((n − k*) / (k* · n · t))`` (Thm. 3) and the time complexity is ``O(τ·γ)``
where τ is the cost of one FL training.

Evaluation is incremental: one coalition-size stratum per chunk during the
exhaustive phase (each planned through ``_batch_utilities``), then one final
chunk for the balanced partial stratum.  Marginal contributions fold as soon
as both endpoints are evaluated — per client in the monolithic loop's exact
order — so exhausting the chunks is bitwise-identical to the one-shot run,
while a convergence-based stopping rule can cut the later (low-coefficient)
strata and save their FL trainings.
"""

from __future__ import annotations

import numpy as np

from repro.core.anytime import StepResult
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.core.exact import mc_accumulate_stratum
from repro.core.plans import DEFAULT_PLAN_BATCH
from repro.utils.combinatorics import (
    balanced_coalitions_of_size,
    client_appearance_counts,
    coalitions_of_size,
    count_coalitions_up_to,
    marginal_coefficient,
    max_fully_enumerable_size,
)
from repro.utils.rng import SeedLike


class IPSS(ValuationAlgorithm):
    """Importance-Pruned Stratified Sampling for MC-SV data valuation.

    Parameters
    ----------
    total_rounds:
        The sampling budget γ — the maximum number of coalition utility
        evaluations (FL trainings) the algorithm may spend.
    include_partial_stratum:
        Whether to spend the leftover budget on the (k*+1)-sized stratum
        (lines 8-14 of Alg. 3).  Disabling this reduces IPSS to K-Greedy with
        ``K = k*`` and is exposed for the ablation benchmark.
    partial_chunk_size:
        Evaluation granularity of the phase-2 stratum in the anytime
        protocol: the balanced sample is drawn once (one RNG consumption, so
        values stay chunk-boundary-invariant) and then evaluated in slices of
        this many coalitions, each slice yielding a snapshot.  The partial
        stratum often dominates the budget — on the paper's n=10/γ=32 grid it
        is 21 of 32 evaluations — so this is where convergence-based early
        stop actually saves trainings.  ``None`` evaluates it in one chunk.
    """

    incremental = True

    def __init__(
        self,
        total_rounds: int = 32,
        include_partial_stratum: bool = True,
        partial_chunk_size: int | None = 8,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 1:
            raise ValueError(f"total_rounds must be >= 1, got {total_rounds}")
        if partial_chunk_size is not None and partial_chunk_size < 1:
            raise ValueError(
                f"partial_chunk_size must be >= 1 or None, got {partial_chunk_size}"
            )
        self.total_rounds = total_rounds
        self.include_partial_stratum = include_partial_stratum
        self.partial_chunk_size = partial_chunk_size
        self.name = "IPSS"
        self._last_k_star: int | None = None
        self._last_partial_count: int = 0

    # ------------------------------------------------------------------ #
    def k_star(self, n_clients: int) -> int:
        """The largest fully enumerated coalition size for the current budget."""
        return max_fully_enumerable_size(n_clients, self.total_rounds)

    def _state_config(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "include_partial_stratum": self.include_partial_stratum,
        }

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        k_star = self.k_star(n_clients)
        if k_star < 0:
            raise ValueError(
                f"sampling budget {self.total_rounds} cannot even evaluate the "
                "empty coalition; increase total_rounds"
            )
        self._last_k_star = k_star
        self._last_partial_count = 0
        return {
            "utilities": {},
            "next_size": 0,
            "k_star": k_star,
            "partial": None,
            "partial_evaluated": 0,
            "partial_count": 0,
            "values": np.zeros(n_clients),
            "counts": np.zeros(n_clients),
        }

    def _has_partial_phase(self, n_clients: int, k_star: int) -> bool:
        if not self.include_partial_stratum or k_star + 1 > n_clients:
            return False
        return self.total_rounds - count_coalitions_up_to(n_clients, k_star) > 0

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        k_star = int(payload["k_star"])
        self._last_k_star = k_star
        values, counts = payload["values"], payload["counts"]
        size = int(payload["next_size"])

        if size <= k_star:
            # Phase 1 (lines 1-7): one exhaustively-enumerated stratum per
            # chunk, streamed through the oracle in bounded plan batches so
            # nothing C(n, size)-shaped is materialised at once.
            payload["utilities"].update(
                self._batch_utilities(
                    utility,
                    coalitions_of_size(n_clients, size),
                    batch_size=DEFAULT_PLAN_BATCH,
                )
            )
            if 1 <= size:
                # Marginals based on the (size-1) stratum now have both
                # endpoints; fold them in the monolithic loop's order.
                mc_accumulate_stratum(
                    payload["utilities"], n_clients, size - 1, values, counts
                )
            payload["next_size"] = size + 1
            done = size >= k_star and not self._has_partial_phase(n_clients, k_star)
            self._last_partial_count = int(payload["partial_count"])
            return StepResult(
                values=values.copy(), stderr=None, n_samples=counts.copy(), done=done
            )

        # Phase 2 (lines 8-14): the balanced (k*+1)-stratum sample.  The whole
        # sample is drawn in one RNG consumption (chunk boundaries must not
        # move the stream), then evaluated slice by slice; each slice is one
        # ``_batch_utilities`` plan and one snapshot.
        if payload["partial"] is None:
            leftover = self.total_rounds - count_coalitions_up_to(n_clients, k_star)
            payload["partial"] = balanced_coalitions_of_size(
                n_clients, k_star + 1, leftover, rng
            )
            payload["partial_evaluated"] = 0
            payload["partial_count"] = len(payload["partial"])
        partial = payload["partial"]
        self._last_partial_count = len(partial)
        cursor = int(payload["partial_evaluated"])
        if self.partial_chunk_size is None:
            chunk = partial[cursor:]
        else:
            chunk = partial[cursor : cursor + self.partial_chunk_size]
        if chunk:
            payload["utilities"].update(self._batch_utilities(utility, chunk))
        cursor += len(chunk)
        payload["partial_evaluated"] = cursor
        evaluated_partial = partial[:cursor]

        # Fold the size-k* marginals against the evaluated part of the sample
        # onto a *copy* of the phase-1 accumulators.  Rather than re-walking
        # the entire C(n, k*) base stratum per chunk, only the pairs the
        # sample can actually form are folded: each evaluated (k*+1)-sized
        # coalition T yields one (T \ {i}, i) pair per member, and sorting
        # the pairs by (base, client) reproduces the monolithic nested loop's
        # (lexicographic base, ascending client) visit order restricted to
        # its hits — so once the sample is fully evaluated the final chunk is
        # bitwise-identical to the one-shot computation, at
        # O(|sample|·k*·log|sample|) per chunk instead of O(C(n, k*)·n).
        values = values.copy()
        counts = counts.copy()
        weight = (
            marginal_coefficient(n_clients, k_star)
            if k_star <= n_clients - 1
            else 0.0
        )
        contrib_sum = np.zeros(n_clients)
        contrib_sumsq = np.zeros(n_clients)
        contrib_count = np.zeros(n_clients)
        if evaluated_partial and k_star <= n_clients - 1:
            pairs = [
                (tuple(sorted(with_client - {client})), client, with_client)
                for with_client in evaluated_partial
                for client in with_client
            ]
            pairs.sort(key=lambda pair: (pair[0], pair[1]))
            for base_members, client, with_client in pairs:
                contribution = (
                    payload["utilities"][with_client]
                    - payload["utilities"][frozenset(base_members)]
                )
                values[client] += weight * contribution
                counts[client] += 1
                contrib_sum[client] += contribution
                contrib_sumsq[client] += contribution * contribution
                contrib_count[client] += 1
        return StepResult(
            values=values,
            stderr=self._remaining_uncertainty(
                n_clients, partial, weight, contrib_sum, contrib_sumsq, contrib_count
            ),
            n_samples=counts,
            done=cursor >= len(partial),
        )

    @staticmethod
    def _remaining_uncertainty(
        n_clients: int,
        partial: list,
        weight: float,
        contrib_sum: np.ndarray,
        contrib_sumsq: np.ndarray,
        contrib_count: np.ndarray,
    ) -> np.ndarray:
        """Per-client scale of the not-yet-evaluated phase-2 contribution.

        IPSS is a deterministic plan, so this is *convergence-to-plan*
        uncertainty, not a statistical CI on the true Shapley value: for each
        client it bounds how far the value can still move before the plan is
        exhausted, by projecting the sample standard deviation of the
        client's evaluated phase-2 marginals onto its remaining planned
        appearances (``weight · sqrt(remaining · s²)``).  Clients whose
        planned appearances are all evaluated report exactly ``0.0``;
        clients with fewer than two evaluated marginals but work remaining
        report ``NaN`` (unknown, never a false-certainty zero) — matching
        the stderr policy of the sampling estimators, so
        ``ConvergenceRule(metric="ci")`` can stop IPSS early once every
        client's residual is small, and never stops on ignorance.
        """
        planned = client_appearance_counts(partial, n_clients).astype(float)
        remaining = planned - contrib_count
        stderr = np.zeros(n_clients)
        for client in range(n_clients):
            if remaining[client] <= 0:
                stderr[client] = 0.0
            elif contrib_count[client] >= 2:
                mean = contrib_sum[client] / contrib_count[client]
                variance = max(
                    0.0,
                    (contrib_sumsq[client] - contrib_count[client] * mean * mean)
                    / (contrib_count[client] - 1.0),
                )
                stderr[client] = weight * float(
                    np.sqrt(remaining[client] * variance)
                )
            else:
                stderr[client] = np.nan
        return stderr

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    # ------------------------------------------------------------------ #
    def sampling_plan(self, n_clients: int) -> dict:
        """Describe how the budget would be spent for ``n`` clients (no training)."""
        k_star = self.k_star(n_clients)
        exhaustive = count_coalitions_up_to(n_clients, max(k_star, 0)) if k_star >= 0 else 0
        leftover = max(0, self.total_rounds - exhaustive)
        return {
            "total_rounds": self.total_rounds,
            "k_star": k_star,
            "exhaustive_evaluations": exhaustive,
            "partial_stratum_size": k_star + 1 if k_star + 1 <= n_clients else None,
            "partial_budget": leftover if self.include_partial_stratum else 0,
        }

    def last_appearance_counts(self, n_clients: int, coalitions) -> np.ndarray:
        """Client appearance counts of a phase-2 sample (for fairness checks)."""
        return client_appearance_counts(coalitions, n_clients)

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "k_star": self._last_k_star,
            "partial_stratum_samples": self._last_partial_count,
            "include_partial_stratum": self.include_partial_stratum,
        }
