"""Core valuation layer: the paper's contribution plus all compared baselines.

Public surface
--------------
Exact schemes
    :class:`MCShapley`, :class:`CCShapley`, :class:`PermShapley`
The paper's contributions
    :class:`StratifiedSampling` (Alg. 1), :class:`KGreedy` (Alg. 2),
    :class:`IPSS` (Alg. 3)
Baselines
    :class:`ExtendedTMC`, :class:`ExtendedGTB`, :class:`CCShapleySampling`,
    :class:`DIGFL`, :class:`ORBaseline`, :class:`LambdaMR`, :class:`GTGShapley`
Support
    :class:`ValuationResult`, error/fairness metrics, variance analysis and
    the closed-form theory of Lemma 1 / Theorem 3; :class:`StratumPlan` and
    the shared :func:`check_enumeration_limit` guard for large federations.
"""

from repro.core.result import ValuationResult
from repro.core.anytime import (
    AllOf,
    AnyOf,
    BudgetRule,
    ConvergenceRule,
    EstimatorState,
    StoppingRule,
    ValuationSnapshot,
    WallClockRule,
    parse_stopping_rule,
)
from repro.core.base import (
    GradientBasedValuation,
    SupportsBatchEvaluation,
    UtilityFunction,
    ValuationAlgorithm,
)
from repro.core.exact import CCShapley, MCShapley, PermShapley, exact_shapley
from repro.core.plans import (
    DEFAULT_PLAN_BATCH,
    StratumPlan,
    check_enumeration_limit,
    iter_combinations_from,
)
from repro.core.stratified import StratifiedSampling, allocate_rounds
from repro.core.k_greedy import KGreedy
from repro.core.ipss import IPSS
from repro.core.metrics import (
    efficiency_gap,
    fairness_proxy_error,
    max_absolute_error,
    null_player_error,
    rank_correlation,
    relative_error_l2,
    symmetry_error,
)
from repro.core.variance import (
    VarianceComparison,
    contribution_variance,
    empirical_scheme_variance,
    theoretical_variance_cc,
    theoretical_variance_mc,
)
from repro.core import theory
from repro.core.baselines import (
    BanzhafSampling,
    CCShapleySampling,
    DIGFL,
    ExtendedGTB,
    ExtendedTMC,
    GTGShapley,
    LambdaMR,
    LeaveOneOut,
    ORBaseline,
    RandomValuation,
)

__all__ = [
    "ValuationResult",
    "ValuationSnapshot",
    "EstimatorState",
    "StoppingRule",
    "BudgetRule",
    "ConvergenceRule",
    "WallClockRule",
    "AnyOf",
    "AllOf",
    "parse_stopping_rule",
    "ValuationAlgorithm",
    "GradientBasedValuation",
    "SupportsBatchEvaluation",
    "UtilityFunction",
    "MCShapley",
    "CCShapley",
    "PermShapley",
    "exact_shapley",
    "StratumPlan",
    "DEFAULT_PLAN_BATCH",
    "check_enumeration_limit",
    "iter_combinations_from",
    "StratifiedSampling",
    "allocate_rounds",
    "KGreedy",
    "IPSS",
    "relative_error_l2",
    "max_absolute_error",
    "rank_correlation",
    "null_player_error",
    "symmetry_error",
    "fairness_proxy_error",
    "efficiency_gap",
    "VarianceComparison",
    "contribution_variance",
    "empirical_scheme_variance",
    "theoretical_variance_mc",
    "theoretical_variance_cc",
    "theory",
    "ExtendedTMC",
    "ExtendedGTB",
    "CCShapleySampling",
    "DIGFL",
    "ORBaseline",
    "LambdaMR",
    "GTGShapley",
    "BanzhafSampling",
    "LeaveOneOut",
    "RandomValuation",
]
