"""Extended-GTB: Group-Testing-Based Shapley estimation, extended to FL.

Jia et al.'s group-testing estimator draws random coalitions whose size
follows the distribution ``q(k) ∝ 1/(k(n−k))``, evaluates their utilities and
from them builds unbiased estimates of the pairwise Shapley differences
``φ_i − φ_j``.  The values are then recovered by solving a small feasibility
problem subject to the efficiency constraint ``Σ φ_i = U(N) − U(∅)``.

The paper extends the method to FL (each evaluation is a full FL training)
and notes that when no exact feasible solution exists the constraints are
relaxed incrementally; here the relaxation is realised as a least-squares
solve of the same constrained system, which is its natural limit.
"""

from __future__ import annotations

import numpy as np

from repro.core.anytime import StepResult
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class ExtendedGTB(ValuationAlgorithm):
    """Group-testing-based Shapley approximation under an evaluation budget.

    Incremental: the anchor evaluations (U(N), U(∅)) form the first chunk,
    then each chunk draws and evaluates up to ``chunk_rounds`` coalition
    samples and re-solves the (cheap) constrained least-squares recovery over
    all samples so far.  Samples are evaluated one at a time through the
    oracle's single-coalition path: the paper's budget charges *every* draw,
    including repeats, so batch deduplication would change the accounting.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations; two evaluations are spent
        on U(N) and U(∅), the rest on sampled coalitions.
    chunk_rounds:
        Coalition samples per incremental chunk (checkpoint/early-stop
        granularity only — values are chunk-boundary-invariant).
    """

    name = "Extended-GTB"
    incremental = True

    def __init__(
        self, total_rounds: int = 32, chunk_rounds: int = 8, seed: SeedLike = None
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 4:
            raise ValueError("total_rounds must be at least 4 for GTB")
        if chunk_rounds < 1:
            raise ValueError(f"chunk_rounds must be >= 1, got {chunk_rounds}")
        self.total_rounds = total_rounds
        self.chunk_rounds = chunk_rounds
        self._samples_used = 0

    @staticmethod
    def _size_distribution(n_clients: int) -> np.ndarray:
        """q(k) ∝ 1/(k(n−k)) over coalition sizes k = 1..n−1."""
        sizes = np.arange(1, n_clients)
        weights = 1.0 / (sizes * (n_clients - sizes))
        return weights / weights.sum()

    def _state_config(self) -> dict:
        return {"total_rounds": self.total_rounds}

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        self._samples_used = 0
        return {
            "membership": [],
            "utilities": [],
            "budget": 0,
            "grand": None,
            "empty": None,
            "anchored": False,
            "samples_used": 0,
        }

    def _solve(self, payload: dict, n_clients: int) -> np.ndarray:
        """Constrained least-squares recovery from the samples drawn so far."""
        grand_utility, empty_utility = payload["grand"], payload["empty"]
        membership, utilities = payload["membership"], payload["utilities"]
        if not membership:
            return np.full(n_clients, (grand_utility - empty_utility) / n_clients)
        normalisation = float(
            (1.0 / (np.arange(1, n_clients) * (n_clients - np.arange(1, n_clients)))).sum()
            * n_clients
        )
        membership_matrix = np.stack(membership)
        utility_vector = np.asarray(utilities)

        # Estimated pairwise differences: Δ_{ij} ≈ Z/T · Σ_t U_t (B_ti − B_tj).
        t = len(utility_vector)
        weighted = membership_matrix * utility_vector[:, None]
        column_means = weighted.sum(axis=0) / t
        delta = normalisation * (column_means[:, None] - column_means[None, :])

        # Recover φ from the difference matrix under the efficiency constraint
        # via least squares: minimise Σ_{i<j} (φ_i − φ_j − Δ_ij)² s.t. Σφ = U(N) − U(∅).
        # The unconstrained minimiser is φ_i = mean_j Δ_ij + c; the constraint
        # fixes the constant c.
        unconstrained = delta.mean(axis=1)
        total = grand_utility - empty_utility
        constant = (total - unconstrained.sum()) / n_clients
        return unconstrained + constant

    def _appearances(self, payload: dict, n_clients: int) -> np.ndarray:
        if not payload["membership"]:
            return np.zeros(n_clients)
        return np.stack(payload["membership"]).sum(axis=0)

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        self._samples_used = int(payload.get("samples_used", self._samples_used))
        if n_clients == 1:
            values = np.array([utility(frozenset({0})) - utility(frozenset())])
            return StepResult(values=values, stderr=None, n_samples=None, done=True)

        if not payload["anchored"]:
            payload["grand"] = float(utility(frozenset(range(n_clients))))
            payload["empty"] = float(utility(frozenset()))
            payload["budget"] = self.total_rounds - 2
            payload["anchored"] = True
            return StepResult(
                values=self._solve(payload, n_clients),
                stderr=None,
                n_samples=self._appearances(payload, n_clients),
                done=payload["budget"] <= 0,
            )

        budget = int(payload["budget"])
        size_probabilities = self._size_distribution(n_clients)
        drawn = 0
        while budget > 0 and drawn < self.chunk_rounds:
            size = int(rng.choice(np.arange(1, n_clients), p=size_probabilities))
            members = rng.choice(n_clients, size=size, replace=False)
            coalition = frozenset(int(m) for m in members)
            value = float(utility(coalition))
            budget -= 1
            drawn += 1
            self._samples_used += 1
            row = np.zeros(n_clients)
            row[list(coalition)] = 1.0
            payload["membership"].append(row)
            payload["utilities"].append(value)
        payload["budget"] = budget
        payload["samples_used"] = self._samples_used
        return StepResult(
            values=self._solve(payload, n_clients),
            stderr=None,
            n_samples=self._appearances(payload, n_clients),
            done=budget <= 0,
        )

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    def _metadata(self) -> dict:
        return {"total_rounds": self.total_rounds, "samples_used": self._samples_used}
