"""Extended-GTB: Group-Testing-Based Shapley estimation, extended to FL.

Jia et al.'s group-testing estimator draws random coalitions whose size
follows the distribution ``q(k) ∝ 1/(k(n−k))``, evaluates their utilities and
from them builds unbiased estimates of the pairwise Shapley differences
``φ_i − φ_j``.  The values are then recovered by solving a small feasibility
problem subject to the efficiency constraint ``Σ φ_i = U(N) − U(∅)``.

The paper extends the method to FL (each evaluation is a full FL training)
and notes that when no exact feasible solution exists the constraints are
relaxed incrementally; here the relaxation is realised as a least-squares
solve of the same constrained system, which is its natural limit.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class ExtendedGTB(ValuationAlgorithm):
    """Group-testing-based Shapley approximation under an evaluation budget.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations; two evaluations are spent
        on U(N) and U(∅), the rest on sampled coalitions.
    """

    name = "Extended-GTB"

    def __init__(self, total_rounds: int = 32, seed: SeedLike = None) -> None:
        super().__init__(seed=seed)
        if total_rounds < 4:
            raise ValueError("total_rounds must be at least 4 for GTB")
        self.total_rounds = total_rounds
        self._samples_used = 0

    @staticmethod
    def _size_distribution(n_clients: int) -> np.ndarray:
        """q(k) ∝ 1/(k(n−k)) over coalition sizes k = 1..n−1."""
        sizes = np.arange(1, n_clients)
        weights = 1.0 / (sizes * (n_clients - sizes))
        return weights / weights.sum()

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_clients == 1:
            return np.array([utility(frozenset({0})) - utility(frozenset())])

        grand_utility = utility(frozenset(range(n_clients)))
        empty_utility = utility(frozenset())
        budget = self.total_rounds - 2
        size_probabilities = self._size_distribution(n_clients)
        normalisation = float(
            (1.0 / (np.arange(1, n_clients) * (n_clients - np.arange(1, n_clients)))).sum()
            * n_clients
        )

        membership = []
        utilities = []
        self._samples_used = 0
        while budget > 0:
            size = int(rng.choice(np.arange(1, n_clients), p=size_probabilities))
            members = rng.choice(n_clients, size=size, replace=False)
            coalition = frozenset(int(m) for m in members)
            value = utility(coalition)
            budget -= 1
            self._samples_used += 1
            row = np.zeros(n_clients)
            row[list(coalition)] = 1.0
            membership.append(row)
            utilities.append(value)

        if not membership:
            return np.full(n_clients, (grand_utility - empty_utility) / n_clients)

        membership_matrix = np.stack(membership)
        utility_vector = np.asarray(utilities)

        # Estimated pairwise differences: Δ_{ij} ≈ Z/T · Σ_t U_t (B_ti − B_tj).
        t = len(utility_vector)
        weighted = membership_matrix * utility_vector[:, None]
        column_means = weighted.sum(axis=0) / t
        delta = normalisation * (column_means[:, None] - column_means[None, :])

        # Recover φ from the difference matrix under the efficiency constraint
        # via least squares: minimise Σ_{i<j} (φ_i − φ_j − Δ_ij)² s.t. Σφ = U(N) − U(∅).
        # The unconstrained minimiser is φ_i = mean_j Δ_ij + c; the constraint
        # fixes the constant c.
        unconstrained = delta.mean(axis=1)
        total = grand_utility - empty_utility
        constant = (total - unconstrained.sum()) / n_clients
        return unconstrained + constant

    def _metadata(self) -> dict:
        return {"total_rounds": self.total_rounds, "samples_used": self._samples_used}
