"""λ-MR: multi-round gradient-reconstruction Shapley (Wei et al., 2020).

λ-MR values clients round by round: within each training round ``r`` the
Shapley value is computed over models reconstructed from that round's local
updates (starting from the round's recorded global model), and the per-round
values are combined with round weights ``λ_r``.  Because the per-round SV
enumerates all ``2^n`` coalition reconstructions for every round, its cost
grows exponentially with the number of clients — the behaviour the paper
observes ("the time cost of λ-MR increases exponentially with number of FL
clients") — but it avoids any additional FL training.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GradientBasedValuation
from repro.core.plans import check_enumeration_limit
from repro.utils.combinatorics import all_coalitions, marginal_coefficient
from repro.utils.rng import SeedLike

MAX_CLIENTS_FOR_FULL_ENUMERATION = 16


class LambdaMR(GradientBasedValuation):
    """Round-weighted multi-round reconstruction Shapley.

    Parameters
    ----------
    decay:
        Round weight decay λ: round ``r`` (0-based) receives weight
        ``decay**r``, normalised to sum to one.  ``decay=1`` weights every
        round equally, matching the plain MR scheme; values below one emphasise
        early rounds where most of the accuracy is gained.
    max_exact_clients:
        Cap on the per-round coalition enumeration (default
        :data:`MAX_CLIENTS_FOR_FULL_ENUMERATION`); larger federations fail
        fast with the shared actionable guard.
    """

    name = "lambda-MR"

    def __init__(
        self,
        decay: float = 1.0,
        max_exact_clients: int | None = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if decay <= 0:
            raise ValueError(f"decay must be positive, got {decay}")
        self.decay = decay
        self.max_exact_clients = (
            MAX_CLIENTS_FOR_FULL_ENUMERATION
            if max_exact_clients is None
            else int(max_exact_clients)
        )

    def _round_weights(self, n_rounds: int) -> np.ndarray:
        weights = np.power(self.decay, np.arange(n_rounds, dtype=float))
        return weights / weights.sum()

    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        clients = history.clients()
        n_clients = len(clients)
        check_enumeration_limit(
            n_clients, self.max_exact_clients, "lambda-MR (per-round MC-SV)"
        )
        index_to_client = {index: client for index, client in enumerate(clients)}
        weights = self._round_weights(history.n_rounds)

        values = np.zeros(n_clients)
        for round_index, record in enumerate(history.rounds):
            # Utility of every reconstructed sub-coalition model for this round.
            utilities: dict[frozenset, float] = {}
            for coalition in all_coalitions(n_clients):
                members = frozenset(index_to_client[i] for i in coalition)
                parameters = history.reconstruct_round(round_index, members)
                utilities[coalition] = self._evaluate_parameters(
                    model, parameters, test_dataset
                )
            round_values = np.zeros(n_clients)
            for client in range(n_clients):
                for coalition, base_utility in utilities.items():
                    if client in coalition:
                        continue
                    weight = marginal_coefficient(n_clients, len(coalition))
                    round_values[client] += weight * (
                        utilities[coalition | {client}] - base_utility
                    )
            values += weights[round_index] * round_values
        return values

    def _metadata(self) -> dict:
        return {"decay": self.decay}
