"""DIG-FL: efficient participant-contribution evaluation (Wang et al., ICDE 2022).

DIG-FL estimates each participant's contribution with only ``O(n)`` extra
evaluations per FL run by scoring, at every training round, how much each
client's local update helps the global model on the validation set.  Our
implementation follows that recipe on top of the recorded training history:

* at round ``r`` the utility of the round's starting global model and of the
  round's aggregated model are measured on the test set;
* each client ``i`` receives a share of the round's utility improvement
  proportional to the alignment ``max(0, ⟨Δ_i, Δ_global⟩)`` between its local
  update and the global update (clients whose updates point away from the
  global improvement receive zero for the round, which matches DIG-FL's use of
  only positively correlated gradients);
* per-round scores are summed over rounds.

Like the other gradient-based baselines it requires a parametric FL model, so
the paper (and this implementation) excludes it for XGBoost.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GradientBasedValuation
from repro.utils.rng import SeedLike


class DIGFL(GradientBasedValuation):
    """Per-round gradient-alignment contribution estimator."""

    name = "DIG-FL"

    def __init__(self, seed: SeedLike = None) -> None:
        super().__init__(seed=seed)
        self._rounds_scored = 0

    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        clients = history.clients()
        n_clients = len(clients)
        index_of = {client: position for position, client in enumerate(clients)}
        values = np.zeros(n_clients)
        self._rounds_scored = 0

        for record in history.rounds:
            if record.global_after is None:
                continue
            global_delta = record.global_after - record.global_before
            norm = np.linalg.norm(global_delta)
            utility_before = self._evaluate_parameters(
                model, record.global_before, test_dataset
            )
            utility_after = self._evaluate_parameters(
                model, record.global_after, test_dataset
            )
            round_gain = utility_after - utility_before
            self._rounds_scored += 1

            alignments = np.zeros(n_clients)
            for client_id, update in record.updates.items():
                delta = update.parameters - record.global_before
                if norm > 0:
                    alignments[index_of[client_id]] = max(
                        0.0, float(np.dot(delta, global_delta) / norm)
                    )
            total_alignment = alignments.sum()
            if total_alignment <= 0:
                # No client aligned with the global improvement: split evenly.
                participating = [index_of[c] for c in record.updates]
                if participating:
                    values[participating] += round_gain / len(participating)
                continue
            values += round_gain * alignments / total_alignment
        return values

    def _metadata(self) -> dict:
        return {"rounds_scored": self._rounds_scored}
