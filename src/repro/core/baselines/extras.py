"""Additional valuation baselines from the data-valuation literature.

The paper's related-work section (Sec. VI-B) surveys several valuation
schemes beyond the nine it benchmarks; three cheap and widely used ones are
provided here so downstream users can compare against them as well:

* :class:`LeaveOneOut` — values a client by the utility drop when it is
  removed from the grand coalition (``n + 1`` evaluations).  This is the
  simplest contribution measure and the conceptual core of DIG-FL-style
  linear-evaluation methods.
* :class:`BanzhafSampling` — Monte-Carlo estimate of the Banzhaf value
  (Wang & Jia, "Data Banzhaf"), which weighs all coalitions equally instead of
  by size and is known to be more robust to utility noise.
* :class:`RandomValuation` — uniformly random values, the sanity-check floor
  every real method must beat.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class LeaveOneOut(ValuationAlgorithm):
    """Leave-one-out valuation: ``φ_i = U(N) − U(N \\ {i})``.

    Costs exactly ``n + 1`` coalition evaluations.  It satisfies the
    null-player axiom but not efficiency or symmetry in general, which is why
    the Shapley value is preferred; it remains a useful cheap reference point.
    """

    name = "Leave-One-Out"

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        everyone = frozenset(range(n_clients))
        grand_utility = utility(everyone)
        values = np.zeros(n_clients)
        for client in range(n_clients):
            values[client] = grand_utility - utility(everyone - {client})
        return values


class BanzhafSampling(ValuationAlgorithm):
    """Monte-Carlo Banzhaf value estimation.

    The Banzhaf value of client ``i`` is the average marginal contribution
    ``U(S ∪ {i}) − U(S)`` over coalitions ``S ⊆ N \\ {i}`` drawn uniformly
    (every client included independently with probability 1/2), rather than
    the size-stratified average used by the Shapley value.

    Parameters
    ----------
    total_rounds:
        Budget on coalition utility evaluations; each Monte-Carlo sample costs
        at most two evaluations (the coalition with and without the client).
    """

    name = "Banzhaf"

    def __init__(self, total_rounds: int = 32, seed: SeedLike = None) -> None:
        super().__init__(seed=seed)
        if total_rounds < 2:
            raise ValueError("total_rounds must be at least 2")
        self.total_rounds = total_rounds

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        sums = np.zeros(n_clients)
        counts = np.zeros(n_clients)
        budget = self.total_rounds
        while budget >= 2:
            client = int(rng.integers(0, n_clients))
            mask = rng.random(n_clients) < 0.5
            mask[client] = False
            coalition = frozenset(np.flatnonzero(mask).tolist())
            without = utility(coalition)
            with_client = utility(coalition | {client})
            budget -= 2
            sums[client] += with_client - without
            counts[client] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)

    def _metadata(self) -> dict:
        return {"total_rounds": self.total_rounds}


class RandomValuation(ValuationAlgorithm):
    """Uniformly random values in [0, 1] — the sanity-check floor.

    Any meaningful valuation algorithm must beat this baseline on both the
    relative-error and the rank-correlation metrics.
    """

    name = "Random"

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.random(n_clients)
