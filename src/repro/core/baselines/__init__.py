"""The nine baseline valuation algorithms the paper compares against.

Definition-based (exact): ``Perm-Shapley`` and ``MC-Shapley`` live in
:mod:`repro.core.exact`.  This subpackage contains the approximations:

* sampling-based — :class:`ExtendedTMC`, :class:`ExtendedGTB`,
  :class:`CCShapleySampling`;
* evaluation-efficient — :class:`DIGFL`;
* gradient-based (reconstruct coalition models from the recorded FL history,
  never retrain) — :class:`ORBaseline`, :class:`LambdaMR`, :class:`GTGShapley`.
"""

from repro.core.baselines.extended_tmc import ExtendedTMC
from repro.core.baselines.extended_gtb import ExtendedGTB
from repro.core.baselines.cc_shapley import CCShapleySampling
from repro.core.baselines.dig_fl import DIGFL
from repro.core.baselines.or_baseline import ORBaseline
from repro.core.baselines.lambda_mr import LambdaMR
from repro.core.baselines.gtg_shapley import GTGShapley
from repro.core.baselines.extras import BanzhafSampling, LeaveOneOut, RandomValuation

__all__ = [
    "ExtendedTMC",
    "ExtendedGTB",
    "CCShapleySampling",
    "DIGFL",
    "ORBaseline",
    "LambdaMR",
    "GTGShapley",
    "BanzhafSampling",
    "LeaveOneOut",
    "RandomValuation",
]
