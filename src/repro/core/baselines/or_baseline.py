"""OR: gradient-reconstruction Shapley baseline (Song et al., IEEE BigData 2019).

OR ("One-Round reconstruction") avoids retraining FL models for coalitions by
*reusing* the per-round local updates recorded while training the
grand-coalition model: the model of a coalition ``S`` is approximated by
replaying all training rounds but aggregating only the updates of clients in
``S``.  With every coalition model reconstructable at the cost of a few vector
operations, the exact MC-SV formula is evaluated over the reconstructed
utilities.

The method is extremely fast — it trains a single FL model — but the paper
shows it carries no accuracy guarantee and often has the largest error of all
baselines (e.g. Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GradientBasedValuation
from repro.core.plans import check_enumeration_limit
from repro.utils.combinatorics import all_coalitions, marginal_coefficient
from repro.utils.rng import SeedLike

#: reconstructing 2^n coalition models is vector-cheap but still exponential;
#: cap it to keep runaway configurations from hanging
MAX_CLIENTS_FOR_FULL_ENUMERATION = 16


class ORBaseline(GradientBasedValuation):
    """Exact MC-SV over gradient-reconstructed coalition models.

    ``max_exact_clients`` bounds the coalition enumeration (default
    :data:`MAX_CLIENTS_FOR_FULL_ENUMERATION`); beyond it the run fails fast
    with the shared actionable guard instead of reconstructing 2^n models.
    """

    name = "OR"

    def __init__(
        self, max_exact_clients: int | None = None, seed: SeedLike = None
    ) -> None:
        super().__init__(seed=seed)
        self.max_exact_clients = (
            MAX_CLIENTS_FOR_FULL_ENUMERATION
            if max_exact_clients is None
            else int(max_exact_clients)
        )

    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        clients = history.clients()
        n_clients = len(clients)
        check_enumeration_limit(
            n_clients, self.max_exact_clients, "OR (reconstruction MC-SV)"
        )
        index_to_client = {index: client for index, client in enumerate(clients)}

        utilities: dict[frozenset, float] = {}
        for coalition in all_coalitions(n_clients):
            members = frozenset(index_to_client[i] for i in coalition)
            parameters = history.reconstruct_sequential(members)
            utilities[coalition] = self._evaluate_parameters(
                model, parameters, test_dataset
            )

        values = np.zeros(n_clients)
        for client in range(n_clients):
            for coalition, base_utility in utilities.items():
                if client in coalition:
                    continue
                weight = marginal_coefficient(n_clients, len(coalition))
                values[client] += weight * (
                    utilities[coalition | {client}] - base_utility
                )
        return values
