"""Extended-TMC: Truncated Monte Carlo permutation sampling, extended to FL.

Ghorbani & Zou's Truncated Monte Carlo (TMC) Shapley samples random
permutations of the players and accumulates each player's marginal
contribution with respect to its predecessors; a permutation walk is truncated
once the running utility is within a tolerance of the grand-coalition utility,
because the remaining marginal contributions are then negligible.

The paper extends TMC from single-sample valuation to FL by treating each
client's dataset as one player: every prefix evaluation costs a full FL
training.  The sampling budget γ therefore bounds the number of utility
evaluations rather than the number of permutations.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class ExtendedTMC(ValuationAlgorithm):
    """Truncated Monte Carlo permutation sampling under an evaluation budget.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations (FL trainings).  Evaluations
        already cached by the utility oracle still count one round, mirroring
        how the paper budgets all sampling baselines identically.
    truncation_tolerance:
        A permutation walk stops once ``U(N) − U(prefix)`` falls below this
        value; remaining clients in the permutation get zero marginal
        contribution for that permutation.
    max_permutations:
        Safety cap on permutations independent of the budget.
    """

    name = "Extended-TMC"

    def __init__(
        self,
        total_rounds: int = 32,
        truncation_tolerance: float = 0.01,
        max_permutations: int = 10_000,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 2:
            raise ValueError("total_rounds must be at least 2 for TMC")
        if truncation_tolerance < 0:
            raise ValueError("truncation_tolerance must be non-negative")
        self.total_rounds = total_rounds
        self.truncation_tolerance = truncation_tolerance
        self.max_permutations = max_permutations
        self._permutations_used = 0
        self._truncations = 0

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        budget = self.total_rounds
        sums = np.zeros(n_clients)
        counts = np.zeros(n_clients)
        self._permutations_used = 0
        self._truncations = 0

        # The grand-coalition and empty-coalition utilities anchor truncation.
        grand_utility = utility(frozenset(range(n_clients)))
        empty_utility = utility(frozenset())
        budget -= 2

        while budget > 0 and self._permutations_used < self.max_permutations:
            permutation = rng.permutation(n_clients)
            prefix: frozenset = frozenset()
            previous_utility = empty_utility
            self._permutations_used += 1
            for position, client in enumerate(permutation):
                client = int(client)
                if budget <= 0:
                    break
                if abs(grand_utility - previous_utility) < self.truncation_tolerance:
                    # Truncate: remaining clients contribute (approximately) zero.
                    self._truncations += 1
                    for remaining in permutation[position:]:
                        counts[int(remaining)] += 1
                    break
                prefix = prefix | {client}
                if len(prefix) == n_clients:
                    current_utility = grand_utility
                else:
                    current_utility = utility(prefix)
                    budget -= 1
                sums[client] += current_utility - previous_utility
                counts[client] += 1
                previous_utility = current_utility

        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return values

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "truncation_tolerance": self.truncation_tolerance,
            "permutations_used": self._permutations_used,
            "truncations": self._truncations,
        }
