"""Extended-TMC: Truncated Monte Carlo permutation sampling, extended to FL.

Ghorbani & Zou's Truncated Monte Carlo (TMC) Shapley samples random
permutations of the players and accumulates each player's marginal
contribution with respect to its predecessors; a permutation walk is truncated
once the running utility is within a tolerance of the grand-coalition utility,
because the remaining marginal contributions are then negligible.

The paper extends TMC from single-sample valuation to FL by treating each
client's dataset as one player: every prefix evaluation costs a full FL
training.  The sampling budget γ therefore bounds the number of utility
evaluations rather than the number of permutations.
"""

from __future__ import annotations

import numpy as np

from repro.core.anytime import StepResult
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class ExtendedTMC(ValuationAlgorithm):
    """Truncated Monte Carlo permutation sampling under an evaluation budget.

    Incremental: the anchor evaluations (U(N), U(∅)) form the first chunk and
    every permutation walk is one further chunk.  Prefix utilities within a
    walk are inherently sequential — whether to evaluate a prefix depends on
    the previous prefix's utility (truncation) — so they go through the
    oracle's single-coalition path, which still hits its cache/store tiers.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations (FL trainings).  Evaluations
        already cached by the utility oracle still count one round, mirroring
        how the paper budgets all sampling baselines identically.
    truncation_tolerance:
        A permutation walk stops once ``U(N) − U(prefix)`` falls below this
        value; remaining clients in the permutation get zero marginal
        contribution for that permutation.
    max_permutations:
        Safety cap on permutations independent of the budget.
    """

    name = "Extended-TMC"
    incremental = True

    def __init__(
        self,
        total_rounds: int = 32,
        truncation_tolerance: float = 0.01,
        max_permutations: int = 10_000,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 2:
            raise ValueError("total_rounds must be at least 2 for TMC")
        if truncation_tolerance < 0:
            raise ValueError("truncation_tolerance must be non-negative")
        self.total_rounds = total_rounds
        self.truncation_tolerance = truncation_tolerance
        self.max_permutations = max_permutations
        self._permutations_used = 0
        self._truncations = 0

    def _state_config(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "truncation_tolerance": self.truncation_tolerance,
            "max_permutations": self.max_permutations,
        }

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        self._permutations_used = 0
        self._truncations = 0
        return {
            "sums": np.zeros(n_clients),
            "sumsq": np.zeros(n_clients),
            "counts": np.zeros(n_clients),
            "budget": self.total_rounds,
            "permutations_used": 0,
            "truncations": 0,
            "grand": None,
            "empty": None,
            "anchored": False,
        }

    def _step_result(self, payload: dict, done: bool) -> StepResult:
        sums, sumsq, counts = payload["sums"], payload["sumsq"], payload["counts"]
        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            variance = np.where(
                counts >= 2,
                np.maximum(sumsq - counts * values**2, 0.0) / np.maximum(counts - 1, 1),
                0.0,
            )
            # Fewer than two marginal samples -> stderr undefined (NaN), so
            # CI-based stopping rules cannot mistake ignorance for certainty.
            stderr = np.sqrt(
                np.where(counts >= 2, variance / np.maximum(counts, 1), np.nan)
            )
        return StepResult(
            values=values, stderr=stderr, n_samples=counts.copy(), done=done
        )

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        sums, sumsq, counts = payload["sums"], payload["sumsq"], payload["counts"]
        self._permutations_used = int(payload["permutations_used"])
        self._truncations = int(payload["truncations"])

        if not payload["anchored"]:
            # The grand- and empty-coalition utilities anchor truncation.
            payload["grand"] = float(utility(frozenset(range(n_clients))))
            payload["empty"] = float(utility(frozenset()))
            payload["budget"] -= 2
            payload["anchored"] = True
            return self._step_result(payload, done=self._exhausted(payload))

        grand_utility, empty_utility = payload["grand"], payload["empty"]
        budget = int(payload["budget"])
        permutation = rng.permutation(n_clients)
        prefix: frozenset = frozenset()
        previous_utility = empty_utility
        payload["permutations_used"] += 1
        self._permutations_used = int(payload["permutations_used"])
        for position, client in enumerate(permutation):
            client = int(client)
            if budget <= 0:
                break
            if abs(grand_utility - previous_utility) < self.truncation_tolerance:
                # Truncate: remaining clients contribute (approximately) zero.
                payload["truncations"] += 1
                self._truncations = int(payload["truncations"])
                for remaining in permutation[position:]:
                    counts[int(remaining)] += 1
                break
            prefix = prefix | {client}
            if len(prefix) == n_clients:
                current_utility = grand_utility
            else:
                current_utility = float(utility(prefix))
                budget -= 1
            marginal = current_utility - previous_utility
            sums[client] += marginal
            sumsq[client] += marginal**2
            counts[client] += 1
            previous_utility = current_utility
        payload["budget"] = budget
        return self._step_result(payload, done=self._exhausted(payload))

    def _exhausted(self, payload: dict) -> bool:
        return not (
            payload["budget"] > 0
            and payload["permutations_used"] < self.max_permutations
        )

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "truncation_tolerance": self.truncation_tolerance,
            "permutations_used": self._permutations_used,
            "truncations": self._truncations,
        }
