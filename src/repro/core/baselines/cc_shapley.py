"""CC-Shapley: complementary-contribution sampling (Zhang et al., SIGMOD 2023).

Each sampling round draws a random coalition ``S`` and evaluates the
complementary contribution ``U(S) − U(N \\ S)``.  The key efficiency of the
method is that a single pair of evaluations yields a sample for *every*
client: clients inside ``S`` receive the contribution at stratum ``|S|``,
clients outside receive its negation at stratum ``n − |S|``.  Estimates are
averaged within strata and then across strata, exactly like the CC-SV branch
of the unified framework (Alg. 1).

The paper adopts this method as the representative state-of-the-art
sampling baseline and shows that its variance exceeds MC-SV's in FL (Thm. 2,
Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.core.anytime import StepResult, stratified_stderr
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class CCShapleySampling(ValuationAlgorithm):
    """Complementary-contribution Monte Carlo estimator.

    Incremental: the deterministic U(N) − U(∅) pair forms the first chunk,
    then each chunk draws up to ``chunk_rounds`` complementary pairs.  Pairs
    are evaluated one at a time through the oracle's single-coalition path —
    the budget charges every evaluation, including re-drawn coalitions, so
    batch deduplication would change the accounting.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations.  Each sampling round spends
        two evaluations (the coalition and its complement) unless the
        complement is already cached by the oracle.
    stratified:
        When true (default) the coalition size is drawn uniformly from
        ``1..n−1`` (stratified over sizes); otherwise each client is included
        independently with probability 1/2.
    chunk_rounds:
        Sampling rounds per incremental chunk (checkpoint/early-stop
        granularity only — values are chunk-boundary-invariant).
    """

    name = "CC-Shapley"
    incremental = True

    def __init__(
        self,
        total_rounds: int = 32,
        stratified: bool = True,
        chunk_rounds: int = 4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 2:
            raise ValueError("total_rounds must be at least 2")
        if chunk_rounds < 1:
            raise ValueError(f"chunk_rounds must be >= 1, got {chunk_rounds}")
        self.total_rounds = total_rounds
        self.stratified = stratified
        self.chunk_rounds = chunk_rounds
        self._rounds_used = 0

    def _state_config(self) -> dict:
        return {"total_rounds": self.total_rounds, "stratified": self.stratified}

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        self._rounds_used = 0
        return {
            # Per-client per-stratum accumulators of complementary contributions.
            "sums": np.zeros((n_clients, n_clients + 1)),
            "sumsq": np.zeros((n_clients, n_clients + 1)),
            "counts": np.zeros((n_clients, n_clients + 1)),
            "budget": self.total_rounds,
            "rounds_used": 0,
            "anchored": False,
        }

    def _step_result(self, payload: dict, n_clients: int) -> StepResult:
        sums, counts = payload["sums"], payload["counts"]
        values = np.zeros(n_clients)
        for client in range(n_clients):
            total = 0.0
            for stratum in range(1, n_clients + 1):
                if counts[client, stratum] > 0:
                    total += sums[client, stratum] / counts[client, stratum]
            values[client] = total / n_clients
        return StepResult(
            values=values,
            stderr=stratified_stderr(sums, payload["sumsq"], counts),
            n_samples=counts.sum(axis=1),
            done=payload["budget"] < 2,
        )

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        everyone = frozenset(range(n_clients))
        sums, sumsq, counts = payload["sums"], payload["sumsq"], payload["counts"]
        self._rounds_used = int(payload["rounds_used"])

        if not payload["anchored"]:
            payload["anchored"] = True
            # The stratum of size n is a single deterministic complementary
            # pair, U(N) − U(∅), shared by every client; evaluate it once up
            # front so the estimator covers all strata (random sampling below
            # only reaches sizes 1..n−1).
            if payload["budget"] >= 2:
                grand_minus_empty = utility(everyone) - utility(frozenset())
                payload["budget"] -= 2
                for client in range(n_clients):
                    sums[client, n_clients] += grand_minus_empty
                    sumsq[client, n_clients] += grand_minus_empty**2
                    counts[client, n_clients] += 1
            return self._step_result(payload, n_clients)

        budget = int(payload["budget"])
        attempts = 0
        while budget >= 2 and attempts < self.chunk_rounds:
            attempts += 1
            if self.stratified:
                size = int(rng.integers(1, n_clients)) if n_clients > 1 else 1
                members = rng.choice(n_clients, size=size, replace=False)
                coalition = frozenset(int(m) for m in members)
            else:
                mask = rng.random(n_clients) < 0.5
                coalition = frozenset(np.flatnonzero(mask).tolist())
                if len(coalition) in (0, n_clients):
                    continue
            complement = everyone - coalition

            coalition_utility = utility(coalition)
            complement_utility = utility(complement)
            budget -= 2
            payload["rounds_used"] += 1
            self._rounds_used = int(payload["rounds_used"])

            contribution = coalition_utility - complement_utility
            size = len(coalition)
            for client in coalition:
                sums[client, size] += contribution
                sumsq[client, size] += contribution**2
                counts[client, size] += 1
            for client in complement:
                sums[client, n_clients - size] += -contribution
                sumsq[client, n_clients - size] += contribution**2
                counts[client, n_clients - size] += 1
        payload["budget"] = budget
        return self._step_result(payload, n_clients)

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "stratified": self.stratified,
            "rounds_used": self._rounds_used,
        }
