"""CC-Shapley: complementary-contribution sampling (Zhang et al., SIGMOD 2023).

Each sampling round draws a random coalition ``S`` and evaluates the
complementary contribution ``U(S) − U(N \\ S)``.  The key efficiency of the
method is that a single pair of evaluations yields a sample for *every*
client: clients inside ``S`` receive the contribution at stratum ``|S|``,
clients outside receive its negation at stratum ``n − |S|``.  Estimates are
averaged within strata and then across strata, exactly like the CC-SV branch
of the unified framework (Alg. 1).

The paper adopts this method as the representative state-of-the-art
sampling baseline and shows that its variance exceeds MC-SV's in FL (Thm. 2,
Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.rng import SeedLike


class CCShapleySampling(ValuationAlgorithm):
    """Complementary-contribution Monte Carlo estimator.

    Parameters
    ----------
    total_rounds:
        Budget γ on coalition utility evaluations.  Each sampling round spends
        two evaluations (the coalition and its complement) unless the
        complement is already cached by the oracle.
    stratified:
        When true (default) the coalition size is drawn uniformly from
        ``1..n−1`` (stratified over sizes); otherwise each client is included
        independently with probability 1/2.
    """

    name = "CC-Shapley"

    def __init__(
        self,
        total_rounds: int = 32,
        stratified: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if total_rounds < 2:
            raise ValueError("total_rounds must be at least 2")
        self.total_rounds = total_rounds
        self.stratified = stratified
        self._rounds_used = 0

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        everyone = frozenset(range(n_clients))
        # Per-client per-stratum accumulators of complementary contributions.
        sums = np.zeros((n_clients, n_clients + 1))
        counts = np.zeros((n_clients, n_clients + 1))

        budget = self.total_rounds
        self._rounds_used = 0

        # The stratum of size n is a single deterministic complementary pair,
        # U(N) − U(∅), shared by every client; evaluate it once up front so the
        # estimator covers all strata (random sampling below only reaches sizes
        # 1..n−1).
        if budget >= 2:
            grand_minus_empty = utility(everyone) - utility(frozenset())
            budget -= 2
            for client in range(n_clients):
                sums[client, n_clients] += grand_minus_empty
                counts[client, n_clients] += 1
        while budget >= 2:
            if self.stratified:
                size = int(rng.integers(1, n_clients)) if n_clients > 1 else 1
                members = rng.choice(n_clients, size=size, replace=False)
                coalition = frozenset(int(m) for m in members)
            else:
                mask = rng.random(n_clients) < 0.5
                coalition = frozenset(np.flatnonzero(mask).tolist())
                if len(coalition) in (0, n_clients):
                    continue
            complement = everyone - coalition

            coalition_utility = utility(coalition)
            complement_utility = utility(complement)
            budget -= 2
            self._rounds_used += 1

            contribution = coalition_utility - complement_utility
            size = len(coalition)
            for client in coalition:
                sums[client, size] += contribution
                counts[client, size] += 1
            for client in complement:
                sums[client, n_clients - size] += -contribution
                counts[client, n_clients - size] += 1

        values = np.zeros(n_clients)
        for client in range(n_clients):
            total = 0.0
            for stratum in range(1, n_clients + 1):
                if counts[client, stratum] > 0:
                    total += sums[client, stratum] / counts[client, stratum]
            values[client] = total / n_clients
        return values

    def _metadata(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "stratified": self.stratified,
            "rounds_used": self._rounds_used,
        }
