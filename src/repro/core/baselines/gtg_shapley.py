"""GTG-Shapley: Guided Truncation Gradient Shapley (Liu et al., TIST 2022).

GTG-Shapley combines gradient reconstruction with Monte-Carlo permutation
sampling and two levels of truncation:

* **between-round truncation** — a round whose aggregated model improves the
  test utility by less than ``round_tolerance`` is skipped entirely, because
  the marginal contributions inside it are negligible;
* **within-round truncation** — inside a sampled permutation the walk stops
  once the remaining improvement (round-final utility minus the running
  prefix utility) drops below ``truncation_tolerance``.

All coalition models inside a round are reconstructed from the recorded local
updates, so the only FL training performed is the single grand-coalition run.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import GradientBasedValuation
from repro.utils.rng import SeedLike


class GTGShapley(GradientBasedValuation):
    """Permutation-sampled, truncation-guided reconstruction Shapley.

    Parameters
    ----------
    permutations_per_round:
        Number of Monte-Carlo permutations sampled inside each training round.
    round_tolerance:
        Between-round truncation threshold on the round's utility improvement.
    truncation_tolerance:
        Within-round truncation threshold on the remaining improvement.
    """

    name = "GTG-Shapley"

    def __init__(
        self,
        permutations_per_round: int = 8,
        round_tolerance: float = 1e-4,
        truncation_tolerance: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if permutations_per_round < 1:
            raise ValueError("permutations_per_round must be >= 1")
        if round_tolerance < 0 or truncation_tolerance < 0:
            raise ValueError("tolerances must be non-negative")
        self.permutations_per_round = permutations_per_round
        self.round_tolerance = round_tolerance
        self.truncation_tolerance = truncation_tolerance
        self._rounds_skipped = 0

    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        clients = history.clients()
        n_clients = len(clients)
        index_to_client = {index: client for index, client in enumerate(clients)}
        values = np.zeros(n_clients)
        self._rounds_skipped = 0

        for round_index, record in enumerate(history.rounds):
            if record.global_after is None:
                continue
            utility_before = self._evaluate_parameters(
                model, record.global_before, test_dataset
            )
            utility_after = self._evaluate_parameters(
                model, record.global_after, test_dataset
            )
            if abs(utility_after - utility_before) < self.round_tolerance:
                # Between-round truncation: nothing meaningful happened.
                self._rounds_skipped += 1
                continue

            round_sums = np.zeros(n_clients)
            round_counts = np.zeros(n_clients)
            reconstruction_cache: dict[frozenset, float] = {
                frozenset(): utility_before
            }
            for _ in range(self.permutations_per_round):
                permutation = rng.permutation(n_clients)
                prefix: frozenset = frozenset()
                previous_utility = utility_before
                for position, client in enumerate(permutation):
                    client = int(client)
                    if (
                        abs(utility_after - previous_utility)
                        < self.truncation_tolerance
                    ):
                        # Within-round truncation: remaining clients add ~0.
                        for remaining in permutation[position:]:
                            round_counts[int(remaining)] += 1
                        break
                    prefix = prefix | {client}
                    if prefix not in reconstruction_cache:
                        members = frozenset(index_to_client[i] for i in prefix)
                        parameters = history.reconstruct_round(round_index, members)
                        reconstruction_cache[prefix] = self._evaluate_parameters(
                            model, parameters, test_dataset
                        )
                    current_utility = reconstruction_cache[prefix]
                    round_sums[client] += current_utility - previous_utility
                    round_counts[client] += 1
                    previous_utility = current_utility

            with np.errstate(invalid="ignore", divide="ignore"):
                round_values = np.where(
                    round_counts > 0, round_sums / np.maximum(round_counts, 1), 0.0
                )
            values += round_values
        return values

    def _metadata(self) -> dict:
        return {
            "permutations_per_round": self.permutations_per_round,
            "round_tolerance": self.round_tolerance,
            "truncation_tolerance": self.truncation_tolerance,
            "rounds_skipped": self._rounds_skipped,
        }
