"""K-Greedy probe algorithm (paper Alg. 2).

K-Greedy evaluates *every* coalition with at most ``K`` clients and estimates
the MC-SV from those coalitions alone, ignoring larger ones.  The paper uses
it to demonstrate the *key combinations* phenomenon (Fig. 4): on FEMNIST with
ten clients, K = 2 already brings the relative error below 1%, because

* the marginal utility of adding a dataset shrinks once the federation has
  enough data, and
* coalitions of size near (n−1)/2 carry tiny MC-SV coefficients
  ``1 / C(n−1, |S|)``.

IPSS (Alg. 3) turns this observation into a budgeted algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.combinatorics import (
    all_coalitions,
    count_coalitions_up_to,
    marginal_coefficient,
)
from repro.utils.rng import SeedLike


class KGreedy(ValuationAlgorithm):
    """Estimate MC-SV using only coalitions with at most ``max_size`` clients.

    Parameters
    ----------
    max_size:
        The constant ``K`` of Alg. 2: every coalition with ``|S| ≤ K`` is
        trained and evaluated; the MC-SV sums are then restricted to marginal
        contributions whose *both* endpoints were evaluated (``|S| < K``).
    """

    def __init__(self, max_size: int, seed: SeedLike = None) -> None:
        super().__init__(seed=seed)
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.name = f"K-Greedy(K={max_size})"

    def evaluations_required(self, n_clients: int) -> int:
        """Number of coalition evaluations Alg. 2 performs for ``n`` clients."""
        return count_coalitions_up_to(n_clients, self.max_size)

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        max_size = min(self.max_size, n_clients)
        # Phase 1: evaluate all coalitions of size <= K (lines 2-4 of Alg. 2)
        # as one batch, so batch-capable oracles can train them concurrently.
        utilities = self._batch_utilities(
            utility,
            (c for c in all_coalitions(n_clients) if len(c) <= max_size),
        )

        # Phase 2: MC-SV restricted to the evaluated coalitions.  Using the
        # exact MC-SV coefficient 1 / (n · C(n−1, |S|)) guarantees the estimate
        # converges to the exact value as K approaches n (cf. Fig. 4).
        values = np.zeros(n_clients)
        for coalition, base_utility in utilities.items():
            if len(coalition) >= max_size:
                continue
            weight = marginal_coefficient(n_clients, len(coalition))
            for client in range(n_clients):
                if client in coalition:
                    continue
                with_client = coalition | {client}
                values[client] += weight * (utilities[with_client] - base_utility)
        return values

    def _metadata(self) -> dict:
        return {"max_size": self.max_size}
