"""K-Greedy probe algorithm (paper Alg. 2).

K-Greedy evaluates *every* coalition with at most ``K`` clients and estimates
the MC-SV from those coalitions alone, ignoring larger ones.  The paper uses
it to demonstrate the *key combinations* phenomenon (Fig. 4): on FEMNIST with
ten clients, K = 2 already brings the relative error below 1%, because

* the marginal utility of adding a dataset shrinks once the federation has
  enough data, and
* coalitions of size near (n−1)/2 carry tiny MC-SV coefficients
  ``1 / C(n−1, |S|)``.

IPSS (Alg. 3) turns this observation into a budgeted algorithm.

Evaluation is incremental: one coalition-size stratum per chunk (smallest
first, each stratum planned through ``_batch_utilities``), folding marginal
contributions as soon as both endpoints are evaluated — in the same order as
the monolithic loop, so exhausting the chunks is bitwise-identical to it.
"""

from __future__ import annotations

import numpy as np

from repro.core.anytime import StepResult
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.core.exact import mc_accumulate_stratum
from repro.core.plans import DEFAULT_PLAN_BATCH, SAMPLING_ALTERNATIVES
from repro.utils.combinatorics import coalitions_of_size, count_coalitions_up_to
from repro.utils.rng import SeedLike

#: refuse K-Greedy plans beyond this many coalition evaluations by default —
#: C(n, K) grows polynomially but still reaches billions at n=500, K=4
MAX_PLANNED_EVALUATIONS = 10_000_000


class KGreedy(ValuationAlgorithm):
    """Estimate MC-SV using only coalitions with at most ``max_size`` clients.

    Parameters
    ----------
    max_size:
        The constant ``K`` of Alg. 2: every coalition with ``|S| ≤ K`` is
        trained and evaluated; the MC-SV sums are then restricted to marginal
        contributions whose *both* endpoints were evaluated (``|S| < K``).
    max_planned_evaluations:
        Fail-fast guard: refuse to start when the plan requires more than
        this many coalition evaluations — ``C(n, K)`` blows up quietly at
        large ``n`` (n=500, K=4 is ~2.6 billion FL trainings).  ``None``
        disables the guard.
    """

    incremental = True

    def __init__(
        self,
        max_size: int,
        max_planned_evaluations: int | None = MAX_PLANNED_EVALUATIONS,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.max_planned_evaluations = max_planned_evaluations
        self.name = f"K-Greedy(K={max_size})"

    def evaluations_required(self, n_clients: int) -> int:
        """Number of coalition evaluations Alg. 2 performs for ``n`` clients."""
        return count_coalitions_up_to(n_clients, self.max_size)

    def _state_config(self) -> dict:
        return {"max_size": self.max_size}

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        planned = self.evaluations_required(n_clients)
        limit = self.max_planned_evaluations
        if limit is not None and planned > limit:
            raise ValueError(
                f"K-Greedy(K={self.max_size}) would evaluate {planned} "
                f"coalitions for {n_clients} clients (limit {limit}): lower "
                f"K, raise max_planned_evaluations, or use a budgeted "
                f"sampling estimator ({SAMPLING_ALTERNATIVES})."
            )
        return {
            "utilities": {},
            "next_size": 0,
            "values": np.zeros(n_clients),
            "counts": np.zeros(n_clients),
        }

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        effective_max = min(self.max_size, n_clients)
        size = int(payload["next_size"])
        payload["utilities"].update(
            self._batch_utilities(
                utility,
                coalitions_of_size(n_clients, size),
                batch_size=DEFAULT_PLAN_BATCH,
            )
        )
        if size >= 1:
            # Both endpoints of the (size-1)-based marginals are now in; fold
            # them in the monolithic loop's exact order.
            mc_accumulate_stratum(
                payload["utilities"], n_clients, size - 1,
                payload["values"], payload["counts"],
            )
        payload["next_size"] = size + 1
        return StepResult(
            values=payload["values"].copy(),
            stderr=None,
            n_samples=payload["counts"].copy(),
            done=size >= effective_max,
        )

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    def _metadata(self) -> dict:
        return {"max_size": self.max_size}
