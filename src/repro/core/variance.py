"""Variance analysis of the MC-SV and CC-SV computation schemes.

Theorem 2 of the paper shows that, inside the stratified sampling framework
and under the FL linear-regression model, the MC-SV scheme always has lower
variance than the CC-SV scheme.  This module provides

* the closed-form variance expressions used in the proof (Eq. 9 / Eq. 10),
* an empirical variance estimator that repeatedly runs Alg. 1 with either
  scheme and measures the spread of the estimates (Fig. 10), and
* a convenience comparison helper used by the theory benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.base import UtilityFunction
from repro.core.stratified import StratifiedSampling
from repro.utils.rng import RandomState, SeedLike, spawn_rng


def theoretical_variance_mc(
    client_sizes: Sequence[int],
    client: int,
    rounds_per_stratum: Sequence[int],
    noise_variance: float = 1.0,
) -> float:
    """Eq. 9: variance of the MC-SV estimator for one client.

    ``Var[φ̂_i^MC] = Σ_k Σ_S |D_i|² σ² / (n² m_{i,k}²)`` — with one sampled
    coalition per (stratum, round) the inner sum has ``m_{i,k}`` terms, giving
    ``Σ_k |D_i|² σ² / (n² m_{i,k})``.
    """
    sizes = np.asarray(client_sizes, dtype=float)
    n = len(sizes)
    own = sizes[client]
    total = 0.0
    for m_k in rounds_per_stratum:
        if m_k <= 0:
            continue
        total += own**2 * noise_variance / (n**2 * m_k)
    return float(total)


def theoretical_variance_cc(
    client_sizes: Sequence[int],
    client: int,
    rounds_per_stratum: Sequence[int],
    noise_variance: float = 1.0,
    expected_coalition_fraction: float = 0.5,
) -> float:
    """Eq. 10: variance of the CC-SV estimator for one client.

    The coalition-size term ``(|D_S| + |D_i|)² + (|D_N| − |D_S| − |D_i|)²``
    depends on the sampled coalition; we evaluate it at the expected coalition
    size (``expected_coalition_fraction`` of the remaining data), which is the
    comparison point used in the paper's discussion.
    """
    sizes = np.asarray(client_sizes, dtype=float)
    n = len(sizes)
    own = sizes[client]
    others_total = sizes.sum() - own
    coalition_data = expected_coalition_fraction * others_total
    total_data = sizes.sum()
    per_sample = (coalition_data + own) ** 2 + (total_data - coalition_data - own) ** 2
    total = 0.0
    for m_k in rounds_per_stratum:
        if m_k <= 0:
            continue
        total += per_sample * noise_variance / (n**2 * m_k)
    return float(total)


def contribution_variance(
    utility: UtilityFunction,
    n_clients: int,
    n_samples: int = 200,
    seed: SeedLike = None,
) -> dict[str, float]:
    """Empirical variance of a *single* MC vs CC contribution sample.

    Theorem 2 compares the variance of the building blocks of the two schemes:
    one MC sample is ``U(S ∪ {i}) − U(S)``, one CC sample is
    ``U(S ∪ {i}) − U(N \\ (S ∪ {i}))``, with the client ``i`` and the coalition
    ``S ⊆ N \\ {i}`` drawn at random.  This routine draws ``n_samples`` of
    each (using the same ``(i, S)`` pairs for both schemes so the comparison is
    paired) and returns their empirical variances.
    """
    from repro.utils.combinatorics import random_coalition_of_size

    if n_samples < 2:
        raise ValueError("n_samples must be at least 2")
    rng = RandomState(seed)
    everyone = frozenset(range(n_clients))
    mc_samples = np.empty(n_samples)
    cc_samples = np.empty(n_samples)
    for index in range(n_samples):
        client = int(rng.integers(0, n_clients))
        size = int(rng.integers(0, n_clients))
        coalition = random_coalition_of_size(n_clients, size, rng, exclude=[client])
        with_client = coalition | {client}
        mc_samples[index] = utility(with_client) - utility(coalition)
        cc_samples[index] = utility(with_client) - utility(everyone - with_client)
    return {
        "mc_variance": float(mc_samples.var(ddof=1)),
        "cc_variance": float(cc_samples.var(ddof=1)),
        "mc_is_lower": bool(mc_samples.var(ddof=1) <= cc_samples.var(ddof=1)),
    }


@dataclass
class VarianceComparison:
    """Empirical variance of both schemes over repeated runs of Alg. 1.

    ``evaluations`` / ``store_hits`` record what the sweep cost: how many
    oracle evaluations (FL trainings) were actually performed, and how many
    lookups the persistent store served instead (always zero without a
    store; ``evaluations`` is zero when the oracle exposes no counter).
    """

    mc_variance: np.ndarray
    cc_variance: np.ndarray
    mc_mean: np.ndarray
    cc_mean: np.ndarray
    repetitions: int
    evaluations: int = 0
    store_hits: int = 0

    @property
    def mean_mc_variance(self) -> float:
        return float(self.mc_variance.mean())

    @property
    def mean_cc_variance(self) -> float:
        return float(self.cc_variance.mean())

    @property
    def mc_is_lower(self) -> bool:
        """Whether the empirical result agrees with Theorem 2."""
        return self.mean_mc_variance <= self.mean_cc_variance


def empirical_scheme_variance(
    utility: UtilityFunction,
    n_clients: int,
    total_rounds: int,
    repetitions: int = 20,
    seed: SeedLike = None,
    store=None,
    store_namespace: Optional[str] = None,
    n_workers: int = 1,
) -> VarianceComparison:
    """Run Alg. 1 repeatedly with both schemes and measure estimator variance.

    This reproduces the procedure behind Fig. 10: the same utility oracle and
    sampling budget are used for both schemes; only the pairing rule differs.

    With ``store=`` (a :class:`~repro.store.UtilityStore` instance or a path)
    and/or ``n_workers > 1`` the raw oracle is wrapped in one shared
    :class:`~repro.parallel.BatchUtilityOracle` for the whole sweep, so the
    2 × ``repetitions`` stratified runs reuse every already-evaluated
    coalition (within the sweep *and* across processes sharing the store)
    instead of re-training it per repetition — the estimates themselves are
    bitwise-unchanged, only the cost drops.  Because store keys are plain
    coalition sets, ``store_namespace`` must content-address the *task* (use
    :meth:`TaskSpec.fingerprint` or equivalent) — it is therefore required
    whenever a store is attached, so two different tasks can never silently
    serve each other's cached utilities.
    """
    if repetitions < 2:
        raise ValueError("at least two repetitions are needed to estimate variance")
    if store is not None and store_namespace is None:
        raise ValueError(
            "store_namespace is required when a store is attached: store keys "
            "are coalition sets, so the namespace must content-address the "
            "task (e.g. its TaskSpec fingerprint) to keep sweeps over "
            "different utilities from sharing cached values"
        )
    rng = RandomState(seed)
    seeds = spawn_rng(rng, 2 * repetitions)

    oracle = utility
    owns_oracle = False
    if store is not None or n_workers > 1:
        from repro.parallel import BatchUtilityOracle

        oracle = BatchUtilityOracle(
            utility,
            n_clients=n_clients,
            n_workers=n_workers,
            store=store,
            store_namespace=store_namespace,
        )
        owns_oracle = True
    evaluations_before = int(getattr(oracle, "evaluations", 0))
    store_hits_before = int(getattr(oracle, "store_hits", 0))

    mc_estimates = np.zeros((repetitions, n_clients))
    cc_estimates = np.zeros((repetitions, n_clients))
    try:
        for rep in range(repetitions):
            mc_algorithm = StratifiedSampling(
                total_rounds=total_rounds, scheme="mc", seed=seeds[2 * rep]
            )
            cc_algorithm = StratifiedSampling(
                total_rounds=total_rounds, scheme="cc", seed=seeds[2 * rep + 1]
            )
            mc_estimates[rep] = mc_algorithm.run(oracle, n_clients).values
            cc_estimates[rep] = cc_algorithm.run(oracle, n_clients).values
        evaluations = int(getattr(oracle, "evaluations", 0)) - evaluations_before
        store_hits = int(getattr(oracle, "store_hits", 0)) - store_hits_before
    finally:
        if owns_oracle:
            # Closes any store the oracle opened from a path; stores passed in
            # as instances stay with the caller.
            oracle.close()

    return VarianceComparison(
        mc_variance=mc_estimates.var(axis=0, ddof=1),
        cc_variance=cc_estimates.var(axis=0, ddof=1),
        mc_mean=mc_estimates.mean(axis=0),
        cc_mean=cc_estimates.mean(axis=0),
        repetitions=repetitions,
        evaluations=evaluations,
        store_hits=store_hits,
    )
