"""Lazy coalition plans for large-federation valuation.

Every valuation scheme ultimately walks coalitions grouped by size
("strata").  Up to PR 6 the walk materialised each stratum as a Python list
before evaluating it, which is fine at the paper's n=10 grid (largest stratum
C(10,5) = 252) and hopeless at n=500 (C(500,250) ≈ 10^149).  This module
replaces materialised strata with *plans*:

* :class:`StratumPlan` — a cursor-resumable lazy enumeration of one stratum
  in lexicographic order, yielding bounded batches.  Peak memory is
  ``O(batch_size)`` regardless of ``C(n, k)``; the cursor is a plain integer
  rank, so a plan can be checkpointed and resumed mid-stratum.
* :func:`iter_combinations_from` — the underlying generator: unrank the
  cursor once (combinatorial number system, ``O(n)``), then step the
  lexicographic successor in amortised ``O(1)``.
* :func:`check_enumeration_limit` — the shared fail-fast guard for exact and
  gradient-reconstruction schemes whose cost is inherently ``O(2^n)``: rather
  than hanging (or OOMing) on a misconfigured large-n run, they raise with an
  actionable message naming the limit and the sampling alternatives.

Sampling from a stratum without enumerating it lives next door in
:func:`repro.utils.combinatorics.sample_coalitions_of_size`.
"""

from __future__ import annotations

from typing import Iterator

from repro.utils.combinatorics import n_choose_k, unrank_combination

#: default number of coalitions per planned batch — large enough to amortise
#: batch-oracle overhead, small enough that a batch of frozensets is a few MB
#: even at n=1000
DEFAULT_PLAN_BATCH = 4096

#: the sampling estimators to point users at when an exact path refuses
SAMPLING_ALTERNATIVES = "IPSS, StratifiedSampling, ExtendedTMC"


def check_enumeration_limit(n_clients: int, limit: int, scheme: str) -> None:
    """Refuse an exact enumeration that cannot finish at this federation size.

    Raises ``ValueError`` with an actionable message: which scheme refused,
    the configured limit, how to raise it, and which sampling estimators
    scale instead.  Shared by the exact Shapley schemes, the
    gradient-reconstruction baselines (OR, λ-MR) and the exact-table utility
    helper so a misconfigured 500-client run fails in milliseconds rather
    than hanging on 2^500 coalitions.
    """
    if n_clients > limit:
        raise ValueError(
            f"exact {scheme} is intractable for {n_clients} clients "
            f"(limit {limit}): it enumerates O(2^n) coalitions. Raise the "
            f"limit via max_exact_clients if you really mean it, or use a "
            f"sampling estimator ({SAMPLING_ALTERNATIVES}) which scales to "
            f"hundreds of clients."
        )


def iter_combinations_from(n: int, k: int, start_rank: int = 0) -> Iterator[frozenset]:
    """Yield size-``k`` subsets of ``range(n)`` lexicographically from a rank.

    Equivalent to skipping the first ``start_rank`` elements of
    ``itertools.combinations(range(n), k)`` — but the skip costs ``O(n)``
    (one :func:`~repro.utils.combinatorics.unrank_combination`) instead of
    ``O(start_rank)``, which is what makes mid-stratum resumption free even
    when the stratum holds 10^100 coalitions.
    """
    total = n_choose_k(n, k)
    if start_rank < 0 or start_rank > total:
        raise ValueError(
            f"start_rank must lie in [0, C({n},{k})={total}], got {start_rank}"
        )
    if start_rank == total:
        return
    if k == 0:
        yield frozenset()
        return
    members = sorted(unrank_combination(n, k, start_rank))
    while True:
        yield frozenset(members)
        # Lexicographic successor: bump the rightmost member that has room,
        # reset everything after it to the tightest run.
        pivot = k - 1
        while pivot >= 0 and members[pivot] == n - k + pivot:
            pivot -= 1
        if pivot < 0:
            return
        members[pivot] += 1
        for index in range(pivot + 1, k):
            members[index] = members[index - 1] + 1


class StratumPlan:
    """A lazy, cursor-resumable plan over one coalition-size stratum.

    The plan yields the stratum's coalitions in lexicographic order — the
    exact order :func:`~repro.utils.combinatorics.coalitions_of_size`
    enumerates, which the bitwise fold-order contract of the MC schemes
    depends on — in batches of at most ``batch_size``.  Nothing
    ``C(n, k)``-shaped is ever allocated: peak memory is one batch.

    ``cursor`` is the rank of the next coalition to yield; it advances as
    batches are consumed and can be persisted and fed back to resume a
    half-walked stratum.
    """

    def __init__(
        self,
        n_clients: int,
        size: int,
        batch_size: int = DEFAULT_PLAN_BATCH,
        cursor: int = 0,
    ) -> None:
        if size < 0 or size > n_clients:
            raise ValueError(
                f"stratum size must lie in [0, {n_clients}], got {size}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.n_clients = int(n_clients)
        self.size = int(size)
        self.batch_size = int(batch_size)
        self.total = n_choose_k(n_clients, size)
        if cursor < 0 or cursor > self.total:
            raise ValueError(
                f"cursor must lie in [0, {self.total}], got {cursor}"
            )
        self.cursor = int(cursor)

    def __len__(self) -> int:
        return self.total

    @property
    def remaining(self) -> int:
        """Coalitions not yet yielded."""
        return self.total - self.cursor

    @property
    def exhausted(self) -> bool:
        return self.cursor >= self.total

    def next_batch(self) -> list[frozenset]:
        """The next ``<= batch_size`` coalitions; empty once exhausted."""
        take = min(self.batch_size, self.remaining)
        if take == 0:
            return []
        stream = iter_combinations_from(self.n_clients, self.size, self.cursor)
        batch = [next(stream) for _ in range(take)]
        self.cursor += take
        return batch

    def batches(self) -> Iterator[list[frozenset]]:
        """Yield successive batches until the stratum is exhausted."""
        while not self.exhausted:
            yield self.next_batch()

    def __iter__(self) -> Iterator[frozenset]:
        for batch in self.batches():
            yield from batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StratumPlan(n={self.n_clients}, size={self.size}, "
            f"cursor={self.cursor}/{self.total}, batch={self.batch_size})"
        )
