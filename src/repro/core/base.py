"""Base classes for valuation algorithms.

Two families exist, mirroring the paper's taxonomy (Sec. II-C):

* **Utility-based** algorithms (exact schemes, the stratified framework,
  K-Greedy, IPSS, Extended-TMC, Extended-GTB, CC-Shapley, DIG-FL) consume a
  utility oracle ``U(S)`` — any callable that maps a coalition to a float and
  optionally exposes ``evaluations`` / ``n_clients``.
* **Gradient-based** algorithms (OR, λ-MR, GTG-Shapley) consume the training
  history of the grand-coalition FL run and reconstruct coalition models from
  recorded client updates instead of retraining.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable, Iterable, Iterator, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.anytime import (
    EstimatorState,
    StepResult,
    StoppingRule,
    ValuationSnapshot,
    capture_rng_state,
    restore_rng,
)
from repro.core.result import ValuationResult
from repro.parallel.batch_oracle import coalition_batch_keys
from repro.utils.rng import RandomState, SeedLike
from repro.utils.timer import Timer

UtilityFunction = Callable[[Iterable[int]], float]


@runtime_checkable
class UtilityOracle(Protocol):
    """Structural type for utility oracles with cost accounting."""

    def __call__(self, coalition: Iterable[int]) -> float: ...

    @property
    def evaluations(self) -> int: ...


@runtime_checkable
class SupportsBatchEvaluation(Protocol):
    """Structural type for oracles that accept whole coalition batches.

    ``evaluate_batch`` receives a sequence of coalitions and returns
    ``{coalition: utility}`` with keys in first-appearance input order; see
    :class:`repro.parallel.BatchUtilityOracle` for the reference
    implementation (deduplication, caching, and an `n_workers`-configurable
    serial/thread/process executor behind a single call).
    """

    def evaluate_batch(
        self, coalitions: Iterable[Iterable[int]]
    ) -> dict[frozenset, float]: ...


def _evaluation_count(utility: UtilityFunction) -> int:
    """Best-effort read of a utility oracle's evaluation counter."""
    return int(getattr(utility, "evaluations", 0))


def infer_n_clients(utility: UtilityFunction, n_clients: Optional[int]) -> int:
    """Resolve the number of clients from the argument or the oracle itself."""
    if n_clients is not None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        return int(n_clients)
    inferred = getattr(utility, "n_clients", None)
    if inferred is None:
        raise ValueError(
            "n_clients was not provided and the utility oracle does not expose it"
        )
    return int(inferred)


class ValuationAlgorithm(abc.ABC):
    """Base class for utility-oracle-based valuation algorithms.

    Algorithms implement *incremental chunks*: :meth:`_incremental_init`
    prepares a checkpointable payload and :meth:`_incremental_step` advances
    the estimate by one chunk (a coalition-size stratum, a permutation walk,
    a block of Monte-Carlo rounds, ...).  :meth:`iter_run` drives the chunks
    and yields a :class:`~repro.core.anytime.ValuationSnapshot` after each
    one; :meth:`run` is a thin wrapper that consumes the snapshot stream.
    The contract every implementation must honour: an uninterrupted
    ``iter_run`` consumed to exhaustion — with or without a checkpoint
    restore in the middle — produces values bitwise-identical to the
    monolithic estimation at the same seed.

    Algorithms that have not been migrated simply inherit the default
    single-chunk adapter, which runs :meth:`_estimate` in one step (no
    mid-run checkpoints, one terminal snapshot).
    """

    #: short name used in result objects and experiment reports
    name: str = "base"

    #: whether this algorithm yields more than one chunk (and therefore
    #: supports mid-run checkpointing / convergence-based early stop)
    incremental: bool = False

    def __init__(self, seed: SeedLike = None) -> None:
        self.seed = seed

    @abc.abstractmethod
    def _estimate(
        self,
        utility: UtilityFunction,
        n_clients: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the estimated data values for all clients."""

    # ------------------------------------------------------------------ #
    # Incremental protocol
    # ------------------------------------------------------------------ #
    def _state_config(self) -> dict:
        """Constructor parameters a checkpoint must match to be resumable."""
        return {}

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        """Build the initial (checkpointable) payload; may consume RNG."""
        return {}

    def _incremental_step(
        self,
        utility: UtilityFunction,
        n_clients: int,
        rng: np.random.Generator,
        payload: dict,
    ) -> StepResult:
        """Advance the estimate by one chunk.

        The default is the single-chunk adapter: run the monolithic
        :meth:`_estimate` and finish.  Incremental algorithms override this
        (together with :meth:`_incremental_init`) and keep *all* mutable
        estimation state inside ``payload`` so a restored checkpoint resumes
        exactly where the interrupted run left off.
        """
        values = self._estimate(utility, n_clients, rng)
        return StepResult(
            values=np.asarray(values, dtype=float), stderr=None, n_samples=None, done=True
        )

    def _drive_chunks(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Run the incremental chunks to exhaustion (used by ``_estimate``)."""
        payload = self._incremental_init(n_clients, rng)
        while True:
            step = self._incremental_step(utility, n_clients, rng, payload)
            if step.done:
                return np.asarray(step.values, dtype=float)

    def state_matches(self, state: EstimatorState, n_clients: int) -> bool:
        """Whether a checkpoint belongs to this algorithm configuration."""
        return (
            isinstance(state, EstimatorState)
            and state.algorithm == self.name
            and int(state.n_clients) == int(n_clients)
            and state.config == self._state_config()
        )

    def iter_run(
        self,
        utility: UtilityFunction,
        n_clients: Optional[int] = None,
        state: Optional[EstimatorState] = None,
    ) -> Iterator[ValuationSnapshot]:
        """Run the estimation incrementally, yielding a snapshot per chunk.

        ``state`` resumes a previously checkpointed run: pass an
        :class:`EstimatorState` restored via ``EstimatorState.from_dict`` and
        the generator continues from the first unfinished chunk — evaluations
        and elapsed time keep accumulating, and the final values are
        bitwise-identical to an uninterrupted run at the same seed.
        """
        n = infer_n_clients(utility, n_clients)
        if state is None:
            rng = RandomState(self.seed)
            state = EstimatorState(
                algorithm=self.name, n_clients=n, config=self._state_config()
            )
            state.payload = self._incremental_init(n, rng)
            state.rng_state = capture_rng_state(rng)
        else:
            if not self.state_matches(state, n):
                raise ValueError(
                    f"estimator state does not match this algorithm: state is for "
                    f"{state.algorithm!r} (n={state.n_clients}, config="
                    f"{state.config}), this is {self.name!r} (n={n}, config="
                    f"{self._state_config()})"
                )
            if state.done:
                yield self._snapshot(state)
                return
            if state.rng_state is None:
                raise ValueError("estimator state carries no RNG state")
            rng = restore_rng(state.rng_state)
        while not state.done:
            evaluations_before = _evaluation_count(utility)
            with Timer() as timer:
                step = self._incremental_step(utility, n, rng, state.payload)
            state.evaluations += _evaluation_count(utility) - evaluations_before
            state.elapsed_seconds += timer.elapsed
            state.chunk_index += 1
            state.done = bool(step.done)
            state.rng_state = capture_rng_state(rng)
            state.values = np.asarray(step.values, dtype=float)
            state.stderr = (
                None if step.stderr is None else np.asarray(step.stderr, dtype=float)
            )
            state.n_samples = (
                None
                if step.n_samples is None
                else np.asarray(step.n_samples, dtype=float)
            )
            yield self._snapshot(state)

    def _snapshot(self, state: EstimatorState) -> ValuationSnapshot:
        return ValuationSnapshot(
            algorithm=self.name,
            n_clients=state.n_clients,
            values=state.values,
            evaluations=state.evaluations,
            elapsed_seconds=state.elapsed_seconds,
            chunk_index=state.chunk_index,
            done=state.done,
            stderr=state.stderr,
            n_samples_per_client=state.n_samples,
            metadata=self._metadata(),
            state=state,
        )

    def _batch_utilities(
        self,
        utility: UtilityFunction,
        coalitions: Iterable[Iterable[int]],
        batch_size: Optional[int] = None,
    ) -> dict[frozenset, float]:
        """Evaluate a planned batch of coalitions through the oracle.

        This is the planning hook of the batch-oracle protocol: algorithms
        that pre-enumerate the coalitions they need (the exact schemes,
        stratified sampling, K-Greedy, IPSS) hand the whole plan over in one
        call instead of invoking the oracle coalition by coalition.  Oracles
        exposing ``evaluate_batch`` (:class:`repro.parallel.BatchUtilityOracle`,
        :class:`repro.fl.CoalitionUtility`) may then deduplicate, cache and
        train misses concurrently; plain callables fall back to sequential
        calls in the same deduplicated order, so the returned mapping — and
        hence every downstream floating-point reduction — is identical either
        way.

        ``batch_size`` streams a (possibly lazy) coalition iterable through
        the oracle in bounded slices, never materialising the whole plan:
        peak plan memory is ``O(batch_size)``, which is what lets an
        exhaustive stratum walk survive federations where a stratum has
        billions of coalitions.  Per-coalition utilities are deterministic
        and duplicates are skipped across slices exactly as
        :func:`~repro.parallel.batch_oracle.coalition_batch_keys` skips them
        within one plan, so the returned mapping — keys in first-appearance
        order, values bit-for-bit — is identical to the unstreamed call.
        """
        if batch_size is None:
            ordered = coalition_batch_keys(coalitions)
            if isinstance(utility, SupportsBatchEvaluation):
                results = utility.evaluate_batch(ordered)
                return {key: float(results[key]) for key in ordered}
            return {key: float(utility(key)) for key in ordered}
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        merged: dict[frozenset, float] = {}
        stream = iter(coalitions)
        while True:
            block = list(itertools.islice(stream, batch_size))
            if not block:
                return merged
            ordered = [
                key for key in coalition_batch_keys(block) if key not in merged
            ]
            if not ordered:
                continue
            if isinstance(utility, SupportsBatchEvaluation):
                results = utility.evaluate_batch(ordered)
                merged.update({key: float(results[key]) for key in ordered})
            else:
                merged.update({key: float(utility(key)) for key in ordered})

    def run(
        self,
        utility: UtilityFunction,
        n_clients: Optional[int] = None,
        stopping_rule: Optional[StoppingRule] = None,
        state: Optional[EstimatorState] = None,
        on_snapshot: Optional[Callable[[ValuationSnapshot], None]] = None,
    ) -> ValuationResult:
        """Estimate data values, measuring wall-clock time and oracle calls.

        A thin wrapper over :meth:`iter_run`: without a ``stopping_rule`` the
        snapshot stream is consumed to exhaustion, which is seed-for-seed
        identical to the pre-anytime blocking implementation.  With a rule,
        the run may stop early; the returned result then records
        ``metadata["stopped_early"]`` / ``metadata["stopped_by"]``.  ``state``
        resumes a checkpointed run and ``on_snapshot`` observes every chunk.
        """
        if stopping_rule is not None:
            stopping_rule.reset()
        last: Optional[ValuationSnapshot] = None
        stopped_by: Optional[str] = None
        for snapshot in self.iter_run(utility, n_clients, state=state):
            last = snapshot
            if on_snapshot is not None:
                on_snapshot(snapshot)
            if snapshot.done:
                break
            if stopping_rule is not None and stopping_rule.should_stop(snapshot):
                stopped_by = stopping_rule.fired or stopping_rule.describe()
                break
        if last is None:  # pragma: no cover - iter_run always yields
            raise RuntimeError(f"{self.name}.iter_run produced no snapshots")
        return last.result(stopped_by=stopped_by)

    def _metadata(self) -> dict:
        """Algorithm-specific extras attached to the result; override freely."""
        return {}


class GradientBasedValuation(abc.ABC):
    """Base class for algorithms that reconstruct models from FL history.

    Subclasses receive a :class:`~repro.fl.history.TrainingHistory`, a template
    parametric model (used to evaluate reconstructed parameter vectors) and
    the test dataset; they never retrain FL models.
    """

    name: str = "gradient-base"

    def __init__(self, seed: SeedLike = None) -> None:
        self.seed = seed
        self._model_evaluations = 0

    @abc.abstractmethod
    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        """Return estimated values given the recorded training history."""

    def run_from_history(self, history, model, test_dataset) -> ValuationResult:
        """Estimate values from an already-recorded grand-coalition history."""
        rng = RandomState(self.seed)
        self._model_evaluations = 0
        n = len(history.clients())
        with Timer() as timer:
            values = self._estimate(history, model, test_dataset, rng)
        return ValuationResult(
            values=np.asarray(values, dtype=float),
            algorithm=self.name,
            n_clients=n,
            utility_evaluations=1,  # the single grand-coalition FL training
            elapsed_seconds=timer.elapsed,
            metadata={"model_evaluations": self._model_evaluations, **self._metadata()},
        )

    def run(self, utility, n_clients: Optional[int] = None) -> ValuationResult:
        """Estimate values from a :class:`~repro.fl.utility.CoalitionUtility`.

        The oracle must expose its :class:`~repro.fl.federation.FederatedTrainer`
        (as ``utility.trainer``) so the grand-coalition training history can be
        produced; tree-model oracles raise, matching the paper's remark that
        gradient-based approximation is not applicable to XGBoost.
        """
        trainer = getattr(utility, "trainer", None)
        if trainer is None:
            raise TypeError(
                f"{self.name} is gradient-based and requires a CoalitionUtility "
                "backed by a FederatedTrainer"
            )
        rng = RandomState(self.seed)
        self._model_evaluations = 0
        n = infer_n_clients(utility, n_clients)
        with Timer() as timer:
            history = trainer.grand_coalition_history()
            model = trainer.template_model()
            values = self._estimate(history, model, trainer.test_dataset, rng)
        return ValuationResult(
            values=np.asarray(values, dtype=float),
            algorithm=self.name,
            n_clients=n,
            utility_evaluations=1,
            elapsed_seconds=timer.elapsed,
            metadata={"model_evaluations": self._model_evaluations, **self._metadata()},
        )

    def iter_run(
        self,
        utility,
        n_clients: Optional[int] = None,
        state: Optional[EstimatorState] = None,
    ) -> Iterator[ValuationSnapshot]:
        """Single-chunk anytime adapter for the gradient-based family.

        Gradient-based methods replay one recorded FL history, so there is no
        meaningful chunk boundary to checkpoint at; the adapter exists so the
        pipeline and CLI can treat every registered algorithm uniformly.
        """
        if state is not None:
            raise ValueError(
                f"{self.name} is gradient-based (single-chunk) and cannot "
                "resume from an estimator checkpoint"
            )
        result = self.run(utility, n_clients)
        yield ValuationSnapshot(
            algorithm=self.name,
            n_clients=result.n_clients,
            values=result.values,
            evaluations=result.utility_evaluations,
            elapsed_seconds=result.elapsed_seconds,
            chunk_index=1,
            done=True,
            metadata=dict(result.metadata),
            state=None,
        )

    def _evaluate_parameters(self, model, parameters: np.ndarray, test_dataset) -> float:
        """Evaluate a reconstructed parameter vector on the test set."""
        model.set_parameters(parameters)
        self._model_evaluations += 1
        return float(model.evaluate(test_dataset))

    def _metadata(self) -> dict:
        return {}
