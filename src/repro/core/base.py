"""Base classes for valuation algorithms.

Two families exist, mirroring the paper's taxonomy (Sec. II-C):

* **Utility-based** algorithms (exact schemes, the stratified framework,
  K-Greedy, IPSS, Extended-TMC, Extended-GTB, CC-Shapley, DIG-FL) consume a
  utility oracle ``U(S)`` — any callable that maps a coalition to a float and
  optionally exposes ``evaluations`` / ``n_clients``.
* **Gradient-based** algorithms (OR, λ-MR, GTG-Shapley) consume the training
  history of the grand-coalition FL run and reconstruct coalition models from
  recorded client updates instead of retraining.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.result import ValuationResult
from repro.parallel.batch_oracle import coalition_batch_keys
from repro.utils.rng import RandomState, SeedLike
from repro.utils.timer import Timer

UtilityFunction = Callable[[Iterable[int]], float]


@runtime_checkable
class UtilityOracle(Protocol):
    """Structural type for utility oracles with cost accounting."""

    def __call__(self, coalition: Iterable[int]) -> float: ...

    @property
    def evaluations(self) -> int: ...


@runtime_checkable
class SupportsBatchEvaluation(Protocol):
    """Structural type for oracles that accept whole coalition batches.

    ``evaluate_batch`` receives a sequence of coalitions and returns
    ``{coalition: utility}`` with keys in first-appearance input order; see
    :class:`repro.parallel.BatchUtilityOracle` for the reference
    implementation (deduplication, caching, and an `n_workers`-configurable
    serial/thread/process executor behind a single call).
    """

    def evaluate_batch(
        self, coalitions: Iterable[Iterable[int]]
    ) -> dict[frozenset, float]: ...


def _evaluation_count(utility: UtilityFunction) -> int:
    """Best-effort read of a utility oracle's evaluation counter."""
    return int(getattr(utility, "evaluations", 0))


def infer_n_clients(utility: UtilityFunction, n_clients: Optional[int]) -> int:
    """Resolve the number of clients from the argument or the oracle itself."""
    if n_clients is not None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        return int(n_clients)
    inferred = getattr(utility, "n_clients", None)
    if inferred is None:
        raise ValueError(
            "n_clients was not provided and the utility oracle does not expose it"
        )
    return int(inferred)


class ValuationAlgorithm(abc.ABC):
    """Base class for utility-oracle-based valuation algorithms."""

    #: short name used in result objects and experiment reports
    name: str = "base"

    def __init__(self, seed: SeedLike = None) -> None:
        self.seed = seed

    @abc.abstractmethod
    def _estimate(
        self,
        utility: UtilityFunction,
        n_clients: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the estimated data values for all clients."""

    def _batch_utilities(
        self,
        utility: UtilityFunction,
        coalitions: Iterable[Iterable[int]],
    ) -> dict[frozenset, float]:
        """Evaluate a planned batch of coalitions through the oracle.

        This is the planning hook of the batch-oracle protocol: algorithms
        that pre-enumerate the coalitions they need (the exact schemes,
        stratified sampling, K-Greedy, IPSS) hand the whole plan over in one
        call instead of invoking the oracle coalition by coalition.  Oracles
        exposing ``evaluate_batch`` (:class:`repro.parallel.BatchUtilityOracle`,
        :class:`repro.fl.CoalitionUtility`) may then deduplicate, cache and
        train misses concurrently; plain callables fall back to sequential
        calls in the same deduplicated order, so the returned mapping — and
        hence every downstream floating-point reduction — is identical either
        way.
        """
        ordered = coalition_batch_keys(coalitions)
        if isinstance(utility, SupportsBatchEvaluation):
            results = utility.evaluate_batch(ordered)
            return {key: float(results[key]) for key in ordered}
        return {key: float(utility(key)) for key in ordered}

    def run(
        self,
        utility: UtilityFunction,
        n_clients: Optional[int] = None,
    ) -> ValuationResult:
        """Estimate data values, measuring wall-clock time and oracle calls."""
        n = infer_n_clients(utility, n_clients)
        rng = RandomState(self.seed)
        evaluations_before = _evaluation_count(utility)
        with Timer() as timer:
            values = self._estimate(utility, n, rng)
        evaluations_after = _evaluation_count(utility)
        return ValuationResult(
            values=np.asarray(values, dtype=float),
            algorithm=self.name,
            n_clients=n,
            utility_evaluations=evaluations_after - evaluations_before,
            elapsed_seconds=timer.elapsed,
            metadata=self._metadata(),
        )

    def _metadata(self) -> dict:
        """Algorithm-specific extras attached to the result; override freely."""
        return {}


class GradientBasedValuation(abc.ABC):
    """Base class for algorithms that reconstruct models from FL history.

    Subclasses receive a :class:`~repro.fl.history.TrainingHistory`, a template
    parametric model (used to evaluate reconstructed parameter vectors) and
    the test dataset; they never retrain FL models.
    """

    name: str = "gradient-base"

    def __init__(self, seed: SeedLike = None) -> None:
        self.seed = seed
        self._model_evaluations = 0

    @abc.abstractmethod
    def _estimate(self, history, model, test_dataset, rng) -> np.ndarray:
        """Return estimated values given the recorded training history."""

    def run_from_history(self, history, model, test_dataset) -> ValuationResult:
        """Estimate values from an already-recorded grand-coalition history."""
        rng = RandomState(self.seed)
        self._model_evaluations = 0
        n = len(history.clients())
        with Timer() as timer:
            values = self._estimate(history, model, test_dataset, rng)
        return ValuationResult(
            values=np.asarray(values, dtype=float),
            algorithm=self.name,
            n_clients=n,
            utility_evaluations=1,  # the single grand-coalition FL training
            elapsed_seconds=timer.elapsed,
            metadata={"model_evaluations": self._model_evaluations, **self._metadata()},
        )

    def run(self, utility, n_clients: Optional[int] = None) -> ValuationResult:
        """Estimate values from a :class:`~repro.fl.utility.CoalitionUtility`.

        The oracle must expose its :class:`~repro.fl.federation.FederatedTrainer`
        (as ``utility.trainer``) so the grand-coalition training history can be
        produced; tree-model oracles raise, matching the paper's remark that
        gradient-based approximation is not applicable to XGBoost.
        """
        trainer = getattr(utility, "trainer", None)
        if trainer is None:
            raise TypeError(
                f"{self.name} is gradient-based and requires a CoalitionUtility "
                "backed by a FederatedTrainer"
            )
        rng = RandomState(self.seed)
        self._model_evaluations = 0
        n = infer_n_clients(utility, n_clients)
        with Timer() as timer:
            history = trainer.grand_coalition_history()
            model = trainer.template_model()
            values = self._estimate(history, model, trainer.test_dataset, rng)
        return ValuationResult(
            values=np.asarray(values, dtype=float),
            algorithm=self.name,
            n_clients=n,
            utility_evaluations=1,
            elapsed_seconds=timer.elapsed,
            metadata={"model_evaluations": self._model_evaluations, **self._metadata()},
        )

    def _evaluate_parameters(self, model, parameters: np.ndarray, test_dataset) -> float:
        """Evaluate a reconstructed parameter vector on the test set."""
        model.set_parameters(parameters)
        self._model_evaluations += 1
        return float(model.evaluate(test_dataset))

    def _metadata(self) -> dict:
        return {}
