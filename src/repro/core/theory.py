"""Analytical results from the paper's theory sections.

The paper analyses its algorithms under the FL linear-regression model of
Donahue & Kleinberg, where every sample is drawn from a standard Gaussian and
the expected mean-squared error of a linear model trained on ``d`` samples is

    E[mse(d)] = μ_e · |x| / (d − |x| − 1)                     (Eq. 12)

with ``|x|`` the feature dimension and ``μ_e`` the noise expectation.  On top
of that model the paper derives

* **Lemma 1** — the expected MC-SV data value of every client,
* **Theorem 3** — the relative error bound of IPSS with cut-off ``k*``, and
* **Theorem 2** — the variance advantage of the MC-SV scheme over CC-SV inside
  the stratified framework (implemented in :mod:`repro.core.variance`).

These functions are used by the theory benchmark (``bench_theory.py``) and by
tests that check the implementation agrees with the analytical predictions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.combinatorics import max_fully_enumerable_size


def expected_mse(n_samples: float, n_features: int, noise_mean: float) -> float:
    """Donahue–Kleinberg expected MSE of linear regression on ``n_samples`` points.

    Only defined for ``n_samples > n_features + 1``; smaller sample counts are
    in the regime where the regression is under-determined and the paper
    replaces the value with the initial-model MSE ``m0``.
    """
    if n_samples <= n_features + 1:
        raise ValueError(
            "expected_mse requires n_samples > n_features + 1 "
            f"(got n_samples={n_samples}, n_features={n_features})"
        )
    return noise_mean * n_features / (n_samples - n_features - 1)


def lemma1_expected_value(
    n_clients: int,
    samples_per_client: int,
    n_features: int,
    noise_mean: float,
    initial_mse: float,
) -> float:
    """Lemma 1: expected data value of each client under negative-MSE utility.

    ``E[φ_i] = (1/n) · (m0 − μ_e |x| / (n·t − |x| − 1))``
    """
    if n_clients < 1 or samples_per_client < 1:
        raise ValueError("n_clients and samples_per_client must be positive")
    total_samples = n_clients * samples_per_client
    return (initial_mse - expected_mse(total_samples, n_features, noise_mean)) / n_clients


def truncated_expected_value(
    k_star: int,
    n_clients: int,
    samples_per_client: int,
    n_features: int,
    noise_mean: float,
    initial_mse: float,
) -> float:
    """Expected IPSS estimate when only coalitions of size ≤ k* are used (Eq. 16).

    ``E[φ̂_i^{k*}] = (1/n) · (m0 − μ_e |x| / (k*·t − |x| − 1))``
    """
    if k_star < 1:
        raise ValueError("k_star must be at least 1")
    return (
        initial_mse - expected_mse(k_star * samples_per_client, n_features, noise_mean)
    ) / n_clients


def theorem3_relative_error_bound(
    n_clients: int,
    k_star: int,
    samples_per_client: int,
    n_features: int,
) -> float:
    """Theorem 3: bound on |E[φ̂^{k*}] − E[φ]| / E[φ].

    ``(n − k*) · t / ((k*·t − |x| − 1)(n·t − |x| − 2))``
    """
    if k_star < 1 or k_star > n_clients:
        raise ValueError("k_star must lie in [1, n_clients]")
    t = samples_per_client
    x = n_features
    denominator = (k_star * t - x - 1) * (n_clients * t - x - 2)
    if denominator <= 0:
        raise ValueError(
            "the bound requires k*·t > |x| + 1 (enough samples per coalition)"
        )
    return (n_clients - k_star) * t / denominator


def theorem3_asymptotic_bound(n_clients: int, k_star: int, samples_per_client: int) -> float:
    """The O((n − k*) / (k*·n·t)) simplification of the Theorem 3 bound."""
    if k_star < 1:
        raise ValueError("k_star must be at least 1")
    return (n_clients - k_star) / (k_star * n_clients * samples_per_client)


def ipss_k_star(n_clients: int, total_rounds: int) -> int:
    """Line 1 of Alg. 3: the largest fully enumerable coalition size."""
    return max_fully_enumerable_size(n_clients, total_rounds)


def predicted_relative_error(
    n_clients: int,
    total_rounds: int,
    samples_per_client: int,
    n_features: int,
) -> float:
    """Theorem 3 bound evaluated at the k* implied by a sampling budget γ."""
    k_star = ipss_k_star(n_clients, total_rounds)
    if k_star < 1:
        return float("inf")
    return theorem3_relative_error_bound(
        n_clients, k_star, samples_per_client, n_features
    )


def linear_utility_table(
    n_clients: int,
    samples_per_client: int,
    n_features: int,
    noise_mean: float,
    initial_mse: float,
) -> dict[frozenset, float]:
    """Expected negative-MSE utility of every coalition under the theory model.

    Coalitions too small to determine the regression fall back to the initial
    model's MSE, as in the paper's treatment of ``mse(0) = m0``.  The resulting
    table can drive :class:`~repro.fl.utility.TabularUtility` for closed-form
    experiments.
    """
    from repro.utils.combinatorics import all_coalitions

    table: dict[frozenset, float] = {}
    for coalition in all_coalitions(n_clients):
        samples = len(coalition) * samples_per_client
        if samples > n_features + 1:
            mse = expected_mse(samples, n_features, noise_mean)
        else:
            mse = initial_mse
        table[coalition] = -mse
    return table
