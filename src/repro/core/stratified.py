"""Unified stratified-sampling approximation framework (paper Alg. 1).

Both SV computation schemes have a hierarchical structure over coalition
sizes, so coalitions of the same size form natural strata.  The framework

1. samples ``m_k`` coalitions from each stratum ``S_k`` (all coalitions with
   ``k`` clients),
2. trains/evaluates the FL model for every sampled coalition, and
3. for each client averages the marginal (MC-SV) or complementary (CC-SV)
   contributions that can be formed from the sampled coalitions, stratum by
   stratum, then averages across strata.

The framework is unbiased for both schemes (paper Thm. 1); under the FL
linear-regression assumption the MC-SV scheme has lower variance (Thm. 2),
which is why IPSS builds on MC-SV.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.anytime import StepResult, stratified_stderr
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.combinatorics import (
    n_choose_k,
    sample_coalitions_of_size,
)
from repro.utils.rng import SeedLike

SCHEMES = ("mc", "cc")


def allocate_rounds(
    n_clients: int,
    total_rounds: int,
    strategy: str = "proportional",
) -> list[int]:
    """Split a total sampling budget γ into per-stratum rounds ``m_1..m_n``.

    ``proportional`` allocates in proportion to the stratum sizes ``C(n, k)``
    (capped at the stratum size); ``uniform`` gives each stratum the same
    number of rounds (again capped).  Both guarantee at least one round per
    stratum whenever the budget allows it, because a stratum with zero samples
    contributes nothing to the estimate.
    """
    if total_rounds < 1:
        raise ValueError(f"total_rounds must be >= 1, got {total_rounds}")
    if strategy not in ("proportional", "uniform"):
        raise ValueError(f"unknown allocation strategy {strategy!r}")
    sizes = [n_choose_k(n_clients, k) for k in range(1, n_clients + 1)]
    rounds = [0] * n_clients

    # First pass: one sample per stratum while budget remains.
    remaining = total_rounds
    for index in range(n_clients):
        if remaining == 0:
            break
        rounds[index] = 1
        remaining -= 1

    if strategy == "uniform":
        # Round-robin one extra sample per stratum per sweep; terminate as
        # soon as a full sweep makes no progress (all strata saturated), so
        # the whole budget is spent whenever capacity 2^n - 1 allows it.
        while remaining > 0:
            progressed = False
            for stratum in range(n_clients):
                if remaining == 0:
                    break
                if rounds[stratum] < sizes[stratum]:
                    rounds[stratum] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
        return rounds

    # Proportional: distribute the remainder following stratum sizes.
    weights = np.asarray(sizes, dtype=float)
    while remaining > 0:
        free = np.asarray([sizes[i] - rounds[i] for i in range(n_clients)], dtype=float)
        mask = free > 0
        if not mask.any():
            break
        share = weights * mask
        share = share / share.sum()
        # Min in float *before* casting: ``free`` reaches C(n, n/2) ≈ 10^149
        # at n=500, far past int64, while the min is bounded by ``remaining``
        # and always cast-safe.
        extra = np.minimum(np.floor(share * remaining), free).astype(int)
        if extra.sum() == 0:
            # Give one round to the largest stratum that still has room.
            candidate = int(np.argmax(np.where(mask, weights, -1)))
            rounds[candidate] += 1
            remaining -= 1
            continue
        for index in range(n_clients):
            rounds[index] += int(extra[index])
        remaining -= int(extra.sum())
    return rounds


class StratifiedSampling(ValuationAlgorithm):
    """Paper Alg. 1: stratified Monte-Carlo approximation of MC-SV or CC-SV.

    Parameters
    ----------
    total_rounds:
        The total sampling budget γ; ignored if ``rounds_per_stratum`` given.
    rounds_per_stratum:
        Explicit ``m_k`` for each stratum ``k = 1..n`` (overrides γ).
    scheme:
        ``"mc"`` pairs each sampled coalition ``S ∋ i`` with ``S \\ {i}``;
        ``"cc"`` pairs it with ``N \\ S``.
    allocation:
        Strategy used to split γ across strata (see :func:`allocate_rounds`).
    pair_on_demand:
        Alg. 1 as printed only uses a sampled coalition if its *paired*
        coalition also happens to be sampled, which silently drops strata and
        biases the estimate toward zero when budgets are tight.  With
        ``pair_on_demand=True`` the missing pair is evaluated instead (costing
        extra utility evaluations beyond γ), which makes the estimator exactly
        unbiased (Thm. 1's setting).  Default ``False`` stays literal.
    """

    def __init__(
        self,
        total_rounds: int = 32,
        rounds_per_stratum: Optional[Sequence[int]] = None,
        scheme: str = "mc",
        allocation: str = "proportional",
        pair_on_demand: bool = False,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed=seed)
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
        if total_rounds < 1:
            raise ValueError(f"total_rounds must be >= 1, got {total_rounds}")
        self.total_rounds = total_rounds
        self.rounds_per_stratum = (
            None if rounds_per_stratum is None else [int(m) for m in rounds_per_stratum]
        )
        self.scheme = scheme
        self.allocation = allocation
        self.pair_on_demand = pair_on_demand
        self.name = f"Stratified-{scheme.upper()}"

    # ------------------------------------------------------------------ #
    def _sample_strata(
        self, n_clients: int, rng: np.random.Generator
    ) -> dict[int, list[frozenset]]:
        """Sample (without replacement within a stratum) the coalition sets."""
        if self.rounds_per_stratum is not None:
            if len(self.rounds_per_stratum) != n_clients:
                raise ValueError(
                    "rounds_per_stratum must have one entry per stratum (1..n)"
                )
            rounds = list(self.rounds_per_stratum)
        else:
            rounds = allocate_rounds(n_clients, self.total_rounds, self.allocation)

        sampled: dict[int, list[frozenset]] = {}
        for stratum_index, m_k in enumerate(rounds, start=1):
            stratum_size = n_choose_k(n_clients, stratum_index)
            target = min(m_k, stratum_size)
            if target == 0:
                sampled[stratum_index] = []
                continue
            # O(target) memory whatever the stratum size: small strata draw
            # ranks without replacement and unrank them, huge strata
            # rejection-sample — never a materialised C(n, k) population.
            coalitions = sample_coalitions_of_size(
                n_clients, stratum_index, rng, target
            )
            sampled[stratum_index] = sorted(coalitions, key=sorted)
        return sampled

    def _paired(
        self, coalition: frozenset, client: int, everyone: frozenset
    ) -> frozenset:
        """The coalition paired with a sampled one for a given member.

        MC pairs ``S ∋ i`` with ``S \\ {i}``; CC pairs it with ``N \\ S``.
        Both the prefetch plan and the estimation loop must use this single
        definition, or prefetched pairs drift from the pairs the estimator
        looks up.
        """
        if self.scheme == "mc":
            return coalition - {client}
        return everyone - coalition

    # ------------------------------------------------------------------ #
    # Incremental protocol: one chunk per stratum (then a pairs chunk when
    # pair_on_demand), each planned through ``_batch_utilities``.  The whole
    # sampling plan is drawn up front — exactly the RNG stream the monolithic
    # implementation consumed — so chunk boundaries change nothing but *when*
    # the evaluations happen, and the exhausted run is bitwise-identical.
    # ------------------------------------------------------------------ #
    incremental = True

    def _state_config(self) -> dict:
        return {
            "total_rounds": self.total_rounds,
            "rounds_per_stratum": self.rounds_per_stratum,
            "scheme": self.scheme,
            "allocation": self.allocation,
            "pair_on_demand": self.pair_on_demand,
        }

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        return {
            "sampled": self._sample_strata(n_clients, rng),
            "utilities": {},
            "stage": 0,
        }

    def _estimate_from(self, payload: dict, n_clients: int) -> StepResult:
        """Alg. 1's estimation loop restricted to the evaluated coalitions.

        Once every stage ran the coalition-availability guard never fires and
        this *is* the monolithic loop — same iteration order, same scalar
        fold, bitwise-identical values.  The extra sum-of-squares accumulator
        feeds the per-client stderr and never touches the value math.
        """
        sampled, utilities = payload["sampled"], payload["utilities"]
        everyone = frozenset(range(n_clients))
        values = np.zeros(n_clients)
        sums = np.zeros((n_clients, n_clients + 1))
        sumsq = np.zeros((n_clients, n_clients + 1))
        m_counts = np.zeros((n_clients, n_clients + 1))
        for client in range(n_clients):
            stratum_sums = np.zeros(n_clients + 1)
            stratum_counts = np.zeros(n_clients + 1)
            for stratum_index, coalitions in sampled.items():
                for coalition in coalitions:
                    if client not in coalition:
                        continue
                    if coalition not in utilities:
                        continue  # stratum not evaluated yet (interim chunk)
                    paired = self._paired(coalition, client, everyone)
                    if paired not in utilities:
                        # pair_on_demand=True prefetches every pair, so a miss
                        # here means the literal variant dropped an unmatched
                        # sample (Alg. 1 as printed) — or its chunk is pending.
                        continue
                    contribution = utilities[coalition] - utilities[paired]
                    stratum_sums[stratum_index] += contribution
                    stratum_counts[stratum_index] += 1
                    sumsq[client, stratum_index] += contribution**2
            total = 0.0
            for stratum_index in range(1, n_clients + 1):
                if stratum_counts[stratum_index] > 0:
                    total += stratum_sums[stratum_index] / stratum_counts[stratum_index]
            values[client] = total / n_clients
            sums[client] = stratum_sums
            m_counts[client] = stratum_counts
        return StepResult(
            values=values,
            stderr=stratified_stderr(sums, sumsq, m_counts),
            n_samples=m_counts.sum(axis=1),
            done=False,
        )

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        sampled, utilities = payload["sampled"], payload["utilities"]
        everyone = frozenset(range(n_clients))
        stage = int(payload["stage"])
        last_stage = n_clients + 1 if self.pair_on_demand else n_clients
        if stage == 0:
            # The empty coalition is always available: the untrained model.
            utilities.update(self._batch_utilities(utility, [frozenset()]))
        elif stage <= n_clients:
            utilities.update(self._batch_utilities(utility, sampled[stage]))
        else:
            # The paired coalitions are fully determined by the sample, so
            # the ones not already evaluated join as the final batch.
            pairs: list[frozenset] = []
            for stratum_coalitions in sampled.values():
                for coalition in stratum_coalitions:
                    for client in sorted(coalition):
                        paired = self._paired(coalition, client, everyone)
                        if paired not in utilities:
                            pairs.append(paired)
            if pairs:
                utilities.update(self._batch_utilities(utility, pairs))
        payload["stage"] = stage + 1
        return self._estimate_from(payload, n_clients)._replace(done=stage >= last_stage)

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)

    def _metadata(self) -> dict:
        return {
            "scheme": self.scheme,
            "total_rounds": self.total_rounds,
            "allocation": self.allocation,
            "pair_on_demand": self.pair_on_demand,
        }
