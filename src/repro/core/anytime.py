"""Anytime-valuation protocol: snapshots, checkpointable state, stopping rules.

Every sampling-based estimator in the paper is a loop whose estimate improves
monotonically with the number of coalition evaluations spent.  This module
defines the vocabulary that turns those loops into *anytime* estimators:

* :class:`EstimatorState` — the complete, JSON-serialisable state of a
  half-finished estimation: the RNG bit-generator state, the algorithm's
  running sums / evaluated-utility table (the *payload*), and the cost
  counters.  Restoring a state and consuming the rest of the run produces
  values bitwise-identical to an uninterrupted run.
* :class:`ValuationSnapshot` — what :meth:`ValuationAlgorithm.iter_run` yields
  after every incremental chunk: the current estimate, per-client standard
  errors (where the estimator defines them), per-client sample counts, and the
  evaluations/wall-clock spent so far.
* :class:`StoppingRule` and friends — composable budget / convergence /
  wall-clock early-stop predicates consumed by ``run(stopping_rule=...)``,
  the pipeline and the CLI (``repro run --stop-on``).

The serialisation here is deliberately lossless: floats round-trip through
``repr`` (Python's ``json`` guarantees shortest-round-trip encoding), numpy
arrays carry their dtype, and insertion order of coalition→utility tables is
preserved — the order is load-bearing, because the final reduction folds
floats in table order.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.result import ValuationResult

STATE_FORMAT_VERSION = 1

#: two-sided normal quantile for the default 95% confidence level
_Z_BY_LEVEL = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def normal_quantile(level: float) -> float:
    """Two-sided normal quantile ``z`` such that P(|Z| <= z) = level."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must lie in (0, 1), got {level}")
    if level in _Z_BY_LEVEL:
        return _Z_BY_LEVEL[level]
    from scipy import stats

    return float(stats.norm.ppf(0.5 + level / 2.0))


# --------------------------------------------------------------------------- #
# RNG state capture / restore
# --------------------------------------------------------------------------- #
def _plain(value):
    """Recursively convert numpy scalars inside an RNG state dict to Python."""
    if isinstance(value, dict):
        return {key: _plain(inner) for key, inner in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def capture_rng_state(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a JSON-safe dict."""
    return _plain(rng.bit_generator.state)


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a generator that will continue the captured stream exactly."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in estimator state")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# --------------------------------------------------------------------------- #
# Payload (de)serialisation
# --------------------------------------------------------------------------- #
def encode_state_value(value):
    """Encode a payload value into JSON-safe, type-tagged form.

    Handles the structures estimator payloads are built from: numpy arrays
    (dtype-tagged), frozenset coalitions, coalition-keyed and int-keyed dicts
    (order preserved — it is load-bearing for bitwise-reproducible folds),
    plus plain scalars/lists/str-keyed dicts.
    """
    if isinstance(value, np.ndarray):
        return {"__t": "nd", "dtype": str(value.dtype), "v": value.tolist()}
    if isinstance(value, frozenset):
        return {"__t": "fs", "v": sorted(int(m) for m in value)}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {key: encode_state_value(inner) for key, inner in value.items()}
        if all(isinstance(key, frozenset) for key in value):
            return {
                "__t": "fsmap",
                "v": [
                    [sorted(int(m) for m in key), encode_state_value(inner)]
                    for key, inner in value.items()
                ],
            }
        if all(isinstance(key, (int, np.integer)) for key in value):
            return {
                "__t": "imap",
                "v": [[int(key), encode_state_value(inner)] for key, inner in value.items()],
            }
        raise TypeError(f"unsupported payload dict key types: {list(value)[:3]!r}")
    if isinstance(value, (list, tuple)):
        return [encode_state_value(inner) for inner in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise TypeError(f"unsupported payload value type: {type(value).__name__}")


def decode_state_value(value):
    """Inverse of :func:`encode_state_value`."""
    if isinstance(value, dict):
        tag = value.get("__t")
        if tag == "nd":
            return np.asarray(value["v"], dtype=np.dtype(value["dtype"]))
        if tag == "fs":
            return frozenset(int(m) for m in value["v"])
        if tag == "fsmap":
            return {
                frozenset(int(m) for m in members): decode_state_value(inner)
                for members, inner in value["v"]
            }
        if tag == "imap":
            return {int(key): decode_state_value(inner) for key, inner in value["v"]}
        return {key: decode_state_value(inner) for key, inner in value.items()}
    if isinstance(value, list):
        return [decode_state_value(inner) for inner in value]
    return value


# --------------------------------------------------------------------------- #
# Estimator state
# --------------------------------------------------------------------------- #
@dataclass
class EstimatorState:
    """Checkpointable state of a half-finished valuation.

    ``payload`` holds the algorithm-specific running structures (evaluated
    utilities, running sums/counts, sampling plans) as live Python/numpy
    objects; :meth:`to_dict` encodes them losslessly for JSON persistence and
    :meth:`from_dict` restores them.  ``config`` pins the algorithm parameters
    the state was produced under, so a checkpoint cannot silently resume under
    a different budget or scheme.
    """

    algorithm: str
    n_clients: int
    config: Dict[str, Any] = field(default_factory=dict)
    rng_state: Optional[dict] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    chunk_index: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    done: bool = False
    values: Optional[np.ndarray] = None
    stderr: Optional[np.ndarray] = None
    n_samples: Optional[np.ndarray] = None

    def to_dict(self) -> dict:
        """Lossless JSON form of the state (the checkpoint file format)."""

        def _array(value):
            return None if value is None else np.asarray(value, dtype=float).tolist()

        return {
            "state_format": STATE_FORMAT_VERSION,
            "algorithm": self.algorithm,
            "n_clients": int(self.n_clients),
            "config": dict(self.config),
            "rng_state": self.rng_state,
            "payload": encode_state_value(self.payload),
            "chunk_index": int(self.chunk_index),
            "evaluations": int(self.evaluations),
            "elapsed_seconds": float(self.elapsed_seconds),
            "done": bool(self.done),
            "values": _array(self.values),
            "stderr": _array(self.stderr),
            "n_samples": _array(self.n_samples),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimatorState":
        fmt = payload.get("state_format")
        if fmt != STATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported estimator-state format {fmt!r} "
                f"(this build reads format {STATE_FORMAT_VERSION})"
            )

        def _array(value):
            return None if value is None else np.asarray(value, dtype=float)

        return cls(
            algorithm=str(payload["algorithm"]),
            n_clients=int(payload["n_clients"]),
            config=dict(payload.get("config", {})),
            rng_state=payload.get("rng_state"),
            payload=decode_state_value(payload.get("payload", {})),
            chunk_index=int(payload.get("chunk_index", 0)),
            evaluations=int(payload.get("evaluations", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            done=bool(payload.get("done", False)),
            values=_array(payload.get("values")),
            stderr=_array(payload.get("stderr")),
            n_samples=_array(payload.get("n_samples")),
        )


class StepResult(NamedTuple):
    """What one incremental chunk reports back to :meth:`iter_run`."""

    values: np.ndarray
    stderr: Optional[np.ndarray]
    n_samples: Optional[np.ndarray]
    done: bool


# --------------------------------------------------------------------------- #
# Snapshots
# --------------------------------------------------------------------------- #
@dataclass
class ValuationSnapshot:
    """One point on an estimator's convergence trajectory.

    Yielded by :meth:`ValuationAlgorithm.iter_run` after every incremental
    chunk.  ``stderr`` is ``None`` for estimators that do not define a
    per-client standard error (the exact schemes, IPSS's exhaustive phase 1 —
    IPSS's phase-2 chunks report a remaining-uncertainty residual instead);
    ``state`` references the live :class:`EstimatorState` (checkpoint it with
    ``state.to_dict()``) and is ``None`` for single-chunk adapters that cannot
    be resumed mid-run.
    """

    algorithm: str
    n_clients: int
    values: np.ndarray
    evaluations: int
    elapsed_seconds: float
    chunk_index: int
    done: bool
    stderr: Optional[np.ndarray] = None
    n_samples_per_client: Optional[np.ndarray] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    state: Optional[EstimatorState] = None

    def ci_halfwidth(self, level: float = 0.95) -> Optional[np.ndarray]:
        """Per-client normal-approximation CI half-widths, if stderr is known."""
        if self.stderr is None:
            return None
        return normal_quantile(level) * self.stderr

    def ranking(self) -> np.ndarray:
        """Client ids ordered from most to least valuable (stable ties)."""
        return np.argsort(-self.values, kind="stable")

    def max_ci95(self) -> Optional[float]:
        """Widest per-client 95% CI half-width, or ``None`` while undefined.

        ``None`` until *every* client's standard error is defined — a NaN
        stderr marks single-sample ignorance, and a partial maximum would
        understate the uncertainty.
        """
        ci = self.ci_halfwidth()
        if ci is None or not bool(np.all(np.isfinite(ci))):
            return None
        return float(np.max(ci))

    def result(self, stopped_by: Optional[str] = None) -> ValuationResult:
        """Materialise the snapshot as a :class:`ValuationResult`."""
        metadata = dict(self.metadata)
        if stopped_by is not None:
            metadata["stopped_early"] = True
            metadata["stopped_by"] = stopped_by
        return ValuationResult(
            values=np.asarray(self.values, dtype=float),
            algorithm=self.algorithm,
            n_clients=self.n_clients,
            utility_evaluations=int(self.evaluations),
            elapsed_seconds=float(self.elapsed_seconds),
            metadata=metadata,
            stderr=None if self.stderr is None else np.asarray(self.stderr, dtype=float),
            n_samples_per_client=(
                None
                if self.n_samples_per_client is None
                else np.asarray(self.n_samples_per_client, dtype=float)
            ),
        )

    def to_dict(self) -> dict:
        """JSON-safe form used by ``repro run --json-stream``.

        Undefined standard errors (NaN) map to ``null`` so the stream stays
        strict JSON; ``max_ci95`` is ``null`` until every client's CI is
        defined.
        """
        stderr = None
        if self.stderr is not None:
            stderr = [
                float(s) if np.isfinite(s) else None
                for s in np.asarray(self.stderr, dtype=float)
            ]
        return {
            "algorithm": self.algorithm,
            "n_clients": int(self.n_clients),
            "chunk": int(self.chunk_index),
            "evaluations": int(self.evaluations),
            "elapsed_seconds": float(self.elapsed_seconds),
            "done": bool(self.done),
            "values": np.asarray(self.values, dtype=float).tolist(),
            "stderr": stderr,
            "max_ci95": self.max_ci95(),
        }


def stratified_stderr(
    sums: np.ndarray, sumsq: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-client stderr of a stratified mean-of-stratum-means estimator.

    ``sums``/``sumsq``/``counts`` have shape ``(n_clients, n_strata + 1)``
    with column ``k`` accumulating a client's contribution samples from the
    coalition-size-``k`` stratum.  The estimator averages stratum means and
    divides by ``n_clients``, so its variance is ``(1/n²) Σ_k s²_k / m_k``
    with ``s²_k`` the ddof-1 sample variance of stratum ``k``.

    Per-stratum handling:

    * no samples — the stratum contributes nothing to the estimate: zero;
    * two or more samples — empirical variance of the stratum mean;
    * exactly one sample — depends on the stratum's *population* for that
      client, which for size-``k`` coalitions containing the client is
      ``C(n−1, k−1)`` (both current callers sample per-client contributions
      from exactly that space).  A population of one (the singleton and
      grand-coalition strata) is fully enumerated by a single sample and
      carries zero sampling variance; a single sample from a larger
      population is unknowable spread and yields ``NaN`` — stderr
      *undefined*, never a false-certainty zero, so CI-based stopping rules
      cannot fire on it.
    """
    sums = np.asarray(sums, dtype=float)
    sumsq = np.asarray(sumsq, dtype=float)
    counts = np.asarray(counts, dtype=float)
    n_clients = sums.shape[0]
    n_columns = sums.shape[1]
    population = np.array(
        [math.comb(n_clients - 1, k - 1) if k >= 1 else 0 for k in range(n_columns)],
        dtype=float,
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        variance = np.where(
            counts >= 2,
            np.maximum(sumsq - counts * means**2, 0.0) / np.maximum(counts - 1, 1),
            0.0,
        )
        per_stratum = np.where(counts >= 2, variance / np.maximum(counts, 1), 0.0)
        per_stratum = np.where(
            (counts == 1) & (population[None, :] > 1), np.nan, per_stratum
        )
    return np.sqrt(per_stratum.sum(axis=1)) / n_clients


# --------------------------------------------------------------------------- #
# Stopping rules
# --------------------------------------------------------------------------- #
class StoppingRule(abc.ABC):
    """Early-stop predicate over the snapshot stream of one estimation run.

    Rules may be stateful (rank stability tracks a history); :meth:`reset` is
    called once before each run so a rule instance can be reused across the
    cells of a campaign.  After :meth:`should_stop` returns ``True``,
    :attr:`fired` describes which condition triggered.
    """

    def __init__(self) -> None:
        self.fired: Optional[str] = None

    def reset(self) -> None:
        self.fired = None

    @abc.abstractmethod
    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        """Whether the run should stop after this snapshot."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Stable, parseable-back description (the ``--stop-on`` syntax)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"


class BudgetRule(StoppingRule):
    """Stop once at least ``max_evaluations`` oracle evaluations were spent."""

    def __init__(self, max_evaluations: int) -> None:
        super().__init__()
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)

    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        if snapshot.evaluations >= self.max_evaluations:
            self.fired = self.describe()
            return True
        return False

    def describe(self) -> str:
        return f"budget:{self.max_evaluations}"


class WallClockRule(StoppingRule):
    """Stop once the estimation has run for at least ``max_seconds``."""

    def __init__(self, max_seconds: float) -> None:
        super().__init__()
        if max_seconds <= 0:
            raise ValueError(f"max_seconds must be positive, got {max_seconds}")
        self.max_seconds = float(max_seconds)

    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        if snapshot.elapsed_seconds >= self.max_seconds:
            self.fired = self.describe()
            return True
        return False

    def describe(self) -> str:
        return f"wallclock:{self.max_seconds:g}"


class ConvergenceRule(StoppingRule):
    """Stop when the estimate has stabilised.

    Two convergence metrics are supported:

    ``metric="ci"``
        every client's CI half-width (at ``ci_level``) is at most
        ``threshold`` for ``patience`` consecutive snapshots.  Snapshots
        without standard errors never satisfy this metric.
    ``metric="rank"``
        the client ranking (restricted to the top ``top_k`` clients when
        given) is unchanged across ``patience`` consecutive snapshots —
        i.e. ``patience`` additional chunks bought no rank movement.
    """

    METRICS = ("ci", "rank")

    def __init__(
        self,
        metric: str = "ci",
        threshold: Optional[float] = None,
        top_k: Optional[int] = None,
        patience: int = 2,
        ci_level: float = 0.95,
    ) -> None:
        super().__init__()
        if metric not in self.METRICS:
            raise ValueError(f"metric must be one of {self.METRICS}, got {metric!r}")
        if metric == "ci":
            if threshold is None or threshold <= 0:
                raise ValueError("metric='ci' needs a positive threshold")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.metric = metric
        self.threshold = None if threshold is None else float(threshold)
        self.top_k = None if top_k is None else int(top_k)
        self.patience = int(patience)
        self.ci_level = float(ci_level)
        self._streak = 0
        self._last_ranking: Optional[tuple] = None

    def reset(self) -> None:
        super().reset()
        self._streak = 0
        self._last_ranking = None

    def _rank_key(self, snapshot: ValuationSnapshot) -> tuple:
        ranking = snapshot.ranking()
        if self.top_k is not None:
            ranking = ranking[: self.top_k]
        return tuple(int(c) for c in ranking)

    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        if self.metric == "ci":
            ci = snapshot.ci_halfwidth(self.ci_level)
            samples = snapshot.n_samples_per_client
            ok = (
                ci is not None
                # NaN marks an undefined stderr (e.g. a single-sample stratum
                # inside the estimate) — ignorance, not certainty.
                and bool(np.all(np.isfinite(ci)))
                and bool(np.all(ci <= self.threshold))
                and (samples is None or bool(np.all(samples >= 2)))
            )
            self._streak = self._streak + 1 if ok else 0
        else:
            key = self._rank_key(snapshot)
            if self._last_ranking is not None and key == self._last_ranking:
                self._streak += 1
            else:
                self._streak = 0
            self._last_ranking = key
        if self._streak >= self.patience:
            self.fired = self.describe()
            return True
        return False

    def describe(self) -> str:
        if self.metric == "ci":
            return f"ci:{self.threshold:g}@{self.patience}"
        if self.top_k is not None:
            return f"rank:{self.patience}@top{self.top_k}"
        return f"rank:{self.patience}"


class _CompositeRule(StoppingRule):
    def __init__(self, rules: Sequence[StoppingRule]) -> None:
        super().__init__()
        if not rules:
            raise ValueError(f"{type(self).__name__} needs at least one rule")
        self.rules: List[StoppingRule] = list(rules)

    def reset(self) -> None:
        super().reset()
        for rule in self.rules:
            rule.reset()


class AnyOf(_CompositeRule):
    """Stop as soon as any member rule fires."""

    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        stop = False
        for rule in self.rules:
            # Evaluate every member: stateful rules must see every snapshot.
            if rule.should_stop(snapshot):
                stop = True
        if stop:
            self.fired = " | ".join(r.fired for r in self.rules if r.fired is not None)
        return stop

    def describe(self) -> str:
        return ",".join(rule.describe() for rule in self.rules)


class AllOf(_CompositeRule):
    """Stop only when every member rule agrees (each on the same snapshot)."""

    def should_stop(self, snapshot: ValuationSnapshot) -> bool:
        votes = [rule.should_stop(snapshot) for rule in self.rules]
        if all(votes):
            self.fired = self.describe()
            return True
        return False

    def describe(self) -> str:
        return " & ".join(rule.describe() for rule in self.rules)


def parse_stopping_rule(spec: str) -> StoppingRule:
    """Parse the ``--stop-on`` mini-language into a stopping rule.

    Comma-separated terms combine as :class:`AnyOf`.  Terms:

    * ``budget:<N>`` — stop at ``N`` oracle evaluations;
    * ``wallclock:<seconds>`` — stop after that much wall-clock time;
    * ``ci:<width>[@<patience>]`` — CI convergence (default patience 2);
    * ``rank:<patience>[@top<K>]`` — rank stability over ``patience`` chunks,
      optionally restricted to the top ``K`` clients.

    Example: ``"budget:256,rank:3@top5"``.
    """
    if not spec or not spec.strip():
        raise ValueError("empty stopping-rule specification")
    rules: List[StoppingRule] = []
    for term in (part.strip() for part in spec.split(",")):
        if not term:
            continue
        kind, _, argument = term.partition(":")
        if not argument:
            raise ValueError(
                f"malformed stopping-rule term {term!r}; expected kind:value"
            )
        try:
            if kind == "budget":
                rules.append(BudgetRule(int(argument)))
            elif kind == "wallclock":
                rules.append(WallClockRule(float(argument)))
            elif kind == "ci":
                width, _, patience = argument.partition("@")
                rules.append(
                    ConvergenceRule(
                        metric="ci",
                        threshold=float(width),
                        patience=int(patience) if patience else 2,
                    )
                )
            elif kind == "rank":
                patience, _, top = argument.partition("@")
                top_k = None
                if top:
                    if not top.startswith("top"):
                        raise ValueError(f"expected 'top<K>' after '@', got {top!r}")
                    top_k = int(top[3:])
                rules.append(
                    ConvergenceRule(metric="rank", patience=int(patience), top_k=top_k)
                )
            else:
                raise ValueError(
                    f"unknown stopping-rule kind {kind!r}; "
                    "known kinds: budget, wallclock, ci, rank"
                )
        except ValueError as error:
            raise ValueError(f"bad stopping-rule term {term!r}: {error}") from None
    if not rules:
        raise ValueError(f"no stopping-rule terms in {spec!r}")
    if len(rules) == 1:
        return rules[0]
    return AnyOf(rules)
