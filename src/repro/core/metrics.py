"""Evaluation metrics for valuation algorithms.

The paper reports two headline metrics (Sec. V-A): calculation time and the
relative ℓ2 approximation error against the exact MC-SV values.  For the
scalability experiment (Fig. 9), where exact values are unobtainable, it uses
proxy metrics based on the fairness axioms: how far estimated values of
*null* clients are from zero (no-free-riders) and how far values of clients
with identical datasets are from each other (symmetric fairness).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import stats


def relative_error_l2(estimated: np.ndarray, exact: np.ndarray) -> float:
    """``‖φ̂ − φ‖₂ / ‖φ‖₂`` — the paper's approximation-error metric (Eq. 21)."""
    estimated = np.asarray(estimated, dtype=float)
    exact = np.asarray(exact, dtype=float)
    if estimated.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: estimated {estimated.shape} vs exact {exact.shape}"
        )
    denominator = np.linalg.norm(exact)
    if denominator == 0.0:
        return float(np.linalg.norm(estimated - exact))
    return float(np.linalg.norm(estimated - exact) / denominator)


def max_absolute_error(estimated: np.ndarray, exact: np.ndarray) -> float:
    """Worst-case per-client absolute error."""
    estimated = np.asarray(estimated, dtype=float)
    exact = np.asarray(exact, dtype=float)
    if estimated.shape != exact.shape:
        raise ValueError("estimated and exact must have the same shape")
    return float(np.max(np.abs(estimated - exact)))


def rank_correlation(estimated: np.ndarray, exact: np.ndarray) -> float:
    """Spearman rank correlation between estimated and exact values.

    Data markets mostly care about the *ordering* of clients; a high rank
    correlation means the approximation preserves who is worth more.
    """
    estimated = np.asarray(estimated, dtype=float)
    exact = np.asarray(exact, dtype=float)
    if estimated.shape != exact.shape:
        raise ValueError("estimated and exact must have the same shape")
    if len(estimated) < 2:
        return 1.0
    correlation = stats.spearmanr(estimated, exact).statistic
    if np.isnan(correlation):
        return 0.0
    return float(correlation)


def null_player_error(values: np.ndarray, null_clients: Iterable[int]) -> float:
    """No-free-riders proxy error (Fig. 9).

    Clients in ``null_clients`` hold empty (or useless) datasets, so their
    exact value is zero.  The error is the ℓ2 norm of their estimated values
    normalised by the ℓ2 norm of all values; zero means the axiom holds.
    """
    values = np.asarray(values, dtype=float)
    null_clients = list(null_clients)
    if not null_clients:
        return 0.0
    denominator = np.linalg.norm(values)
    if denominator == 0.0:
        return 0.0
    return float(np.linalg.norm(values[null_clients]) / denominator)


def symmetry_error(values: np.ndarray, duplicate_groups: Sequence[Sequence[int]]) -> float:
    """Symmetric-fairness proxy error (Fig. 9).

    Each group in ``duplicate_groups`` lists clients holding identical
    datasets, whose exact values are equal.  The error is the average spread
    (max − min) within each group, normalised by the mean absolute value.
    """
    values = np.asarray(values, dtype=float)
    spreads = []
    for group in duplicate_groups:
        group = list(group)
        if len(group) < 2:
            continue
        member_values = values[group]
        spreads.append(float(member_values.max() - member_values.min()))
    if not spreads:
        return 0.0
    scale = float(np.mean(np.abs(values)))
    if scale == 0.0:
        return float(np.mean(spreads))
    return float(np.mean(spreads) / scale)


def fairness_proxy_error(
    values: np.ndarray,
    null_clients: Iterable[int],
    duplicate_groups: Sequence[Sequence[int]],
) -> float:
    """Combined Fig. 9 proxy: null-player error plus symmetry error."""
    return null_player_error(values, null_clients) + symmetry_error(
        values, duplicate_groups
    )


def efficiency_gap(values: np.ndarray, grand_utility: float, empty_utility: float) -> float:
    """|Σ φ_i − (U(N) − U(∅))| — how far the values are from efficiency.

    The exact Shapley value satisfies efficiency exactly; approximations do
    not, and the gap is a useful diagnostic reported in EXPERIMENTS.md.
    """
    values = np.asarray(values, dtype=float)
    return float(abs(values.sum() - (grand_utility - empty_utility)))
