"""Exact Shapley-value computation schemes.

Three equivalent formulations are provided, matching the paper's Definitions
3–4 and the Perm-Shapley baseline:

* :class:`MCShapley` — marginal-contribution scheme (Def. 3),
* :class:`CCShapley` — complementary-contribution scheme (Def. 4),
* :class:`PermShapley` — permutation form, averaging marginal contributions
  over every ordering of the clients.

All three train/evaluate ``O(2^n)`` coalitions (``O(n!)`` orderings for the
permutation form), so they are only usable for small ``n`` — which is exactly
the paper's motivation for approximation.  They serve as ground truth in the
experiments and tests.

All three are *incremental*: evaluation proceeds one coalition-size stratum
per chunk (smallest first, each planned through ``_batch_utilities`` so
batch-capable oracles train the stratum concurrently), and every chunk yields
an interim estimate restricted to the marginal pairs whose endpoints are both
evaluated.  Consumed to exhaustion the chunks fold contributions in exactly
the order the monolithic loop did, so the final values are bitwise-identical.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.anytime import StepResult
from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.core.plans import DEFAULT_PLAN_BATCH, check_enumeration_limit
from repro.utils.combinatorics import coalitions_of_size, marginal_coefficient
from repro.utils.rng import SeedLike

#: refuse exact permutation enumeration beyond this many clients
MAX_EXACT_PERMUTATION_CLIENTS = 9

#: refuse exact coalition enumeration beyond this many clients
MAX_EXACT_COALITION_CLIENTS = 20


def mc_accumulate_stratum(
    utilities: dict,
    n_clients: int,
    base_size: int,
    values: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Fold the MC contributions of all base coalitions of one size.

    Called once the ``base_size + 1`` stratum is evaluated.  For any fixed
    client the coalitions arrive in the same (size-ascending, lexicographic)
    order as the monolithic per-client loop, and each ``+=`` touches a single
    scalar accumulator — so the folded floats are bitwise-identical to the
    one-shot computation.

    This fold order is load-bearing for the bitwise-parity contract and is
    shared by every MC-scheme estimator (MC/Perm-Shapley here, K-Greedy and
    IPSS's exhaustive phase import it) — change it in one place or not at
    all.
    """
    weight = marginal_coefficient(n_clients, base_size)
    for coalition in coalitions_of_size(n_clients, base_size):
        base_utility = utilities[coalition]
        for client in range(n_clients):
            if client in coalition:
                continue
            values[client] += weight * (utilities[coalition | {client}] - base_utility)
            counts[client] += 1


class MCShapley(ValuationAlgorithm):
    """Exact Shapley value via the marginal-contribution scheme (MC-SV).

    ``φ_i = Σ_{S ⊆ N\\{i}} [U(S ∪ {i}) − U(S)] / (n · C(n−1, |S|))``
    """

    name = "MC-Shapley"
    incremental = True

    def __init__(
        self, max_exact_clients: int | None = None, seed: SeedLike = None
    ) -> None:
        super().__init__(seed=seed)
        self.max_exact_clients = (
            MAX_EXACT_COALITION_CLIENTS
            if max_exact_clients is None
            else int(max_exact_clients)
        )

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        check_enumeration_limit(n_clients, self.max_exact_clients, "MC-SV")
        return {
            "utilities": {},
            "next_size": 0,
            "values": np.zeros(n_clients),
            "counts": np.zeros(n_clients),
        }

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        size = int(payload["next_size"])
        payload["utilities"].update(
            self._batch_utilities(
                utility,
                coalitions_of_size(n_clients, size),
                batch_size=DEFAULT_PLAN_BATCH,
            )
        )
        if size >= 1:
            mc_accumulate_stratum(
                payload["utilities"], n_clients, size - 1,
                payload["values"], payload["counts"],
            )
        payload["next_size"] = size + 1
        return StepResult(
            values=payload["values"].copy(),
            stderr=None,
            n_samples=payload["counts"].copy(),
            done=size >= n_clients,
        )

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)


class CCShapley(ValuationAlgorithm):
    """Exact Shapley value via the complementary-contribution scheme (CC-SV).

    ``φ_i = Σ_{S ⊆ N\\{i}} [U(S ∪ {i}) − U(N \\ (S ∪ {i}))] / (n · C(n−1, |S|))``
    """

    name = "CC-Shapley-exact"
    incremental = True

    def __init__(
        self, max_exact_clients: int | None = None, seed: SeedLike = None
    ) -> None:
        super().__init__(seed=seed)
        self.max_exact_clients = (
            MAX_EXACT_COALITION_CLIENTS
            if max_exact_clients is None
            else int(max_exact_clients)
        )

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        check_enumeration_limit(n_clients, self.max_exact_clients, "CC-SV")
        return {"utilities": {}, "next_size": 0}

    @staticmethod
    def _restricted_values(utilities: dict, n_clients: int) -> np.ndarray:
        """The CC-SV sum over pairs whose both endpoints are evaluated.

        A coalition's complementary pair can live in a *larger* stratum than
        the coalition itself, so contributions cannot be folded stratum by
        stratum in the monolithic order; instead the (cheap) restricted sum is
        recomputed per chunk.  Once every stratum is in, the guard never
        skips and the loop *is* the monolithic one — identical fold order.
        """
        everyone = frozenset(range(n_clients))
        values = np.zeros(n_clients)
        for client in range(n_clients):
            for coalition in utilities:
                if client in coalition:
                    continue
                with_client = coalition | {client}
                complement = everyone - with_client
                if with_client not in utilities or complement not in utilities:
                    continue
                weight = marginal_coefficient(n_clients, len(coalition))
                values[client] += weight * (
                    utilities[with_client] - utilities[complement]
                )
        return values

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        size = int(payload["next_size"])
        payload["utilities"].update(
            self._batch_utilities(
                utility,
                coalitions_of_size(n_clients, size),
                batch_size=DEFAULT_PLAN_BATCH,
            )
        )
        payload["next_size"] = size + 1
        return StepResult(
            values=self._restricted_values(payload["utilities"], n_clients),
            stderr=None,
            n_samples=None,
            done=size >= n_clients,
        )

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)


class PermShapley(ValuationAlgorithm):
    """Exact Shapley value via full permutation enumeration (Perm-SV).

    For every ordering π of the clients the marginal contribution of each
    client with respect to its predecessors is accumulated; the Shapley value
    is the average over all ``n!`` orderings.  Equivalent to MC-SV but — as in
    the paper's Perm-Shapley baseline — far more expensive, so it is capped at
    :data:`MAX_EXACT_PERMUTATION_CLIENTS` clients.

    Incrementally the coalition strata are evaluated one chunk at a time
    (every prefix of every permutation is some subset of N); interim chunks
    report the MC-SV estimate restricted to the evaluated strata, and the
    final chunk runs the n!-ordering sweep over the complete table.
    """

    name = "Perm-Shapley"
    incremental = True

    def __init__(
        self, max_exact_clients: int | None = None, seed: SeedLike = None
    ) -> None:
        super().__init__(seed=seed)
        self.max_exact_clients = (
            MAX_EXACT_PERMUTATION_CLIENTS
            if max_exact_clients is None
            else int(max_exact_clients)
        )

    def _incremental_init(self, n_clients: int, rng: np.random.Generator) -> dict:
        check_enumeration_limit(n_clients, self.max_exact_clients, "Perm-SV")
        return {
            "utilities": {},
            "next_size": 0,
            "values": np.zeros(n_clients),
            "counts": np.zeros(n_clients),
        }

    def _incremental_step(self, utility, n_clients, rng, payload) -> StepResult:
        size = int(payload["next_size"])
        payload["utilities"].update(
            self._batch_utilities(
                utility,
                coalitions_of_size(n_clients, size),
                batch_size=DEFAULT_PLAN_BATCH,
            )
        )
        if size >= 1:
            # Interim trajectory: the (equivalent) MC-SV estimate over the
            # evaluated strata — the permutation sweep needs the full table.
            mc_accumulate_stratum(
                payload["utilities"], n_clients, size - 1,
                payload["values"], payload["counts"],
            )
        payload["next_size"] = size + 1
        if size < n_clients:
            return StepResult(
                values=payload["values"].copy(),
                stderr=None,
                n_samples=payload["counts"].copy(),
                done=False,
            )
        return StepResult(
            values=self._permutation_sweep(payload["utilities"], n_clients),
            stderr=None,
            n_samples=payload["counts"].copy(),
            done=True,
        )

    @staticmethod
    def _permutation_sweep(utilities: dict, n_clients: int) -> np.ndarray:
        values = np.zeros(n_clients)
        n_permutations = math.factorial(n_clients)
        for permutation in itertools.permutations(range(n_clients)):
            prefix: frozenset = frozenset()
            previous_utility = utilities[prefix]
            for client in permutation:
                prefix = prefix | {client}
                current_utility = utilities[prefix]
                values[client] += current_utility - previous_utility
                previous_utility = current_utility
        return values / n_permutations

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._drive_chunks(utility, n_clients, rng)


def exact_shapley(utility: UtilityFunction, n_clients: int) -> np.ndarray:
    """Convenience function returning the exact MC-SV values as an array."""
    return MCShapley().run(utility, n_clients).values
