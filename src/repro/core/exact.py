"""Exact Shapley-value computation schemes.

Three equivalent formulations are provided, matching the paper's Definitions
3–4 and the Perm-Shapley baseline:

* :class:`MCShapley` — marginal-contribution scheme (Def. 3),
* :class:`CCShapley` — complementary-contribution scheme (Def. 4),
* :class:`PermShapley` — permutation form, averaging marginal contributions
  over every ordering of the clients.

All three train/evaluate ``O(2^n)`` coalitions (``O(n!)`` orderings for the
permutation form), so they are only usable for small ``n`` — which is exactly
the paper's motivation for approximation.  They serve as ground truth in the
experiments and tests.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.base import UtilityFunction, ValuationAlgorithm
from repro.utils.combinatorics import all_coalitions, marginal_coefficient

#: refuse exact permutation enumeration beyond this many clients
MAX_EXACT_PERMUTATION_CLIENTS = 9

#: refuse exact coalition enumeration beyond this many clients
MAX_EXACT_COALITION_CLIENTS = 20


def _check_tractable(n_clients: int, limit: int, scheme: str) -> None:
    if n_clients > limit:
        raise ValueError(
            f"exact {scheme} is intractable for {n_clients} clients "
            f"(limit {limit}); use an approximation algorithm instead"
        )


class MCShapley(ValuationAlgorithm):
    """Exact Shapley value via the marginal-contribution scheme (MC-SV).

    ``φ_i = Σ_{S ⊆ N\\{i}} [U(S ∪ {i}) − U(S)] / (n · C(n−1, |S|))``
    """

    name = "MC-Shapley"

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_tractable(n_clients, MAX_EXACT_COALITION_CLIENTS, "MC-SV")
        # Request every coalition as one batch: a batch-capable oracle trains
        # them concurrently, a plain callable is fed them sequentially.
        utilities = self._batch_utilities(utility, all_coalitions(n_clients))
        values = np.zeros(n_clients)
        for client in range(n_clients):
            for coalition, value in utilities.items():
                if client in coalition:
                    continue
                with_client = coalition | {client}
                weight = marginal_coefficient(n_clients, len(coalition))
                values[client] += weight * (utilities[with_client] - value)
        return values


class CCShapley(ValuationAlgorithm):
    """Exact Shapley value via the complementary-contribution scheme (CC-SV).

    ``φ_i = Σ_{S ⊆ N\\{i}} [U(S ∪ {i}) − U(N \\ (S ∪ {i}))] / (n · C(n−1, |S|))``
    """

    name = "CC-Shapley-exact"

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_tractable(n_clients, MAX_EXACT_COALITION_CLIENTS, "CC-SV")
        everyone = frozenset(range(n_clients))
        utilities = self._batch_utilities(utility, all_coalitions(n_clients))
        values = np.zeros(n_clients)
        for client in range(n_clients):
            for coalition in utilities:
                if client in coalition:
                    continue
                with_client = coalition | {client}
                complement = everyone - with_client
                weight = marginal_coefficient(n_clients, len(coalition))
                values[client] += weight * (
                    utilities[with_client] - utilities[complement]
                )
        return values


class PermShapley(ValuationAlgorithm):
    """Exact Shapley value via full permutation enumeration (Perm-SV).

    For every ordering π of the clients the marginal contribution of each
    client with respect to its predecessors is accumulated; the Shapley value
    is the average over all ``n!`` orderings.  Equivalent to MC-SV but — as in
    the paper's Perm-Shapley baseline — far more expensive, so it is capped at
    :data:`MAX_EXACT_PERMUTATION_CLIENTS` clients.
    """

    name = "Perm-Shapley"

    def _estimate(
        self, utility: UtilityFunction, n_clients: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_tractable(n_clients, MAX_EXACT_PERMUTATION_CLIENTS, "Perm-SV")
        # Every prefix of every permutation is some subset of N, so the whole
        # n!-ordering sweep needs exactly the 2^n coalition utilities — fetch
        # them as one batch instead of one oracle call per prefix.
        utilities = self._batch_utilities(utility, all_coalitions(n_clients))
        values = np.zeros(n_clients)
        n_permutations = math.factorial(n_clients)
        for permutation in itertools.permutations(range(n_clients)):
            prefix: frozenset = frozenset()
            previous_utility = utilities[prefix]
            for client in permutation:
                prefix = prefix | {client}
                current_utility = utilities[prefix]
                values[client] += current_utility - previous_utility
                previous_utility = current_utility
        return values / n_permutations


def exact_shapley(utility: UtilityFunction, n_clients: int) -> np.ndarray:
    """Convenience function returning the exact MC-SV values as an array."""
    return MCShapley().run(utility, n_clients).values
