"""Result object returned by every valuation algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np


@dataclass
class ValuationResult:
    """Estimated data values plus the cost of producing them.

    Attributes
    ----------
    values:
        Array of shape ``(n_clients,)`` with the (approximate) Shapley value
        of each FL client's dataset.
    algorithm:
        Name of the algorithm that produced the estimate.
    n_clients:
        Number of FL clients.
    utility_evaluations:
        Number of coalition utility evaluations (i.e. FL trainings) consumed.
        This is the hardware-independent cost the paper's τ·count analysis uses.
    elapsed_seconds:
        Wall-clock time of the estimation.
    metadata:
        Algorithm-specific extras (e.g. k*, sampled coalitions, truncations).
    stderr:
        Optional per-client standard errors of the estimate, for estimators
        that define them (the Monte-Carlo samplers and the stratified
        framework).  ``None`` for deterministic schemes.
    n_samples_per_client:
        Optional per-client count of contribution samples the estimate
        averages over; ``None`` when the estimator has no sample notion.
    ci_level:
        The confidence level :meth:`ci_halfwidth` uses by default (metadata
        for serialised results; the half-widths themselves are derived).
    """

    values: np.ndarray
    algorithm: str
    n_clients: int
    utility_evaluations: int = 0
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    stderr: Optional[np.ndarray] = None
    n_samples_per_client: Optional[np.ndarray] = None
    ci_level: float = 0.95

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (self.n_clients,):
            raise ValueError(
                f"values must have shape ({self.n_clients},), got {self.values.shape}"
            )
        for name in ("stderr", "n_samples_per_client"):
            current = getattr(self, name)
            if current is None:
                continue
            current = np.asarray(current, dtype=float)
            if current.shape != (self.n_clients,):
                raise ValueError(
                    f"{name} must have shape ({self.n_clients},), got {current.shape}"
                )
            setattr(self, name, current)

    def value_of(self, client_id: int) -> float:
        return float(self.values[client_id])

    def ranking(self) -> np.ndarray:
        """Client ids ordered from most to least valuable."""
        return np.argsort(-self.values)

    def normalized(self) -> np.ndarray:
        """Values rescaled to sum to one (efficiency-normalised shares).

        If the values sum to (near) zero the unnormalised values are returned,
        since shares are undefined in that case.
        """
        total = self.values.sum()
        if np.isclose(total, 0.0):
            return self.values.copy()
        return self.values / total

    def ci_halfwidth(self, level: Optional[float] = None) -> Optional[np.ndarray]:
        """Per-client normal-approximation CI half-widths, if stderr is known."""
        if self.stderr is None:
            return None
        from repro.core.anytime import normal_quantile

        return normal_quantile(self.ci_level if level is None else level) * self.stderr

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the experiment reports and checkpoints.

        The encoding is lossless: :meth:`from_dict` of a JSON round-trip
        reconstructs bitwise-identical arrays (Python's ``json`` serialises
        floats via shortest-round-trip ``repr``).
        """
        return {
            "algorithm": self.algorithm,
            "n_clients": self.n_clients,
            "values": self.values.tolist(),
            "utility_evaluations": self.utility_evaluations,
            "elapsed_seconds": self.elapsed_seconds,
            "metadata": dict(self.metadata),
            "stderr": None if self.stderr is None else self.stderr.tolist(),
            "n_samples_per_client": (
                None
                if self.n_samples_per_client is None
                else self.n_samples_per_client.tolist()
            ),
            "ci_level": self.ci_level,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ValuationResult":
        """Inverse of :meth:`to_dict` (tolerant of pre-anytime payloads)."""

        def _array(value):
            return None if value is None else np.asarray(value, dtype=float)

        return cls(
            values=np.asarray(payload["values"], dtype=float),
            algorithm=str(payload["algorithm"]),
            n_clients=int(payload["n_clients"]),
            utility_evaluations=int(payload.get("utility_evaluations", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            metadata=dict(payload.get("metadata", {})),
            stderr=_array(payload.get("stderr")),
            n_samples_per_client=_array(payload.get("n_samples_per_client")),
            ci_level=float(payload.get("ci_level", 0.95)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rounded = np.round(self.values, 4).tolist()
        return (
            f"ValuationResult(algorithm={self.algorithm!r}, values={rounded}, "
            f"evaluations={self.utility_evaluations}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )
