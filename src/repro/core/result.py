"""Result object returned by every valuation algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np


@dataclass
class ValuationResult:
    """Estimated data values plus the cost of producing them.

    Attributes
    ----------
    values:
        Array of shape ``(n_clients,)`` with the (approximate) Shapley value
        of each FL client's dataset.
    algorithm:
        Name of the algorithm that produced the estimate.
    n_clients:
        Number of FL clients.
    utility_evaluations:
        Number of coalition utility evaluations (i.e. FL trainings) consumed.
        This is the hardware-independent cost the paper's τ·count analysis uses.
    elapsed_seconds:
        Wall-clock time of the estimation.
    metadata:
        Algorithm-specific extras (e.g. k*, sampled coalitions, truncations).
    """

    values: np.ndarray
    algorithm: str
    n_clients: int
    utility_evaluations: int = 0
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (self.n_clients,):
            raise ValueError(
                f"values must have shape ({self.n_clients},), got {self.values.shape}"
            )

    def value_of(self, client_id: int) -> float:
        return float(self.values[client_id])

    def ranking(self) -> np.ndarray:
        """Client ids ordered from most to least valuable."""
        return np.argsort(-self.values)

    def normalized(self) -> np.ndarray:
        """Values rescaled to sum to one (efficiency-normalised shares).

        If the values sum to (near) zero the unnormalised values are returned,
        since shares are undefined in that case.
        """
        total = self.values.sum()
        if np.isclose(total, 0.0):
            return self.values.copy()
        return self.values / total

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the experiment reports."""
        return {
            "algorithm": self.algorithm,
            "n_clients": self.n_clients,
            "values": self.values.tolist(),
            "utility_evaluations": self.utility_evaluations,
            "elapsed_seconds": self.elapsed_seconds,
            "metadata": dict(self.metadata),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rounded = np.round(self.values, 4).tolist()
        return (
            f"ValuationResult(algorithm={self.algorithm!r}, values={rounded}, "
            f"evaluations={self.utility_evaluations}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )
