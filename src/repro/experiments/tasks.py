"""Builders that turn a paper experiment setup into a coalition-utility oracle.

Every experiment in Sec. V starts from the same recipe: generate (or load) a
dataset, partition it across ``n`` FL clients according to the setup, choose
an FL model, and wrap the whole thing in a utility oracle ``U(S)``.  The
builders here produce :class:`~repro.fl.utility.CoalitionUtility` objects for

* the five synthetic MNIST-style setups (Fig. 6 a–e),
* the FEMNIST-style experiments (Table IV, Fig. 1b, 4, 7, 8, 9, 10), and
* the Adult-style experiments (Table V).

Every builder has a deterministic *fingerprint*: the stable content address
of the task it builds (:func:`task_fingerprint`), covering the task kind, all
structural parameters, the full :class:`ExperimentScale` and the seed.  The
fingerprint namespaces the task's coalitions in a persistent
:class:`~repro.store.UtilityStore` — pass ``store=`` to any builder and its
trained utilities survive the process, keyed so that no other task (or other
seed/scale of the same task) can alias them.
"""

from __future__ import annotations

import numbers
from functools import partial
from typing import Callable, Optional, Sequence

from repro.datasets import (
    Dataset,
    add_feature_noise,
    flip_labels,
    make_adult_like,
    make_femnist_like,
    make_mnist_like,
    partition_by_group,
    partition_different_sizes,
    partition_iid,
    partition_label_skew,
    train_test_split,
)
from repro.experiments.config import ExperimentScale
from repro.fl import CoalitionUtility, FLConfig
from repro.models import (
    GradientBoostedTrees,
    LogisticRegressionModel,
    MLPClassifier,
    SimpleCNN,
)
from repro.store import FINGERPRINT_SCHEMA_VERSION, StoreLike, fingerprint
from repro.utils.rng import RandomState, SeedLike, spawn_rng

#: identifiers of the paper's five synthetic setups (Fig. 6 a–e)
SYNTHETIC_SETUPS = (
    "same-size-same-distribution",
    "same-size-different-distribution",
    "different-size-same-distribution",
    "same-size-noisy-label",
    "same-size-noisy-feature",
)

MODEL_NAMES = ("mlp", "cnn", "logistic", "xgb")


def _model_factory(
    model: str,
    n_features: int,
    n_classes: int,
    image_size: int,
    scale: ExperimentScale,
) -> Callable:
    """Build a zero-argument factory for the requested FL model family.

    Factories are :func:`functools.partial` objects rather than lambdas so
    they pickle — which is what lets the ``process`` executor backend ship a
    task's evaluator to worker processes.
    """
    if model == "mlp":
        # Small batches keep the number of SGD steps per FL round high enough
        # that a coalition's model actually fits its data; otherwise the
        # utility stays flat and every valuation degenerates.
        return partial(
            MLPClassifier,
            n_features=n_features,
            n_classes=n_classes,
            hidden_sizes=(scale.mlp_hidden,),
            learning_rate=0.5,
            batch_size=10,
        )
    if model == "cnn":
        return partial(
            SimpleCNN,
            image_size=image_size,
            n_classes=n_classes,
            n_filters=scale.cnn_filters,
            learning_rate=0.4,
            batch_size=10,
        )
    if model == "logistic":
        return partial(
            LogisticRegressionModel,
            n_features=n_features,
            n_classes=n_classes,
            learning_rate=0.5,
            batch_size=16,
        )
    if model == "xgb":
        return partial(
            GradientBoostedTrees,
            n_classes=n_classes,
            n_rounds=scale.gbdt_rounds,
            max_depth=3,
        )
    raise ValueError(f"unknown model {model!r}; choose from {MODEL_NAMES}")


def _fl_config(scale: ExperimentScale) -> FLConfig:
    return FLConfig(rounds=scale.fl_rounds, local_epochs=scale.local_epochs)


def task_fingerprint(
    kind: str,
    scale: ExperimentScale,
    seed: SeedLike,
    **params,
) -> Optional[str]:
    """Stable content address of a task built by this module.

    Covers everything that determines a coalition's trained utility: the task
    kind, its structural parameters (client count, model, setup, noise,
    special clients), the *full* scale (dataset sizes, FL rounds, model
    widths) and the seed.  Returns ``None`` when the seed is a live RNG
    rather than an integer — such a task is not reproducible, so it has no
    content address (and must not be persisted).
    """
    if seed is None or not isinstance(seed, numbers.Integral):
        return None
    payload = {
        "schema": FINGERPRINT_SCHEMA_VERSION,
        "task": kind,
        "scale": scale,
        "seed": int(seed),
        "params": params,
    }
    return fingerprint(payload)


def _wrap(
    clients: Sequence[Dataset],
    test: Dataset,
    model: str,
    scale: ExperimentScale,
    image_size: int,
    n_classes: int,
    seed: SeedLike,
    store: StoreLike = None,
    task_key: Optional[str] = None,
    client_dropout: Optional[Sequence[float]] = None,
) -> CoalitionUtility:
    if store is not None and task_key is None:
        raise ValueError(
            "a persistent store requires a reproducible task: pass an integer "
            "seed so the task has a deterministic fingerprint"
        )
    factory = _model_factory(
        model,
        n_features=test.n_features,
        n_classes=n_classes,
        image_size=image_size,
        scale=scale,
    )
    utility = CoalitionUtility(
        client_datasets=list(clients),
        test_dataset=test,
        model_factory=factory,
        config=_fl_config(scale),
        seed=seed,
        store=store,
        store_namespace=task_key,
        client_dropout=client_dropout,
    )
    utility.task_fingerprint = task_key
    return utility


# --------------------------------------------------------------------------- #
# Synthetic MNIST-style setups (Fig. 6)
# --------------------------------------------------------------------------- #
def build_synthetic_task(
    setup: str,
    n_clients: int = 10,
    model: str = "mlp",
    scale: Optional[ExperimentScale] = None,
    noise_level: float = 0.2,
    seed: SeedLike = 0,
    store: StoreLike = None,
) -> CoalitionUtility:
    """Build the coalition-utility oracle for one of the five synthetic setups.

    Parameters
    ----------
    setup:
        One of :data:`SYNTHETIC_SETUPS`.
    noise_level:
        Label-flip fraction (setup d) or feature-noise scale (setup e); the
        paper sweeps 0.00–0.20.  Ignored by the other setups.
    store:
        Optional persistent utility store (instance or path); trained
        coalition utilities are shared across processes and runs under this
        task's fingerprint.
    """
    if setup not in SYNTHETIC_SETUPS:
        raise ValueError(f"unknown setup {setup!r}; choose from {SYNTHETIC_SETUPS}")
    scale = scale or ExperimentScale.small()
    task_key = task_fingerprint(
        "synthetic",
        scale,
        seed,
        setup=setup,
        n_clients=n_clients,
        model=model,
        noise_level=float(noise_level),
    )
    rng = RandomState(seed)
    data_rng, split_rng, noise_rng, utility_rng = spawn_rng(rng, 4)

    pooled = make_mnist_like(
        n_samples=scale.samples_per_client * n_clients + scale.test_samples,
        image_size=scale.image_size,
        seed=data_rng,
    )
    train, test = train_test_split(
        pooled,
        test_fraction=scale.test_samples / len(pooled),
        seed=split_rng,
    )

    if setup == "same-size-same-distribution":
        clients = partition_iid(train, n_clients, seed=split_rng)
    elif setup == "same-size-different-distribution":
        clients = partition_label_skew(train, n_clients, seed=split_rng)
    elif setup == "different-size-same-distribution":
        clients = partition_different_sizes(train, n_clients, seed=split_rng)
    elif setup == "same-size-noisy-label":
        clients = partition_iid(train, n_clients, seed=split_rng)
        noise_rngs = spawn_rng(noise_rng, n_clients)
        # Noise severity grows with the client index, so clients genuinely
        # differ in quality — which is what the valuation should detect.
        clients = [
            flip_labels(client, noise_level * index / max(1, n_clients - 1), seed=r)
            for index, (client, r) in enumerate(zip(clients, noise_rngs))
        ]
    else:  # same-size-noisy-feature
        clients = partition_iid(train, n_clients, seed=split_rng)
        noise_rngs = spawn_rng(noise_rng, n_clients)
        clients = [
            add_feature_noise(client, noise_level * index / max(1, n_clients - 1), seed=r)
            for index, (client, r) in enumerate(zip(clients, noise_rngs))
        ]

    return _wrap(
        clients,
        test,
        model=model,
        scale=scale,
        image_size=scale.image_size,
        n_classes=pooled.num_classes,
        seed=utility_rng,
        store=store,
        task_key=task_key,
    )


# --------------------------------------------------------------------------- #
# FEMNIST-style task (Table IV and most figures)
# --------------------------------------------------------------------------- #
def build_femnist_task(
    n_clients: int = 10,
    model: str = "mlp",
    scale: Optional[ExperimentScale] = None,
    n_null_clients: int = 0,
    n_duplicate_clients: int = 0,
    seed: SeedLike = 0,
    store: StoreLike = None,
) -> tuple[CoalitionUtility, dict]:
    """Writer-partitioned FEMNIST-style task.

    ``n_null_clients`` clients are given empty datasets and
    ``n_duplicate_clients`` clients are given a copy of client 0's dataset —
    the construction used by the Fig. 9 scalability experiment, where the
    no-free-rider / symmetric-fairness axioms serve as error proxies.

    Returns the utility oracle plus an info dict with the ``null_clients``
    indices and ``duplicate_groups`` needed by the proxy metrics.
    """
    scale = scale or ExperimentScale.small()
    task_key = task_fingerprint(
        "femnist",
        scale,
        seed,
        n_clients=n_clients,
        model=model,
        n_null_clients=n_null_clients,
        n_duplicate_clients=n_duplicate_clients,
    )
    rng = RandomState(seed)
    data_rng, split_rng, utility_rng = spawn_rng(rng, 3)

    regular_clients = n_clients - n_null_clients - n_duplicate_clients
    if regular_clients < 1:
        raise ValueError("need at least one regular (non-null, non-duplicate) client")

    pooled = make_femnist_like(
        n_samples=scale.samples_per_client * regular_clients + scale.test_samples,
        n_writers=max(2 * regular_clients, 4),
        image_size=scale.image_size,
        seed=data_rng,
    )
    train, test = train_test_split(
        pooled,
        test_fraction=scale.test_samples / len(pooled),
        seed=split_rng,
    )
    clients = partition_by_group(train, regular_clients, seed=split_rng)

    duplicate_groups: list[list[int]] = []
    if n_duplicate_clients > 0:
        source = clients[0]
        group = [0]
        for _ in range(n_duplicate_clients):
            clients.append(source.copy())
            group.append(len(clients) - 1)
        duplicate_groups.append(group)

    null_clients: list[int] = []
    for _ in range(n_null_clients):
        clients.append(Dataset.empty_like(test, name="null-client"))
        null_clients.append(len(clients) - 1)

    utility = _wrap(
        clients,
        test,
        model=model,
        scale=scale,
        image_size=scale.image_size,
        n_classes=pooled.num_classes,
        seed=utility_rng,
        store=store,
        task_key=task_key,
    )
    info = {
        "null_clients": null_clients,
        "duplicate_groups": duplicate_groups,
        "n_clients": len(clients),
    }
    return utility, info


# --------------------------------------------------------------------------- #
# Adult-style task (Table V)
# --------------------------------------------------------------------------- #
def build_adult_task(
    n_clients: int = 10,
    model: str = "mlp",
    scale: Optional[ExperimentScale] = None,
    seed: SeedLike = 0,
    store: StoreLike = None,
) -> CoalitionUtility:
    """Occupation-partitioned Adult-style tabular task (MLP or XGBoost model)."""
    scale = scale or ExperimentScale.small()
    task_key = task_fingerprint(
        "adult", scale, seed, n_clients=n_clients, model=model
    )
    rng = RandomState(seed)
    data_rng, split_rng, utility_rng = spawn_rng(rng, 3)

    pooled = make_adult_like(
        n_samples=scale.samples_per_client * n_clients + scale.test_samples,
        n_occupations=max(2 * n_clients, 12),
        seed=data_rng,
    )
    train, test = train_test_split(
        pooled,
        test_fraction=scale.test_samples / len(pooled),
        seed=split_rng,
    )
    clients = partition_by_group(train, n_clients, seed=split_rng)
    return _wrap(
        clients,
        test,
        model=model,
        scale=scale,
        image_size=scale.image_size,
        n_classes=2,
        seed=utility_rng,
        store=store,
        task_key=task_key,
    )
