"""Regenerators for the paper's result tables (Table IV and Table V).

Both tables compare all ten algorithms across client counts {3, 6, 10} on a
real-style dataset, reporting wall-clock time and the relative ℓ2 error
against the exact MC-SV values.  The functions here return a structured
report (list of dict rows) and can render it as text; EXPERIMENTS.md records
the outputs next to the paper's numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentScale, sampling_rounds_for
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_algorithm_suite, run_comparison
from repro.experiments.tasks import build_adult_task, build_femnist_task
from repro.utils.rng import SeedLike


def _comparison_rows(
    utility,
    n_clients: int,
    model: str,
    dataset: str,
    include_gradient: bool,
    include_perm: bool,
    seed: SeedLike,
    n_workers: Optional[int] = None,
) -> list[dict]:
    suite = build_algorithm_suite(
        n_clients,
        total_rounds=sampling_rounds_for(n_clients),
        include_exact=True,
        include_perm=include_perm,
        include_gradient=include_gradient,
        seed=seed,
    )
    comparison = run_comparison(
        utility,
        suite,
        n_clients=n_clients,
        task_label=f"{dataset}/{model}/n={n_clients}",
        n_workers=n_workers,
    )
    rows = []
    for row in comparison.rows:
        rows.append(
            {
                "dataset": dataset,
                "model": model,
                "n": n_clients,
                "algorithm": row.algorithm,
                "time_s": row.elapsed_seconds,
                "evaluations": row.utility_evaluations,
                "error_l2": row.relative_error,
            }
        )
    return rows


def table4(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (3, 6, 10),
    models: Sequence[str] = ("mlp", "cnn"),
    include_perm: bool = False,
    seed: SeedLike = 0,
    n_workers: Optional[int] = None,
) -> list[dict]:
    """Table IV: FEMNIST-style results for MLP and CNN FL models.

    Returns one row per (model, n, algorithm) with time, evaluation count and
    relative error.  ``include_perm`` adds the Perm-Shapley exact baseline
    (very slow; disabled by default).  ``n_workers`` enables parallel batched
    coalition training (values are unchanged; see :mod:`repro.parallel`).
    """
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    for model in models:
        for n_clients in client_counts:
            utility, _ = build_femnist_task(
                n_clients=n_clients, model=model, scale=scale, seed=seed
            )
            rows.extend(
                _comparison_rows(
                    utility,
                    n_clients,
                    model,
                    dataset="femnist-like",
                    include_gradient=True,
                    include_perm=include_perm,
                    seed=seed,
                    n_workers=n_workers,
                )
            )
    return rows


def table5(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (3, 6, 10),
    models: Sequence[str] = ("mlp", "xgb"),
    include_perm: bool = False,
    seed: SeedLike = 0,
    n_workers: Optional[int] = None,
) -> list[dict]:
    """Table V: Adult-style results for MLP and XGBoost FL models.

    Gradient-based baselines are automatically excluded for the XGBoost model
    (they require parametric FL training), matching the "\\" cells in the
    paper's table.  ``n_workers`` enables parallel batched coalition training.
    """
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    for model in models:
        include_gradient = model != "xgb"
        for n_clients in client_counts:
            utility = build_adult_task(
                n_clients=n_clients, model=model, scale=scale, seed=seed
            )
            rows.extend(
                _comparison_rows(
                    utility,
                    n_clients,
                    model,
                    dataset="adult-like",
                    include_gradient=include_gradient,
                    include_perm=include_perm,
                    seed=seed,
                    n_workers=n_workers,
                )
            )
    return rows


def render_table(rows: list[dict], title: str) -> str:
    """Render a table4/table5 report in the paper's layout."""
    return format_table(
        rows,
        columns=["dataset", "model", "n", "algorithm", "time_s", "evaluations", "error_l2"],
        title=title,
    )
