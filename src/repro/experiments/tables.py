"""Regenerators for the paper's result tables (Table IV and Table V).

Both tables compare all ten algorithms across client counts {3, 6, 10} on a
real-style dataset, reporting wall-clock time and the relative ℓ2 error
against the exact MC-SV values.  Each (dataset, model, n) combination is a
declarative :class:`~repro.experiments.specs.TaskSpec` run through
:func:`~repro.experiments.runner.run_spec`; passing ``store=`` persists every
trained coalition so regenerating the *same* table later retrains nothing
(reuse is per task fingerprint, so a different client count or scale shares
nothing — and timings/evaluation counts then reflect incremental cost, not
the paper's per-algorithm accounting; see ``docs/store.md``).  The functions
return a structured report (list of dict rows) and can render it as text;
EXPERIMENTS.md records the outputs next to the paper's numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_spec
from repro.experiments.specs import TaskSpec, scale_preset_name as _scale_name
from repro.store import StoreLike


def _comparison_rows(
    spec: TaskSpec,
    dataset: str,
    include_gradient: bool,
    include_perm: bool,
    store: StoreLike = None,
    n_workers: Optional[int] = None,
) -> list[dict]:
    comparison = run_spec(
        spec,
        store=store,
        include_perm=include_perm,
        include_gradient=include_gradient,
        n_workers=n_workers,
    )
    rows = []
    for row in comparison.rows:
        rows.append(
            {
                "dataset": dataset,
                "model": spec.model,
                "n": spec.n_clients,
                "algorithm": row.algorithm,
                "time_s": row.elapsed_seconds,
                "evaluations": row.utility_evaluations,
                "error_l2": row.relative_error,
            }
        )
    return rows


def table4(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (3, 6, 10),
    models: Sequence[str] = ("mlp", "cnn"),
    include_perm: bool = False,
    seed: int = 0,
    n_workers: Optional[int] = None,
    store: StoreLike = None,
) -> list[dict]:
    """Table IV: FEMNIST-style results for MLP and CNN FL models.

    Returns one row per (model, n, algorithm) with time, evaluation count and
    relative error.  ``include_perm`` adds the Perm-Shapley exact baseline
    (very slow; disabled by default).  ``n_workers`` enables parallel batched
    coalition training and ``store`` persists trained coalition utilities
    across invocations (values are unchanged in both cases).
    """
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    for model in models:
        for n_clients in client_counts:
            spec = TaskSpec(
                kind="femnist",
                n_clients=n_clients,
                model=model,
                scale=_scale_name(scale),
                seed=seed,
            )
            rows.extend(
                _comparison_rows(
                    spec,
                    dataset="femnist-like",
                    include_gradient=True,
                    include_perm=include_perm,
                    store=store,
                    n_workers=n_workers,
                )
            )
    return rows


def table5(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (3, 6, 10),
    models: Sequence[str] = ("mlp", "xgb"),
    include_perm: bool = False,
    seed: int = 0,
    n_workers: Optional[int] = None,
    store: StoreLike = None,
) -> list[dict]:
    """Table V: Adult-style results for MLP and XGBoost FL models.

    Gradient-based baselines are automatically excluded for the XGBoost model
    (they require parametric FL training), matching the "\\" cells in the
    paper's table.  ``n_workers`` enables parallel batched coalition training
    and ``store`` persists trained coalition utilities across invocations.
    """
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    for model in models:
        include_gradient = model != "xgb"
        for n_clients in client_counts:
            spec = TaskSpec(
                kind="adult",
                n_clients=n_clients,
                model=model,
                scale=_scale_name(scale),
                seed=seed,
            )
            rows.extend(
                _comparison_rows(
                    spec,
                    dataset="adult-like",
                    include_gradient=include_gradient,
                    include_perm=include_perm,
                    store=store,
                    n_workers=n_workers,
                )
            )
    return rows


def render_table(rows: list[dict], title: str) -> str:
    """Render a table4/table5 report in the paper's layout."""
    return format_table(
        rows,
        columns=["dataset", "model", "n", "algorithm", "time_s", "evaluations", "error_l2"],
        title=title,
    )


def convergence_table(curve: dict, title: Optional[str] = None) -> str:
    """Render a :func:`repro.experiments.figures.convergence_curve` trace.

    One row per incremental chunk: evaluations and wall-clock spent, the
    widest 95% CI half-width (where defined) and — when the curve was traced
    against reference values — the error/rank-correlation trajectory.  The
    footer marks an early stop with the rule that fired.
    """
    rows = []
    for index in range(len(curve["chunk"])):
        rows.append(
            {
                "chunk": curve["chunk"][index],
                "evaluations": curve["evaluations"][index],
                "time_s": curve["elapsed_s"][index],
                "max_ci95": curve["max_ci95"][index],
                "error_l2": curve["error_l2"][index],
                "rank_corr": curve["rank_correlation"][index],
            }
        )
    rendered = format_table(
        rows,
        columns=["chunk", "evaluations", "time_s", "max_ci95", "error_l2", "rank_corr"],
        title=title or f"convergence: {curve['algorithm']}",
    )
    if curve.get("stopped_by"):
        rendered += f"\nstopped early by {curve['stopped_by']}"
    return rendered


def robustness_table(rows: list[dict], title: str = "valuation robustness") -> str:
    """Render :func:`repro.scenarios.run_robustness` rows as a summary table.

    One row per (scenario, algorithm): the injected adversaries, their rank
    positions from the bottom of the valuation (1 = lowest), precision@k for
    picking them out, whether they all rank *strictly* below every honest
    client, and the Spearman correlation against the clean-scenario ranking.
    Skipped cells render with their skip reason in place of metrics.
    """
    display = []
    for row in rows:
        if row.get("status") == "skipped":
            display.append(
                {
                    "scenario": row["scenario"],
                    "algorithm": row["algorithm"],
                    "adversaries": "skipped: " + row.get("reason", ""),
                }
            )
            continue
        display.append(
            {
                "scenario": row["scenario"],
                "algorithm": row["algorithm"],
                "n": row["n"],
                "adversaries": ",".join(str(c) for c in row["adversaries"]) or "-",
                "adv_ranks": ",".join(str(r) for r in row["adversary_ranks"]) or "-",
                "prec@k": row["precision_at_k"],
                "strictly_last": "yes" if row["strictly_last"] else "NO",
                "rank_corr_clean": row["rank_corr_clean"],
            }
        )
    return format_table(
        display,
        columns=[
            "scenario",
            "algorithm",
            "n",
            "adversaries",
            "adv_ranks",
            "prec@k",
            "strictly_last",
            "rank_corr_clean",
        ],
        title=title,
    )
