"""Declarative, registry-based experiment task specifications.

A :class:`TaskSpec` is the serialisable description of one benchmark task —
everything :mod:`repro.experiments.tasks` needs to build its utility oracle,
as plain data.  Specs are what the config-driven pipeline
(:mod:`repro.experiments.pipeline`) and the ``repro`` CLI consume: they can be
written in a JSON config, fingerprinted deterministically (the same content
address that namespaces the persistent utility store), and rebuilt bit-for-bit
in another process — which is what makes runs resumable and shardable.

The registry maps task kinds to builders; downstream code never hard-codes a
builder call, so adding a task kind is one :func:`register_task` away.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Optional, Union

from repro.experiments.config import ExperimentScale
from repro.experiments.tasks import (
    MODEL_NAMES,
    SYNTHETIC_SETUPS,
    build_adult_task,
    build_femnist_task,
    build_synthetic_task,
    task_fingerprint,
)
from repro.scenarios import Scenario, build_scenario_task, resolve_scenario
from repro.store import StoreLike

#: builder signature: (spec, store) -> (utility, info-dict)
TaskBuilder = Callable[["TaskSpec", StoreLike], tuple]

TASK_REGISTRY: Dict[str, TaskBuilder] = {}


def register_task(kind: str) -> Callable[[TaskBuilder], TaskBuilder]:
    """Register a builder for a task kind (decorator)."""

    def decorator(builder: TaskBuilder) -> TaskBuilder:
        TASK_REGISTRY[kind] = builder
        return builder

    return decorator


def available_tasks() -> list[str]:
    """Registered task kinds, sorted."""
    return sorted(TASK_REGISTRY)


def scale_preset_name(scale: ExperimentScale) -> str:
    """Validate that a scale is a named preset a spec can carry.

    Specs are plain data, so they hold scales *by name* — an ad-hoc
    ``ExperimentScale(fl_rounds=20)`` would silently degrade to the preset of
    the same name when rebuilt.  Refuse loudly instead.
    """
    if ExperimentScale.from_name(scale.name) != scale:
        raise ValueError(
            f"scale {scale.name!r} differs from the registered preset of that "
            "name; declarative TaskSpecs carry scales by name, so ad-hoc "
            "ExperimentScale instances cannot be used here"
        )
    return scale.name


@dataclass(frozen=True)
class TaskSpec:
    """Declarative description of one benchmark task.

    Parameters
    ----------
    kind:
        Registered task kind: ``"synthetic"``, ``"femnist"``, ``"adult"`` or
        ``"scenario"`` (extensible via :func:`register_task`).
    n_clients / model / scale / seed:
        Shared across all kinds.  ``scale`` is the *name* of an
        :class:`ExperimentScale` so specs stay plain data.  For scenario
        tasks ``n_clients`` is derived from the scenario's layout (base
        clients plus behavior-appended ones) and any passed value is
        overwritten.
    setup / noise_level:
        Synthetic tasks only: one of :data:`SYNTHETIC_SETUPS` and the paper's
        noise knob.
    n_null_clients / n_duplicate_clients:
        FEMNIST tasks only: the Fig. 9 free-rider/duplicate construction.
    scenario:
        Scenario tasks only: a registered scenario name or a full inline
        definition dict (see :mod:`repro.scenarios`).  Normalised to the
        definition dict form, so specs written to manifests stay
        self-contained and resume without any registry state.
    """

    kind: str
    n_clients: int = 10
    model: str = "mlp"
    scale: str = "small"
    seed: int = 0
    setup: Optional[str] = None
    noise_level: float = 0.2
    n_null_clients: int = 0
    n_duplicate_clients: int = 0
    scenario: Optional[Union[str, Mapping]] = None

    def __post_init__(self) -> None:
        if self.kind not in TASK_REGISTRY:
            raise ValueError(
                f"unknown task kind {self.kind!r}; choose from {available_tasks()}"
            )
        if self.model not in MODEL_NAMES:
            raise ValueError(f"unknown model {self.model!r}; choose from {MODEL_NAMES}")
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients}")
        if not isinstance(self.seed, numbers.Integral) or isinstance(self.seed, bool):
            raise ValueError(
                f"a TaskSpec seed must be an integer (it is part of the "
                f"content fingerprint), got {self.seed!r}"
            )
        ExperimentScale.from_name(self.scale)  # validates the name
        if self.kind == "synthetic":
            if self.setup not in SYNTHETIC_SETUPS:
                raise ValueError(
                    f"synthetic tasks need setup in {SYNTHETIC_SETUPS}, got {self.setup!r}"
                )
        elif self.setup is not None:
            raise ValueError(f"setup is only valid for synthetic tasks, got kind={self.kind!r}")
        if self.kind == "scenario":
            if self.scenario is None:
                raise ValueError(
                    "scenario tasks need scenario=<registered name or definition dict>"
                )
            resolved = resolve_scenario(self.scenario)
            # Normalise to the self-contained dict form and pin n_clients to
            # the layout's total, so report rows and plan manifests agree
            # with what the builder will actually produce.
            object.__setattr__(self, "scenario", resolved.to_dict())
            object.__setattr__(self, "n_clients", resolved.layout().n_clients)
            object.__setattr__(self, "_scenario_obj", resolved)
        elif self.scenario is not None:
            raise ValueError(
                f"scenario is only valid for scenario tasks, got kind={self.kind!r}"
            )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def experiment_scale(self) -> ExperimentScale:
        return ExperimentScale.from_name(self.scale)

    @property
    def scenario_object(self) -> Optional[Scenario]:
        """The resolved :class:`Scenario` for scenario tasks, else ``None``."""
        return getattr(self, "_scenario_obj", None)

    def label(self) -> str:
        """Short human-readable identity, e.g. ``femnist/mlp/n=10``."""
        parts = [self.kind]
        if self.kind == "scenario":
            parts.append(self.scenario_object.name)
        if self.setup:
            parts.append(self.setup)
        parts.append(self.model)
        parts.append(f"n={self.n_clients}")
        return "/".join(parts)

    def fingerprint(self) -> str:
        """Stable content address of this task.

        Identical (by construction) to the fingerprint the task builders
        compute, so a spec and the oracle built from it always agree on the
        store namespace — across processes, machines and months.
        """
        fp = task_fingerprint(self.kind, self.experiment_scale, self.seed, **self._params())
        assert fp is not None  # seed is declared int, so always computable
        return fp

    def _params(self) -> dict:
        if self.kind == "synthetic":
            return {
                "setup": self.setup,
                "n_clients": self.n_clients,
                "model": self.model,
                "noise_level": float(self.noise_level),
            }
        if self.kind == "femnist":
            return {
                "n_clients": self.n_clients,
                "model": self.model,
                "n_null_clients": self.n_null_clients,
                "n_duplicate_clients": self.n_duplicate_clients,
            }
        if self.kind == "scenario":
            # Content only: the scenario's name/description are display
            # metadata, so the payload is its identity (base + behaviors) —
            # byte-identical to what Scenario.fingerprint() hashes.
            return {
                "model": self.model,
                "scenario": self.scenario_object.identity_payload(),
            }
        return {"n_clients": self.n_clients, "model": self.model}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-dict form for manifests and JSON configs (defaults elided)."""
        payload = {
            "kind": self.kind,
            "n_clients": self.n_clients,
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.setup is not None:
            payload["setup"] = self.setup
            payload["noise_level"] = self.noise_level
        if self.n_null_clients:
            payload["n_null_clients"] = self.n_null_clients
        if self.n_duplicate_clients:
            payload["n_duplicate_clients"] = self.n_duplicate_clients
        if self.scenario is not None:
            payload["scenario"] = dict(self.scenario)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskSpec":
        allowed = {
            "kind",
            "n_clients",
            "model",
            "scale",
            "seed",
            "setup",
            "noise_level",
            "n_null_clients",
            "n_duplicate_clients",
            "scenario",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(f"unknown TaskSpec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise ValueError("TaskSpec requires a 'kind' field")
        return cls(**payload)

    def with_(self, **changes) -> "TaskSpec":
        """Functional update, e.g. ``spec.with_(n_clients=6)``."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def build(self, store: StoreLike = None):
        """Build the task's utility oracle (store-backed when given)."""
        utility, _ = self.build_with_info(store)
        return utility

    def build_with_info(self, store: StoreLike = None) -> tuple:
        """Build the oracle plus the task's info dict.

        The info dict always carries ``n_clients`` (which for FEMNIST tasks
        with null/duplicate clients exceeds the spec's regular count) and,
        for FEMNIST, the ``null_clients`` / ``duplicate_groups`` needed by
        the fairness-proxy metrics.
        """
        builder = TASK_REGISTRY[self.kind]
        return builder(self, store)


# --------------------------------------------------------------------------- #
# Built-in task kinds
# --------------------------------------------------------------------------- #
@register_task("synthetic")
def _build_synthetic(spec: TaskSpec, store: StoreLike) -> tuple:
    utility = build_synthetic_task(
        spec.setup,
        n_clients=spec.n_clients,
        model=spec.model,
        scale=spec.experiment_scale,
        noise_level=spec.noise_level,
        seed=spec.seed,
        store=store,
    )
    return utility, {"n_clients": spec.n_clients}


@register_task("femnist")
def _build_femnist(spec: TaskSpec, store: StoreLike) -> tuple:
    return build_femnist_task(
        n_clients=spec.n_clients,
        model=spec.model,
        scale=spec.experiment_scale,
        n_null_clients=spec.n_null_clients,
        n_duplicate_clients=spec.n_duplicate_clients,
        seed=spec.seed,
        store=store,
    )


@register_task("adult")
def _build_adult(spec: TaskSpec, store: StoreLike) -> tuple:
    utility = build_adult_task(
        n_clients=spec.n_clients,
        model=spec.model,
        scale=spec.experiment_scale,
        seed=spec.seed,
        store=store,
    )
    return utility, {"n_clients": spec.n_clients}


@register_task("scenario")
def _build_scenario(spec: TaskSpec, store: StoreLike) -> tuple:
    return build_scenario_task(
        spec.scenario_object,
        model=spec.model,
        scale=spec.experiment_scale,
        seed=spec.seed,
        store=store,
    )
