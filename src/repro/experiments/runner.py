"""Shared comparison runner: run a suite of algorithms on one utility oracle.

The paper's end-to-end experiments (Fig. 1b, Fig. 6, Table IV, Table V) all
have the same shape: fix a task, run every algorithm, report per-algorithm
wall-clock time and relative ℓ2 error against the exact MC-SV ground truth.
:func:`run_comparison` implements that once; the table/figure modules build on
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core import (
    CCShapleySampling,
    DIGFL,
    ExtendedGTB,
    ExtendedTMC,
    GTGShapley,
    IPSS,
    LambdaMR,
    MCShapley,
    ORBaseline,
    PermShapley,
    rank_correlation,
    relative_error_l2,
)
from repro.core.base import GradientBasedValuation, SupportsBatchEvaluation
from repro.core.result import ValuationResult
from repro.experiments.config import sampling_rounds_for
from repro.utils.rng import SeedLike

#: algorithm-name groups used when filtering suites
EXACT_ALGORITHMS = ("Perm-Shapley", "MC-Shapley")
SAMPLING_ALGORITHMS = ("Extended-TMC", "Extended-GTB", "CC-Shapley", "IPSS")
GRADIENT_ALGORITHMS = ("DIG-FL", "OR", "lambda-MR", "GTG-Shapley")


@dataclass
class ComparisonRow:
    """One algorithm's outcome on one task."""

    algorithm: str
    values: np.ndarray
    elapsed_seconds: float
    utility_evaluations: int
    relative_error: Optional[float] = None
    rank_corr: Optional[float] = None
    is_exact: bool = False

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "time_s": self.elapsed_seconds,
            "evaluations": self.utility_evaluations,
            "error_l2": self.relative_error,
            "rank_correlation": self.rank_corr,
        }


@dataclass
class SkippedAlgorithm:
    """Record of an algorithm that was skipped during a comparison run.

    Distinguishes the deliberate "\\" entries of the paper's Table V (e.g. a
    gradient-based method on an XGBoost task) from genuine crashes: the
    skipped algorithm's name, the exception type and its message are kept so
    reports can explain *why* a cell is empty.
    """

    algorithm: str
    reason: str
    error_type: str

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "reason": self.reason,
            "error_type": self.error_type,
        }


@dataclass
class AlgorithmComparison:
    """All rows of one comparison plus the ground truth used for errors."""

    rows: list[ComparisonRow] = field(default_factory=list)
    exact_values: Optional[np.ndarray] = None
    task_label: str = ""
    skipped: list[SkippedAlgorithm] = field(default_factory=list)

    def row(self, algorithm: str) -> ComparisonRow:
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(f"no row for algorithm {algorithm!r}")

    def best_error(self) -> ComparisonRow:
        candidates = [r for r in self.rows if r.relative_error is not None]
        if not candidates:
            raise ValueError("no approximate rows with a recorded error")
        return min(candidates, key=lambda r: r.relative_error)

    def fastest(self, approximate_only: bool = True) -> ComparisonRow:
        rows = [r for r in self.rows if not (approximate_only and r.is_exact)]
        return min(rows, key=lambda r: r.elapsed_seconds)

    def to_records(self) -> list[dict]:
        return [row.to_dict() for row in self.rows]


def build_algorithm_suite(
    n_clients: int,
    total_rounds: Optional[int] = None,
    include_exact: bool = True,
    include_perm: bool = False,
    include_gradient: bool = True,
    include_sampling: bool = True,
    seed: SeedLike = 0,
) -> list:
    """Instantiate the paper's algorithm line-up for a given client count.

    All sampling-based algorithms share the same budget γ (Table III), exactly
    as in the paper's setup.  ``include_perm`` is off by default because the
    permutation-exact baseline is factorially expensive even on tiny tasks.
    """
    gamma = total_rounds if total_rounds is not None else sampling_rounds_for(n_clients)
    suite = []
    if include_exact:
        if include_perm:
            suite.append(PermShapley(seed=seed))
        suite.append(MCShapley(seed=seed))
    if include_gradient:
        suite.append(DIGFL(seed=seed))
    if include_sampling:
        suite.append(ExtendedTMC(total_rounds=gamma, seed=seed))
        suite.append(ExtendedGTB(total_rounds=gamma, seed=seed))
        suite.append(CCShapleySampling(total_rounds=gamma, seed=seed))
    if include_gradient:
        suite.append(GTGShapley(seed=seed))
        suite.append(ORBaseline(seed=seed))
        suite.append(LambdaMR(seed=seed))
    suite.append(IPSS(total_rounds=gamma, seed=seed))
    return suite


def run_comparison(
    utility,
    algorithms: Sequence,
    n_clients: Optional[int] = None,
    exact_values: Optional[np.ndarray] = None,
    task_label: str = "",
    skip_failures: bool = True,
    n_workers: Optional[int] = None,
) -> AlgorithmComparison:
    """Run every algorithm on the oracle and score it against the exact values.

    Exact values are computed with MC-Shapley when not provided and when an
    exact algorithm is part of the suite; otherwise errors are left ``None``.
    Gradient-based algorithms that are inapplicable to the task's model (e.g.
    XGBoost) are skipped when ``skip_failures`` is true, mirroring the "\\"
    entries of the paper's Table V; each skip is recorded (algorithm, reason,
    exception type) in :attr:`AlgorithmComparison.skipped` so empty cells stay
    distinguishable from crashes.

    ``n_workers`` configures batched parallel coalition evaluation: oracles
    exposing ``set_n_workers`` (:class:`repro.fl.CoalitionUtility`) are
    reconfigured for the duration of the comparison and restored afterwards,
    and plain callables are wrapped in a memoising
    :class:`repro.parallel.BatchUtilityOracle` (for *any* ``n_workers``, so
    the reported evaluation counts do not depend on the concurrency level).
    Values are unaffected — parallel evaluation is bitwise-identical to
    serial.
    """
    if n_clients is not None:
        n = int(n_clients)
    else:
        n = getattr(utility, "n_clients", None)
        if n is None:
            raise ValueError(
                "n_clients was not provided and the utility oracle does not "
                "expose an n_clients attribute; pass n_clients=... to "
                "run_comparison (plain game functions cannot be introspected)"
            )
        n = int(n)
    comparison = AlgorithmComparison(task_label=task_label)
    previous_n_workers: Optional[int] = None
    previous_executor = None
    wrapped_oracle = None
    if n_workers is not None:
        set_workers = getattr(utility, "set_n_workers", None)
        if callable(set_workers):
            previous_n_workers = int(getattr(utility, "n_workers", 1))
            previous_executor = getattr(utility, "executor", None)
            set_workers(n_workers)
        elif not isinstance(utility, SupportsBatchEvaluation):
            from repro.parallel import BatchUtilityOracle

            wrapped_oracle = BatchUtilityOracle(
                utility, n_clients=n, n_workers=n_workers
            )
            utility = wrapped_oracle
    reset_cache = getattr(utility, "reset_cache", None)

    results: list[tuple[object, ValuationResult]] = []
    try:
        for algorithm in algorithms:
            # Every algorithm pays its own FL-training cost, as in the paper's
            # per-algorithm wall-clock measurements: warm cache entries left by
            # a previously run algorithm are dropped first.
            if callable(reset_cache):
                reset_cache()
            try:
                result = algorithm.run(utility, n)
            except (TypeError, ValueError) as error:
                if skip_failures:
                    comparison.skipped.append(
                        SkippedAlgorithm(
                            algorithm=getattr(
                                algorithm, "name", type(algorithm).__name__
                            ),
                            reason=str(error),
                            error_type=type(error).__name__,
                        )
                    )
                    continue
                raise error
            results.append((algorithm, result))
            if exact_values is None and isinstance(algorithm, MCShapley):
                exact_values = result.values
    finally:
        # The caller's oracle must come back in its original configuration
        # (count *and* backend: a pooled executor instance re-spawns its
        # workers lazily if reused), and any worker pool we created must be
        # torn down deterministically.
        if previous_n_workers is not None:
            if previous_executor is None:
                set_workers(previous_n_workers)
            else:
                try:
                    set_workers(previous_n_workers, previous_executor)
                except TypeError:
                    # Duck-typed oracles may implement the single-argument
                    # set_n_workers(n) form even while exposing `executor`.
                    set_workers(previous_n_workers)
        if wrapped_oracle is not None:
            wrapped_oracle.close()

    comparison.exact_values = (
        None if exact_values is None else np.asarray(exact_values, dtype=float)
    )
    for algorithm, result in results:
        _append_row(comparison, algorithm, result)
    return comparison


def _append_row(comparison: AlgorithmComparison, algorithm, result) -> None:
    """Score one algorithm's result against the comparison's exact values."""
    is_exact = isinstance(algorithm, (MCShapley, PermShapley))
    error = None
    correlation = None
    if comparison.exact_values is not None and not is_exact:
        error = relative_error_l2(result.values, comparison.exact_values)
        correlation = rank_correlation(result.values, comparison.exact_values)
    comparison.rows.append(
        ComparisonRow(
            algorithm=result.algorithm,
            values=result.values,
            elapsed_seconds=result.elapsed_seconds,
            utility_evaluations=result.utility_evaluations,
            relative_error=error,
            rank_corr=correlation,
            is_exact=is_exact,
        )
    )


def run_spec(
    spec,
    algorithms: Optional[Sequence] = None,
    store=None,
    exact_values: Optional[np.ndarray] = None,
    include_perm: bool = False,
    include_gradient: bool = True,
    n_workers: Optional[int] = None,
    skip_failures: bool = True,
) -> AlgorithmComparison:
    """Run a comparison on a declaratively specified task.

    The spec-consuming face of :func:`run_comparison`: builds the utility
    oracle from a :class:`~repro.experiments.specs.TaskSpec` (store-backed
    when ``store`` is given, so trained coalitions persist across runs),
    derives the default algorithm suite from the task's client count and the
    paper's budget table, and tears the oracle down deterministically.
    """
    utility, info = spec.build_with_info(store)
    n = int(info.get("n_clients", spec.n_clients))
    if algorithms is None:
        algorithms = build_algorithm_suite(
            n,
            total_rounds=sampling_rounds_for(n),
            include_perm=include_perm,
            include_gradient=include_gradient,
            seed=spec.seed,
        )
    with utility:
        return run_comparison(
            utility,
            algorithms,
            n_clients=n,
            exact_values=exact_values,
            task_label=spec.label(),
            skip_failures=skip_failures,
            n_workers=n_workers,
        )
