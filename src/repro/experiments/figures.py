"""Regenerators for the paper's figures (Fig. 1b, 4, 6, 7, 8, 9, 10).

Each function runs the experiment behind one figure and returns the numeric
series the figure plots; :func:`repro.experiments.reporting.format_series`
renders them as text.  Tasks are described declaratively
(:class:`~repro.experiments.specs.TaskSpec`), dataset/model sizes are
controlled by :class:`~repro.experiments.config.ExperimentScale`, and every
figure accepts ``store=`` to persist trained coalition utilities across
invocations (regenerating a figure against a warm store retrains nothing).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core import (
    CCShapleySampling,
    ExtendedGTB,
    ExtendedTMC,
    IPSS,
    KGreedy,
    MCShapley,
    empirical_scheme_variance,
    fairness_proxy_error,
    rank_correlation,
    relative_error_l2,
)
from repro.core.variance import contribution_variance
from repro.experiments.config import ExperimentScale, sampling_rounds_for
from repro.experiments.runner import run_spec
from repro.experiments.specs import TaskSpec, scale_preset_name
from repro.experiments.tasks import SYNTHETIC_SETUPS
from repro.store import StoreLike
from repro.utils.combinatorics import count_coalitions_up_to
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timer import Timer


def _femnist_spec(
    scale: ExperimentScale,
    n_clients: int,
    model: str,
    seed: int,
    n_null_clients: int = 0,
    n_duplicate_clients: int = 0,
) -> TaskSpec:
    return TaskSpec(
        kind="femnist",
        n_clients=n_clients,
        model=model,
        scale=scale_preset_name(scale),
        seed=seed,
        n_null_clients=n_null_clients,
        n_duplicate_clients=n_duplicate_clients,
    )


# --------------------------------------------------------------------------- #
# Fig. 1(b): time-vs-error scatter on FEMNIST with ten clients
# --------------------------------------------------------------------------- #
def figure1b(
    scale: Optional[ExperimentScale] = None,
    n_clients: int = 10,
    model: str = "mlp",
    seed: int = 0,
    store: StoreLike = None,
) -> list[dict]:
    """Motivating scatter: each algorithm's (time, error) point."""
    scale = scale or ExperimentScale.small()
    spec = _femnist_spec(scale, n_clients, model, seed)
    comparison = run_spec(spec, store=store)
    return [
        {
            "algorithm": row.algorithm,
            "time_s": row.elapsed_seconds,
            "error_l2": row.relative_error,
        }
        for row in comparison.rows
        if not row.is_exact
    ]


# --------------------------------------------------------------------------- #
# Fig. 4: K-Greedy — error and evaluation count versus K
# --------------------------------------------------------------------------- #
def figure4(
    scale: Optional[ExperimentScale] = None,
    n_clients: int = 10,
    model: str = "mlp",
    max_k: Optional[int] = None,
    seed: int = 0,
    store: StoreLike = None,
) -> dict:
    """Key-combinations probe: relative error of K-Greedy as K grows."""
    scale = scale or ExperimentScale.small()
    max_k = max_k or n_clients
    with _femnist_spec(scale, n_clients, model, seed).build(store) as utility:
        exact = MCShapley(seed=seed).run(utility, n_clients).values

        ks, errors, evaluations = [], [], []
        for k in range(1, max_k + 1):
            result = KGreedy(max_size=k, seed=seed).run(utility, n_clients)
            ks.append(k)
            errors.append(relative_error_l2(result.values, exact))
            evaluations.append(count_coalitions_up_to(n_clients, k))
    return {"k": ks, "relative_error": errors, "evaluations": evaluations}


# --------------------------------------------------------------------------- #
# Convergence curves: the anytime protocol's evaluations-vs-quality trace
# --------------------------------------------------------------------------- #
def convergence_curve(
    algorithm,
    utility,
    n_clients: Optional[int] = None,
    reference: Optional[np.ndarray] = None,
    stopping_rule=None,
) -> dict:
    """Trace an estimator's convergence trajectory chunk by chunk.

    Records, per chunk, the evaluations spent, elapsed wall-clock, the
    largest per-client 95% CI half-width (where the estimator defines
    standard errors for every client) and — when ``reference`` values (e.g.
    exact MC-SV) are given — the relative ℓ2 error and Spearman rank
    correlation against them.  With a ``stopping_rule`` the trace ends where
    the rule fires, which is exactly the trade-off the curve is meant to
    show: evaluations saved versus estimate quality at the stopping point.
    The snapshot stream is driven by
    :meth:`~repro.core.ValuationAlgorithm.run` — the same loop the pipeline
    and CLI use — so a curve's stopping point is exactly where a real run
    would stop.
    """
    reference = None if reference is None else np.asarray(reference, dtype=float)
    series: dict = {
        "algorithm": algorithm.name,
        "chunk": [],
        "evaluations": [],
        "elapsed_s": [],
        "max_ci95": [],
        "error_l2": [],
        "rank_correlation": [],
        "stopped_by": None,
        "done": False,
    }

    def record(snapshot) -> None:
        series["chunk"].append(snapshot.chunk_index)
        series["evaluations"].append(snapshot.evaluations)
        series["elapsed_s"].append(snapshot.elapsed_seconds)
        series["max_ci95"].append(snapshot.max_ci95())
        series["error_l2"].append(
            None if reference is None else relative_error_l2(snapshot.values, reference)
        )
        series["rank_correlation"].append(
            None if reference is None else rank_correlation(snapshot.values, reference)
        )
        series["done"] = bool(snapshot.done)

    result = algorithm.run(
        utility, n_clients, stopping_rule=stopping_rule, on_snapshot=record
    )
    series["stopped_by"] = result.metadata.get("stopped_by")
    return series


# --------------------------------------------------------------------------- #
# Fig. 6: the five synthetic setups, MLP and CNN
# --------------------------------------------------------------------------- #
def figure6(
    scale: Optional[ExperimentScale] = None,
    setups: Sequence[str] = SYNTHETIC_SETUPS,
    models: Sequence[str] = ("mlp", "cnn"),
    n_clients: int = 10,
    seed: int = 0,
    store: StoreLike = None,
) -> list[dict]:
    """Time and error of every algorithm on the synthetic setups (a)–(e)."""
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    for setup in setups:
        for model in models:
            spec = TaskSpec(
                kind="synthetic",
                setup=setup,
                n_clients=n_clients,
                model=model,
                scale=scale_preset_name(scale),
                seed=seed,
            )
            comparison = run_spec(spec, store=store)
            for row in comparison.rows:
                rows.append(
                    {
                        "setup": setup,
                        "model": model,
                        "algorithm": row.algorithm,
                        "time_s": row.elapsed_seconds,
                        "error_l2": row.relative_error,
                    }
                )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 7: error versus sampling rounds γ
# --------------------------------------------------------------------------- #
def figure7(
    scale: Optional[ExperimentScale] = None,
    n_clients: int = 10,
    model: str = "mlp",
    gammas: Sequence[int] = (8, 16, 32, 64, 128),
    repetitions: int = 3,
    seed: int = 0,
    store: StoreLike = None,
) -> dict:
    """Mean relative error of the sampling algorithms as γ grows."""
    scale = scale or ExperimentScale.small()
    series: dict[str, list[float]] = {
        "IPSS": [],
        "Extended-TMC": [],
        "Extended-GTB": [],
        "CC-Shapley": [],
    }
    with _femnist_spec(scale, n_clients, model, seed).build(store) as utility:
        exact = MCShapley(seed=seed).run(utility, n_clients).values
        rng = RandomState(seed)

        for gamma in gammas:
            errors = {name: [] for name in series}
            for rep_rng in spawn_rng(rng, repetitions):
                rep_seed = int(rep_rng.integers(0, 2**31 - 1))
                algorithms = {
                    "IPSS": IPSS(total_rounds=gamma, seed=rep_seed),
                    "Extended-TMC": ExtendedTMC(total_rounds=gamma, seed=rep_seed),
                    "Extended-GTB": ExtendedGTB(total_rounds=gamma, seed=rep_seed),
                    "CC-Shapley": CCShapleySampling(total_rounds=gamma, seed=rep_seed),
                }
                for name, algorithm in algorithms.items():
                    result = algorithm.run(utility, n_clients)
                    errors[name].append(relative_error_l2(result.values, exact))
            for name in series:
                series[name].append(float(np.mean(errors[name])))
    return {"gamma": list(gammas), "series": series}


# --------------------------------------------------------------------------- #
# Fig. 8: Pareto curves (time vs error) for the sampling algorithms
# --------------------------------------------------------------------------- #
def figure8(
    scale: Optional[ExperimentScale] = None,
    n_clients: int = 6,
    model: str = "mlp",
    gammas: Sequence[int] = (6, 12, 24, 48),
    seed: int = 0,
    store: StoreLike = None,
) -> list[dict]:
    """Per-(algorithm, γ) points tracing the efficiency/effectiveness trade-off."""
    scale = scale or ExperimentScale.small()
    rows: list[dict] = []
    with _femnist_spec(scale, n_clients, model, seed).build(store) as utility:
        exact = MCShapley(seed=seed).run(utility, n_clients).values

        for gamma in gammas:
            algorithms = {
                "IPSS": IPSS(total_rounds=gamma, seed=seed),
                "Extended-TMC": ExtendedTMC(total_rounds=gamma, seed=seed),
                "Extended-GTB": ExtendedGTB(total_rounds=gamma, seed=seed),
                "CC-Shapley": CCShapleySampling(total_rounds=gamma, seed=seed),
            }
            for name, algorithm in algorithms.items():
                # Use a fresh cache per point so the measured time reflects the
                # budget actually spent at this γ rather than earlier warm-up.
                # (With store= given, coalitions persisted by earlier points
                # still serve from disk — pass no store for pure timings.)
                utility.reset_cache()
                with Timer() as timer:
                    result = algorithm.run(utility, n_clients)
                rows.append(
                    {
                        "algorithm": name,
                        "gamma": gamma,
                        "n": n_clients,
                        "model": model,
                        "time_s": timer.elapsed,
                        "evaluations": result.utility_evaluations,
                        "error_l2": relative_error_l2(result.values, exact),
                    }
                )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 9: scalability to large client counts with fairness-proxy errors
# --------------------------------------------------------------------------- #
def figure9(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (20, 50, 100),
    model: str = "logistic",
    null_fraction: float = 0.05,
    duplicate_fraction: float = 0.05,
    seed: int = 0,
    store: StoreLike = None,
) -> list[dict]:
    """Running time and fairness-proxy error for 20–100 clients.

    Exact values are unobtainable at this scale, so — as in the paper — 5% of
    clients hold empty datasets and 5% duplicate another client's dataset, and
    the no-free-rider / symmetric-fairness violations serve as the error proxy.
    γ is set to n·log n.
    """
    scale = scale or ExperimentScale.tiny()
    rows: list[dict] = []
    for n_clients in client_counts:
        n_null = max(1, int(round(null_fraction * n_clients)))
        n_duplicate = max(1, int(round(duplicate_fraction * n_clients)))
        spec = _femnist_spec(
            scale,
            n_clients,
            model,
            seed,
            n_null_clients=n_null,
            n_duplicate_clients=n_duplicate,
        )
        utility, info = spec.build_with_info(store)
        gamma = sampling_rounds_for(n_clients)
        algorithms = {
            "IPSS": IPSS(total_rounds=gamma, seed=seed),
            "Extended-TMC": ExtendedTMC(total_rounds=gamma, seed=seed),
            "Extended-GTB": ExtendedGTB(total_rounds=gamma, seed=seed),
            "CC-Shapley": CCShapleySampling(total_rounds=gamma, seed=seed),
        }
        with utility:
            for name, algorithm in algorithms.items():
                utility.reset_cache()
                with Timer() as timer:
                    result = algorithm.run(utility, info["n_clients"])
                proxy = fairness_proxy_error(
                    result.values, info["null_clients"], info["duplicate_groups"]
                )
                rows.append(
                    {
                        "n": info["n_clients"],
                        "gamma": gamma,
                        "algorithm": name,
                        "time_s": timer.elapsed,
                        "evaluations": result.utility_evaluations,
                        "fairness_error": proxy,
                    }
                )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 10: variance of MC-SV versus CC-SV inside the stratified framework
# --------------------------------------------------------------------------- #
def figure10(
    scale: Optional[ExperimentScale] = None,
    client_counts: Sequence[int] = (3, 6, 10),
    model: str = "mlp",
    gammas: Sequence[int] = (4, 8, 16, 32),
    repetitions: int = 10,
    contribution_samples: int = 120,
    seed: int = 0,
    store: StoreLike = None,
) -> list[dict]:
    """Variance comparison of the MC-SV and CC-SV schemes (Fig. 10).

    Two variance notions are reported per (n, γ):

    * ``mc_variance`` / ``cc_variance`` — the spread of the full Alg. 1
      estimate across ``repetitions`` re-runs with different sampled
      coalitions (the quantity plotted in the paper's figure), and
    * ``mc_contribution_variance`` / ``cc_contribution_variance`` — the
      variance of a single marginal vs complementary contribution sample,
      which is the quantity Theorem 2 bounds and is independent of γ.
    """
    scale = scale or ExperimentScale.tiny()
    rows: list[dict] = []
    for n_clients in client_counts:
        with _femnist_spec(scale, n_clients, model, seed).build(store) as utility:
            per_sample = contribution_variance(
                utility, n_clients, n_samples=contribution_samples, seed=seed
            )
            for gamma in gammas:
                comparison = empirical_scheme_variance(
                    utility,
                    n_clients=n_clients,
                    total_rounds=gamma,
                    repetitions=repetitions,
                    seed=seed,
                )
                rows.append(
                    {
                        "n": n_clients,
                        "model": model,
                        "gamma": gamma,
                        "mc_variance": comparison.mean_mc_variance,
                        "cc_variance": comparison.mean_cc_variance,
                        "mc_is_lower": comparison.mc_is_lower,
                        "mc_contribution_variance": per_sample["mc_variance"],
                        "cc_contribution_variance": per_sample["cc_variance"],
                        "contribution_mc_is_lower": per_sample["mc_is_lower"],
                    }
                )
    return rows
