"""Experiment harness that regenerates every table and figure of the paper.

Each experiment (Table IV, Table V, Fig. 1b, Fig. 4, Fig. 6–10) has a
dedicated function returning a plain-data report (rows / series) plus a text
renderer, so the benchmark suite, the examples and EXPERIMENTS.md all use the
same code path.  Scales are configurable: the ``tiny`` scale finishes each
experiment in seconds for CI, the ``small`` scale is the default used to
produce the numbers recorded in EXPERIMENTS.md, and the ``paper`` scale
mirrors the paper's client counts and sampling budgets.

Tasks are described declaratively by :class:`TaskSpec` (registry-based,
serialisable, deterministically fingerprinted); a campaign over many tasks is
an :class:`ExperimentPlan` run through the resumable, manifest-tracked
:func:`run_plan` pipeline — the machinery behind the ``repro`` CLI.  All
entry points accept a persistent :mod:`repro.store` utility store so trained
coalitions are reused across processes and runs.
"""

from repro.experiments.config import (
    PAPER_SAMPLING_ROUNDS,
    ExperimentScale,
    sampling_rounds_for,
)
from repro.experiments.tasks import (
    build_adult_task,
    build_femnist_task,
    build_synthetic_task,
    task_fingerprint,
    SYNTHETIC_SETUPS,
)
from repro.experiments.specs import (
    TASK_REGISTRY,
    TaskSpec,
    available_tasks,
    register_task,
)
from repro.experiments.runner import (
    AlgorithmComparison,
    ComparisonRow,
    SkippedAlgorithm,
    build_algorithm_suite,
    run_comparison,
    run_spec,
)
from repro.experiments.pipeline import (
    ALGORITHM_BUILDERS,
    DEFAULT_ALGORITHMS,
    ExperimentPlan,
    RunReport,
    available_algorithms,
    load_manifest,
    resume_run,
    run_plan,
)
from repro.experiments.reporting import format_table, format_series
from repro.experiments import figures, tables

__all__ = [
    "PAPER_SAMPLING_ROUNDS",
    "ExperimentScale",
    "sampling_rounds_for",
    "build_adult_task",
    "build_femnist_task",
    "build_synthetic_task",
    "task_fingerprint",
    "SYNTHETIC_SETUPS",
    "TASK_REGISTRY",
    "TaskSpec",
    "available_tasks",
    "register_task",
    "AlgorithmComparison",
    "ComparisonRow",
    "SkippedAlgorithm",
    "build_algorithm_suite",
    "run_comparison",
    "run_spec",
    "ALGORITHM_BUILDERS",
    "DEFAULT_ALGORITHMS",
    "ExperimentPlan",
    "RunReport",
    "available_algorithms",
    "load_manifest",
    "resume_run",
    "run_plan",
    "format_table",
    "format_series",
    "figures",
    "tables",
]
