"""Experiment harness that regenerates every table and figure of the paper.

Each experiment (Table IV, Table V, Fig. 1b, Fig. 4, Fig. 6–10) has a
dedicated function returning a plain-data report (rows / series) plus a text
renderer, so the benchmark suite, the examples and EXPERIMENTS.md all use the
same code path.  Scales are configurable: the ``tiny`` scale finishes each
experiment in seconds for CI, the ``small`` scale is the default used to
produce the numbers recorded in EXPERIMENTS.md, and the ``paper`` scale
mirrors the paper's client counts and sampling budgets.
"""

from repro.experiments.config import (
    PAPER_SAMPLING_ROUNDS,
    ExperimentScale,
    sampling_rounds_for,
)
from repro.experiments.tasks import (
    build_adult_task,
    build_femnist_task,
    build_synthetic_task,
    SYNTHETIC_SETUPS,
)
from repro.experiments.runner import (
    AlgorithmComparison,
    ComparisonRow,
    SkippedAlgorithm,
    build_algorithm_suite,
    run_comparison,
)
from repro.experiments.reporting import format_table, format_series
from repro.experiments import figures, tables

__all__ = [
    "PAPER_SAMPLING_ROUNDS",
    "ExperimentScale",
    "sampling_rounds_for",
    "build_adult_task",
    "build_femnist_task",
    "build_synthetic_task",
    "SYNTHETIC_SETUPS",
    "AlgorithmComparison",
    "ComparisonRow",
    "SkippedAlgorithm",
    "build_algorithm_suite",
    "run_comparison",
    "format_table",
    "format_series",
    "figures",
    "tables",
]
