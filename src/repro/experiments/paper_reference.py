"""The paper's reported numbers, kept as data for paper-vs-measured comparisons.

Only the values needed for the qualitative "shape" checks in EXPERIMENTS.md
are recorded: the relative ℓ2 errors of Table IV (FEMNIST) and Table V
(Adult), and the headline claims of the remaining experiments.  Times are not
recorded because absolute wall-clock depends entirely on the authors' GPU
testbed; the relevant reproducible quantity is the *ordering* and the
evaluation counts.
"""

from __future__ import annotations

#: Table IV — relative l2 error on FEMNIST, by model / n / algorithm.
PAPER_TABLE4_ERRORS: dict[str, dict[int, dict[str, float]]] = {
    "mlp": {
        3: {
            "DIG-FL": 5.01, "Extended-TMC": 0.79, "Extended-GTB": 0.59,
            "CC-Shapley": 0.35, "GTG-Shapley": 0.90, "OR": 2.46,
            "lambda-MR": 0.88, "IPSS": 0.06,
        },
        6: {
            "DIG-FL": 0.70, "Extended-TMC": 0.96, "Extended-GTB": 0.90,
            "CC-Shapley": 1.93, "GTG-Shapley": 0.89, "OR": 3.13,
            "lambda-MR": 0.87, "IPSS": 0.49,
        },
        10: {
            "DIG-FL": 0.77, "Extended-TMC": 0.82, "Extended-GTB": 0.85,
            "CC-Shapley": 1.16, "GTG-Shapley": 0.85, "OR": 3.09,
            "lambda-MR": 0.83, "IPSS": 0.02,
        },
    },
    "cnn": {
        3: {
            "DIG-FL": 95.14, "Extended-TMC": 0.81, "Extended-GTB": 0.60,
            "CC-Shapley": 0.02, "GTG-Shapley": 0.87, "OR": 0.46,
            "lambda-MR": 0.73, "IPSS": 0.01,
        },
        6: {
            "DIG-FL": 78.25, "Extended-TMC": 0.91, "Extended-GTB": 0.70,
            "CC-Shapley": 0.40, "GTG-Shapley": 0.76, "OR": 0.35,
            "lambda-MR": 0.73, "IPSS": 0.02,
        },
        10: {
            "DIG-FL": 98.42, "Extended-TMC": 0.83, "Extended-GTB": 0.87,
            "CC-Shapley": 2.60, "GTG-Shapley": 0.75, "OR": 0.76,
            "lambda-MR": 0.71, "IPSS": 0.02,
        },
    },
}

#: Table V — relative l2 error on Adult, by model / n / algorithm.
PAPER_TABLE5_ERRORS: dict[str, dict[int, dict[str, float]]] = {
    "mlp": {
        3: {
            "DIG-FL": 1.02, "Extended-TMC": 1.46, "Extended-GTB": 1.89,
            "CC-Shapley": 0.09, "GTG-Shapley": 5.30, "OR": 1.00,
            "lambda-MR": 2.93, "IPSS": 0.05,
        },
        6: {
            "DIG-FL": 1.12, "Extended-TMC": 2.30, "Extended-GTB": 2.02,
            "CC-Shapley": 0.18, "GTG-Shapley": 3.65, "OR": 1.00,
            "lambda-MR": 3.21, "IPSS": 0.13,
        },
        10: {
            "DIG-FL": 1.23, "Extended-TMC": 2.19, "Extended-GTB": 1.97,
            "CC-Shapley": 0.09, "GTG-Shapley": 3.95, "OR": 0.99,
            "lambda-MR": 3.83, "IPSS": 0.08,
        },
    },
    "xgb": {
        3: {
            "DIG-FL": 0.95, "Extended-TMC": 1.38, "Extended-GTB": 0.45,
            "CC-Shapley": 0.27, "IPSS": 0.04,
        },
        6: {
            "DIG-FL": 0.98, "Extended-TMC": 2.16, "Extended-GTB": 1.77,
            "CC-Shapley": 0.13, "IPSS": 0.07,
        },
        10: {
            "DIG-FL": 0.98, "Extended-TMC": 1.41, "Extended-GTB": 1.59,
            "CC-Shapley": 0.13, "IPSS": 0.12,
        },
    },
}

#: Qualitative claims reproduced by the remaining experiments.
PAPER_CLAIMS: dict[str, str] = {
    "figure1b": "No existing method is simultaneously as fast and as accurate as IPSS "
    "on FEMNIST with ten clients.",
    "figure4": "K-Greedy relative error drops below 1% for K <= 2 on FEMNIST/CNN with "
    "ten clients and keeps decreasing in K (key combinations phenomenon).",
    "figure6": "IPSS attains the lowest error in all five synthetic setups while being "
    "among the two fastest methods.",
    "figure7": "IPSS reaches errors below 1e-2 with gamma < 100 and is more stable than "
    "CC-Shapley, which needs gamma > 200.",
    "figure8": "IPSS is Pareto-optimal in the time/error trade-off for 3, 6 and 10 clients.",
    "figure9": "With gamma = n*log(n), IPSS runs faster than the other sampling methods at "
    "20-100 clients and best satisfies the no-free-rider / symmetry proxies.",
    "figure10": "MC-SV has lower estimator variance than CC-SV across client counts and "
    "budgets, for both MLP and CNN models.",
}


def paper_best_algorithm(table: dict[int, dict[str, float]], n_clients: int) -> str:
    """Name of the algorithm with the lowest paper-reported error for ``n``."""
    errors = table[n_clients]
    return min(errors, key=errors.get)
