"""Experiment configuration: scales and the paper's sampling-round table.

Table III of the paper fixes the sampling budget γ per client count for all
sampling-based methods (n=3 → γ=5, n=6 → γ=8, n=10 → γ=32); the scalability
experiment (Fig. 9) uses γ = n·log n.  Dataset and model sizes are configured
through :class:`ExperimentScale` so that the same experiment code can run at a
CI-friendly size or at a size closer to the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Table III — sampling rounds γ per number of FL clients.
PAPER_SAMPLING_ROUNDS: dict[int, int] = {3: 5, 6: 8, 10: 32}


def sampling_rounds_for(n_clients: int) -> int:
    """The γ used by all sampling-based algorithms for ``n_clients`` clients.

    Values for the paper's client counts come from Table III; other counts use
    the paper's scalability rule γ = ⌈n·log n⌉ (Fig. 9), with a floor of
    ``n + 2`` so that at least the empty set, the singletons and U(N) fit.
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1, got {n_clients}")
    if n_clients in PAPER_SAMPLING_ROUNDS:
        return PAPER_SAMPLING_ROUNDS[n_clients]
    return max(n_clients + 2, math.ceil(n_clients * math.log(max(n_clients, 2))))


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how heavy each experiment is.

    Attributes
    ----------
    samples_per_client:
        Training samples held by each FL client.
    test_samples:
        Size of the held-out evaluation set defining the utility.
    fl_rounds / local_epochs:
        Federated-training length per coalition evaluation.
    image_size:
        Side length of the synthetic image datasets.
    mlp_hidden / cnn_filters:
        Width of the MLP hidden layer / number of CNN filters.
    gbdt_rounds:
        Boosting rounds for the XGBoost stand-in.
    repetitions:
        Number of repeated runs for variance/Pareto experiments.
    """

    name: str = "small"
    samples_per_client: int = 40
    test_samples: int = 150
    fl_rounds: int = 5
    local_epochs: int = 2
    image_size: int = 8
    mlp_hidden: int = 16
    cnn_filters: int = 3
    gbdt_rounds: int = 8
    repetitions: int = 10

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Seconds-per-experiment scale used by the test suite and CI."""
        return cls(
            name="tiny",
            samples_per_client=25,
            test_samples=80,
            fl_rounds=3,
            local_epochs=2,
            image_size=8,
            mlp_hidden=8,
            cnn_filters=2,
            gbdt_rounds=4,
            repetitions=4,
        )

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Default scale used to fill EXPERIMENTS.md (minutes overall)."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Closest configuration to the paper's (still CPU-feasible)."""
        return cls(
            name="paper",
            samples_per_client=120,
            test_samples=400,
            fl_rounds=6,
            local_epochs=3,
            image_size=10,
            mlp_hidden=32,
            cnn_filters=4,
            gbdt_rounds=15,
            repetitions=30,
        )

    @classmethod
    def from_name(cls, name: str) -> "ExperimentScale":
        factories = {"tiny": cls.tiny, "small": cls.small, "paper": cls.paper}
        if name not in factories:
            raise ValueError(f"unknown scale {name!r}; choose from {sorted(factories)}")
        return factories[name]()
