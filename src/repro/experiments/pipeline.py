"""Config-driven, resumable experiment pipeline.

A benchmark campaign is a grid of *cells* — one (task, algorithm) pair each —
described declaratively by an :class:`ExperimentPlan` (a list of
:class:`~repro.experiments.specs.TaskSpec` plus algorithm names).  The
pipeline executes cells one at a time and records each completed cell in a
JSON *manifest* under the run directory, with the raw
:class:`~repro.core.result.ValuationResult` persisted next to it.  That makes
long campaigns:

* **interruptible** — kill the process at any point; only the in-flight cell
  is lost, every finished cell is already on disk;
* **resumable** — :func:`resume_run` (or ``repro resume``) re-reads the
  manifest and computes only the missing cells; and
* **retraining-free** — with a persistent :class:`~repro.store.UtilityStore`
  attached, even the re-computed cells serve their coalition utilities from
  disk, so a full rerun of a finished campaign performs **zero** FL trainings
  and produces bitwise-identical values.

Cost-accounting caveat: the in-memory cache is cleared before every cell, but
the persistent store deliberately survives, so with a store attached each
cell's ``evaluations`` counts only its *incremental* trainings — coalitions
already trained by an earlier cell (or an earlier run) are served from disk
and cost nothing.  Values and error columns are unaffected.  For the paper's
every-algorithm-pays-its-own-cost accounting (Tables IV/V timings), run
without a store; see ``docs/store.md``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.anytime import restore_rng
from repro.core import (
    CCShapleySampling,
    DIGFL,
    EstimatorState,
    ExtendedGTB,
    ExtendedTMC,
    GTGShapley,
    IPSS,
    LambdaMR,
    MCShapley,
    ORBaseline,
    PermShapley,
    StoppingRule,
    ValuationAlgorithm,
    rank_correlation,
    relative_error_l2,
)
from repro.experiments.config import sampling_rounds_for
from repro.experiments.specs import TaskSpec
from repro.parallel.executors import EXECUTOR_BACKENDS
from repro.store import StoreLike, fingerprint, resolve_store
from repro.telemetry import Telemetry

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
RESULTS_DIR = "results"
CHECKPOINTS_DIR = "checkpoints"

#: algorithm registry: name -> factory(n_clients, gamma, seed).  Names match
#: the ``ValuationAlgorithm.name`` identifiers used throughout the reports.
ALGORITHM_BUILDERS: Dict[str, Callable] = {
    "Perm-Shapley": lambda n, gamma, seed: PermShapley(seed=seed),
    "MC-Shapley": lambda n, gamma, seed: MCShapley(seed=seed),
    "Extended-TMC": lambda n, gamma, seed: ExtendedTMC(total_rounds=gamma, seed=seed),
    "Extended-GTB": lambda n, gamma, seed: ExtendedGTB(total_rounds=gamma, seed=seed),
    "CC-Shapley": lambda n, gamma, seed: CCShapleySampling(
        total_rounds=gamma, seed=seed
    ),
    "IPSS": lambda n, gamma, seed: IPSS(total_rounds=gamma, seed=seed),
    "DIG-FL": lambda n, gamma, seed: DIGFL(seed=seed),
    "GTG-Shapley": lambda n, gamma, seed: GTGShapley(seed=seed),
    "OR": lambda n, gamma, seed: ORBaseline(seed=seed),
    "lambda-MR": lambda n, gamma, seed: LambdaMR(seed=seed),
}

#: default cell line-up: the exact reference plus all sampling-based methods.
#: Gradient-based baselines retrain the grand coalition outside the utility
#: store on every run, so they are opt-in for store-backed campaigns.
DEFAULT_ALGORITHMS = (
    "MC-Shapley",
    "Extended-TMC",
    "Extended-GTB",
    "CC-Shapley",
    "IPSS",
)


def available_algorithms() -> list[str]:
    """Registered algorithm names, in registry order."""
    return list(ALGORITHM_BUILDERS)


def build_task_algorithm(spec: TaskSpec, algorithm_name: str, n_clients: int):
    """Construct the estimator one (task, algorithm) cell runs.

    The single adaptation point between a declarative cell identity and a
    live estimator: the paper's γ budget is derived from the client count and
    the spec's seed feeds the estimator RNG.  Both the pipeline and the
    valuation service (:mod:`repro.service`) build their estimators here, so
    a service job and a ``repro run`` cell with the same spec are the same
    computation — bitwise, at fixed seed.
    """
    if algorithm_name not in ALGORITHM_BUILDERS:
        raise ValueError(
            f"unknown algorithm {algorithm_name!r}; "
            f"choose from {available_algorithms()}"
        )
    gamma = sampling_rounds_for(n_clients)
    return ALGORITHM_BUILDERS[algorithm_name](n_clients, gamma, spec.seed)


def load_estimator_checkpoint(
    path: str,
    algorithm,
    n_clients: int,
    say: Callable[[str], None],
) -> Optional[EstimatorState]:
    """Restore a mid-valuation checkpoint file, if it matches the estimator.

    A checkpoint that fails to parse, carries no restorable RNG snapshot, or
    belongs to a different algorithm configuration (e.g. the budget changed
    between invocations) is ignored — the valuation simply restarts from
    scratch rather than failing.  Shared by the pipeline's per-cell
    checkpoints and the service's per-job checkpoints.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = EstimatorState.from_dict(json.load(handle))
        if not state.done:
            # Vet the RNG snapshot now: a missing or unrestorable rng_state
            # raising later, inside iter_run, would be mistaken for an
            # inapplicable algorithm and record the cell as skipped for good.
            if state.rng_state is None:
                raise ValueError("checkpoint carries no RNG state")
            restore_rng(state.rng_state)
    except (ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        say(f"ignoring unreadable checkpoint {path}: {error}")
        return None
    if not isinstance(algorithm, ValuationAlgorithm):
        return None
    if not algorithm.state_matches(state, n_clients):
        say(f"ignoring stale checkpoint {path}: algorithm configuration changed")
        return None
    return state


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


def cell_id(task_fingerprint: str, algorithm: str) -> str:
    """Manifest id of one (task, algorithm) cell.

    The single definition — plan enumeration and the executor must agree, or
    a resume would silently recompute every already-finished cell.
    """
    return f"{task_fingerprint[:12]}-{_slug(algorithm)}"


@dataclass(frozen=True)
class ExperimentPlan:
    """Declarative description of one benchmark campaign.

    ``algorithms`` are registry names (:func:`available_algorithms`); every
    algorithm runs on every task, and each (task, algorithm) pair is one
    resumable cell.  ``backend`` picks the coalition-evaluation executor
    (:data:`~repro.parallel.executors.EXECUTOR_BACKENDS`; ``None`` keeps the
    oracle's automatic serial/thread choice) and is recorded in the manifest
    alongside ``n_workers``.

    The ``fleet`` backend additionally needs ``queue_dir`` (the shared lease
    queue directory) and accepts ``spawn_workers`` (worker processes the run
    launches itself; 0 relies on external ``repro worker`` processes),
    ``worker_backend`` (each worker's internal executor) and
    ``lease_seconds``.  All of these are machine-local execution choices —
    like ``n_workers`` they never enter the plan fingerprint.
    """

    tasks: tuple
    algorithms: tuple = DEFAULT_ALGORITHMS
    name: str = "run"
    n_workers: int = 1
    backend: Optional[str] = None
    queue_dir: Optional[str] = None
    spawn_workers: int = 0
    worker_backend: Optional[str] = None
    lease_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("an ExperimentPlan needs at least one task")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        unknown = [a for a in self.algorithms if a not in ALGORITHM_BUILDERS]
        if unknown:
            raise ValueError(
                f"unknown algorithms {unknown}; choose from {available_algorithms()}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.backend is not None and self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {EXECUTOR_BACKENDS}"
            )
        if self.backend == "fleet" and not self.queue_dir:
            raise ValueError(
                "backend 'fleet' needs a queue directory (queue_dir= / "
                "--queue-dir) shared with its workers"
            )
        if self.spawn_workers < 0:
            raise ValueError(
                f"spawn_workers must be >= 0, got {self.spawn_workers}"
            )
        if self.lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0, got {self.lease_seconds}"
            )
        if self.worker_backend is not None:
            from repro.fleet.coordinator import WORKER_BACKENDS

            if self.worker_backend not in WORKER_BACKENDS:
                raise ValueError(
                    f"unknown worker backend {self.worker_backend!r}; "
                    f"choose from {WORKER_BACKENDS}"
                )

    def fingerprint(self) -> str:
        """Content address of the plan (tasks + algorithms, not concurrency).

        ``n_workers``, ``backend``, ``name`` and the fleet execution fields
        (``queue_dir``, ``spawn_workers``, ``worker_backend``,
        ``lease_seconds``) are deliberately excluded: resuming a campaign on
        a beefier machine, under a different label or on a different
        executor must not invalidate its completed cells — the backends are
        value-equivalent (see ``docs/performance.md``).
        """
        return fingerprint(
            {
                "version": MANIFEST_VERSION,
                "tasks": [spec.to_dict() for spec in self.tasks],
                "algorithms": list(self.algorithms),
            }
        )

    def cells(self) -> List[tuple]:
        """All (task_spec, algorithm_name, cell_id) triples, in run order."""
        triples = []
        for spec in self.tasks:
            task_fp = spec.fingerprint()
            for algorithm in self.algorithms:
                triples.append((spec, algorithm, cell_id(task_fp, algorithm)))
        return triples

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "tasks": [spec.to_dict() for spec in self.tasks],
            "algorithms": list(self.algorithms),
            "n_workers": self.n_workers,
        }
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.queue_dir is not None:
            payload["queue_dir"] = self.queue_dir
        if self.spawn_workers:
            payload["spawn_workers"] = self.spawn_workers
        if self.worker_backend is not None:
            payload["worker_backend"] = self.worker_backend
        if self.lease_seconds != 30.0:
            payload["lease_seconds"] = self.lease_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentPlan":
        unknown = set(payload) - {
            "name",
            "tasks",
            "algorithms",
            "n_workers",
            "backend",
            "queue_dir",
            "spawn_workers",
            "worker_backend",
            "lease_seconds",
        }
        if unknown:
            # A typo in a plan file ("algorithm" for "algorithms") must fail
            # loudly, not silently run hours of the default campaign.
            raise ValueError(f"unknown ExperimentPlan fields: {sorted(unknown)}")
        if "tasks" not in payload:
            raise ValueError("an ExperimentPlan requires a 'tasks' list")
        return cls(
            tasks=tuple(TaskSpec.from_dict(t) for t in payload["tasks"]),
            algorithms=tuple(payload.get("algorithms", DEFAULT_ALGORITHMS)),
            name=payload.get("name", "run"),
            n_workers=int(payload.get("n_workers", 1)),
            backend=payload.get("backend"),
            queue_dir=payload.get("queue_dir"),
            spawn_workers=int(payload.get("spawn_workers", 0)),
            worker_backend=payload.get("worker_backend"),
            lease_seconds=float(payload.get("lease_seconds", 30.0)),
        )


@dataclass
class RunReport:
    """Outcome of one :func:`run_plan` invocation."""

    run_dir: str
    plan: ExperimentPlan
    rows: List[dict] = field(default_factory=list)
    cells_run: int = 0
    cells_resumed: int = 0
    cells_skipped: int = 0
    cells_continued: int = 0
    fl_trainings: int = 0
    store_hits: int = 0
    cache_hits: int = 0
    batch_counts: Dict[str, int] = field(default_factory=dict)

    def accounting(self) -> dict:
        """Consolidated cost accounting for this invocation.

        One place instead of callers re-deriving it from the oracle:
        evaluations actually paid, lookups served by each cache tier, the
        combined hit-rate, and batches dispatched per executor backend.
        All counts are deterministic (independent of telemetry being on).
        """
        lookups = self.fl_trainings + self.cache_hits + self.store_hits
        served = self.cache_hits + self.store_hits
        return {
            "evaluations": self.fl_trainings,
            "store_hits": self.store_hits,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (served / lookups) if lookups else 0.0,
            "batch_counts": dict(sorted(self.batch_counts.items())),
        }

    def to_dict(self) -> dict:
        return {
            "run_dir": self.run_dir,
            "plan_fingerprint": self.plan.fingerprint(),
            "cells_run": self.cells_run,
            "cells_resumed": self.cells_resumed,
            "cells_skipped": self.cells_skipped,
            "cells_continued": self.cells_continued,
            "fl_trainings": self.fl_trainings,
            "store_hits": self.store_hits,
            "accounting": self.accounting(),
            "rows": self.rows,
        }


def _write_json(path: str, payload: dict) -> None:
    """Atomic JSON write: a crash mid-dump must not corrupt the manifest."""
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp_path, path)


def load_manifest(run_dir: str) -> Optional[dict]:
    """Read the run manifest, or ``None`` for a fresh directory."""
    path = os.path.join(run_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _fresh_manifest(plan: ExperimentPlan) -> dict:
    return {
        "version": MANIFEST_VERSION,
        "name": plan.name,
        "plan": plan.to_dict(),
        "plan_fingerprint": plan.fingerprint(),
        # Manifest timestamps are run telemetry; the plan fingerprint and
        # every store key are computed without them.
        "created_at": time.time(),  # repro: allow[RPR002] reason=telemetry (see above)
        "updated_at": time.time(),  # repro: allow[RPR002] reason=telemetry (see above)
        "cells": {},
    }


def run_plan(
    plan: ExperimentPlan,
    run_dir: str,
    store: StoreLike = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
    stop_rule: Optional[StoppingRule] = None,
    checkpoint_every: int = 1,
    on_snapshot: Optional[Callable[[TaskSpec, str, object], None]] = None,
    telemetry: Optional[Telemetry] = None,
) -> RunReport:
    """Execute (or finish) a campaign, one manifest-tracked cell at a time.

    With ``resume=False`` the run directory must be fresh — an existing
    manifest is refused rather than silently overwritten.  With
    ``resume=True`` an existing manifest is honoured: cells recorded as done
    (or deliberately skipped) are loaded from disk and *not* recomputed, and
    the manifest's plan must fingerprint-match ``plan`` so a resumed campaign
    cannot silently compute different cells than it started.

    Cells execute through the anytime protocol
    (:meth:`~repro.core.ValuationAlgorithm.iter_run`): every
    ``checkpoint_every`` chunks (0 disables) the estimator state is persisted
    under ``checkpoints/``, so an interrupted campaign resumes *inside* the
    interrupted cell — only the in-flight chunk is replayed, and with the
    store attached that replay trains nothing.  ``stop_rule`` (reset per
    cell) ends a cell early once converged; the cell is then recorded done
    with ``metadata.stopped_early``.  ``on_snapshot(spec, algorithm,
    snapshot)`` observes every chunk of every cell.

    The report's ``fl_trainings`` counts only trainings paid by *this*
    invocation — the number the acceptance bar requires to be zero when a
    finished campaign is rerun against its persistent store.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` handle, usually
    journal-backed via ``Telemetry.for_run_dir(run_dir)``) wraps the run and
    every cell in spans, records snapshot cadence and cache/store metrics,
    and stamps each completed cell's manifest entry with a ``telemetry``
    block of metric deltas.  It is strictly observational: values, seeds,
    store keys and the manifest's completion semantics are bitwise-identical
    with ``telemetry=None`` (the CI telemetry smoke gate enforces this).
    """
    say = log if log is not None else (lambda message: None)
    if checkpoint_every < 0:
        raise ValueError(f"checkpoint_every must be >= 0, got {checkpoint_every}")
    os.makedirs(os.path.join(run_dir, RESULTS_DIR), exist_ok=True)
    manifest = load_manifest(run_dir)
    if manifest is None:
        manifest = _fresh_manifest(plan)
        _write_json(os.path.join(run_dir, MANIFEST_NAME), manifest)
    elif not resume:
        raise ValueError(
            f"run directory {run_dir!r} already contains a manifest; "
            "resume it (repro resume / resume=True) or use a fresh directory"
        )
    elif manifest.get("plan_fingerprint") != plan.fingerprint():
        raise ValueError(
            "manifest plan does not match the requested plan "
            f"({manifest.get('plan_fingerprint')} != {plan.fingerprint()}); "
            "a resumed run must continue the campaign it started"
        )

    report = RunReport(run_dir=run_dir, plan=plan)
    opened_store, owns_store = resolve_store(store)
    if plan.backend == "fleet" and opened_store is None:
        raise ValueError(
            "backend 'fleet' needs a persistent utility store shared with "
            "its workers (--store PATH / store=...)"
        )
    if telemetry is not None and opened_store is not None:
        opened_store.set_telemetry(telemetry)
    run_span = (
        telemetry.span("pipeline.run", plan=plan.name, cells=len(plan.cells()))
        if telemetry is not None
        else nullcontext()
    )
    try:
        with run_span:
            for spec in plan.tasks:
                _run_task_cells(
                    plan,
                    spec,
                    manifest,
                    run_dir,
                    opened_store,
                    report,
                    say,
                    stop_rule=stop_rule,
                    checkpoint_every=checkpoint_every,
                    on_snapshot=on_snapshot,
                    telemetry=telemetry,
                )
    finally:
        manifest["updated_at"] = time.time()  # repro: allow[RPR002] reason=manifest telemetry
        _write_json(os.path.join(run_dir, MANIFEST_NAME), manifest)
        _write_json(os.path.join(run_dir, "summary.json"), report.to_dict())
        if telemetry is not None:
            telemetry.flush()
            if opened_store is not None:
                opened_store.set_telemetry(None)
        if owns_store and opened_store is not None:
            opened_store.close()
    return report


def resume_run(
    run_dir: str,
    store: StoreLike = None,
    log: Optional[Callable[[str], None]] = None,
    stop_rule: Optional[StoppingRule] = None,
    checkpoint_every: int = 1,
    on_snapshot: Optional[Callable[[TaskSpec, str, object], None]] = None,
    telemetry: Optional[Telemetry] = None,
) -> RunReport:
    """Finish an interrupted campaign from its manifest alone.

    Cells interrupted mid-valuation continue from their estimator checkpoint
    (see :func:`run_plan`): the resumed run replays at most the in-flight
    chunk and produces values bitwise-identical to an uninterrupted run.
    """
    manifest = load_manifest(run_dir)
    if manifest is None:
        raise ValueError(f"no manifest found in {run_dir!r}; nothing to resume")
    plan = ExperimentPlan.from_dict(manifest["plan"])
    return run_plan(
        plan,
        run_dir,
        store=store,
        resume=True,
        log=log,
        stop_rule=stop_rule,
        checkpoint_every=checkpoint_every,
        on_snapshot=on_snapshot,
        telemetry=telemetry,
    )


# --------------------------------------------------------------------------- #
# Cell execution
# --------------------------------------------------------------------------- #
def _checkpoint_path(run_dir: str, cell: str) -> str:
    return os.path.join(run_dir, CHECKPOINTS_DIR, f"{cell}.state.json")


def _load_checkpoint(
    run_dir: str, cell: str, algorithm, n_clients: int, say: Callable[[str], None]
) -> Optional[EstimatorState]:
    """Restore a cell's mid-valuation checkpoint, if one matches."""
    return load_estimator_checkpoint(
        _checkpoint_path(run_dir, cell), algorithm, n_clients, say
    )


def _drop_checkpoint(run_dir: str, cell: str) -> None:
    path = _checkpoint_path(run_dir, cell)
    if os.path.exists(path):
        os.remove(path)


def _execute_cell(
    algorithm,
    utility,
    spec: TaskSpec,
    algorithm_name: str,
    run_dir: str,
    cell: str,
    report: RunReport,
    say: Callable[[str], None],
    stop_rule: Optional[StoppingRule],
    checkpoint_every: int,
    on_snapshot,
):
    """Run one cell through the anytime protocol, checkpointing as it goes.

    The stop-rule loop itself lives in :meth:`ValuationAlgorithm.run` — the
    single driver of the snapshot stream; this function only contributes the
    per-chunk observer (checkpoint write + external callback).  Gradient
    algorithms stream through their single-chunk ``iter_run`` adapter, so
    ``on_snapshot`` observes every cell either way.
    """

    def observe(snapshot) -> None:
        # Persist the state before handing control to the observer, so an
        # interrupt raised from the callback still finds this chunk on disk.
        if (
            snapshot.state is not None
            and not snapshot.done
            and checkpoint_every
            and snapshot.chunk_index % checkpoint_every == 0
        ):
            os.makedirs(os.path.join(run_dir, CHECKPOINTS_DIR), exist_ok=True)
            _write_json(_checkpoint_path(run_dir, cell), snapshot.state.to_dict())
        if on_snapshot is not None:
            on_snapshot(spec, algorithm_name, snapshot)

    if not isinstance(algorithm, ValuationAlgorithm):
        last = None
        for last in algorithm.iter_run(utility, utility.n_clients):
            observe(last)
        return last.result()

    state = _load_checkpoint(run_dir, cell, algorithm, utility.n_clients, say)
    if state is not None:
        report.cells_continued += 1
        say(
            f"continuing {spec.label()} × {algorithm_name} from checkpoint "
            f"(chunk {state.chunk_index}, {state.evaluations} evaluations spent)"
        )
    result = algorithm.run(
        utility,
        utility.n_clients,
        stopping_rule=stop_rule,
        state=state,
        on_snapshot=observe,
    )
    stopped_by = result.metadata.get("stopped_by")
    if stopped_by:
        say(f"early stop for {spec.label()} × {algorithm_name}: {stopped_by}")
    return result


def _snapshot_interval_observer(telemetry: Telemetry, on_snapshot):
    """Wrap ``on_snapshot`` to record the cadence of one cell's snapshots.

    Feeds the ``snapshot.interval_seconds`` histogram — the p50/p99 snapshot
    latency the ROADMAP service PR needs to quote.  One wrapper per cell, so
    the gap between cells never pollutes the distribution.
    """
    last: List[float] = []

    def observe(spec, algorithm_name, snapshot) -> None:
        now = time.perf_counter()
        if last:
            telemetry.observe("snapshot.interval_seconds", now - last[0])
            last[0] = now
        else:
            last.append(now)
        if on_snapshot is not None:
            on_snapshot(spec, algorithm_name, snapshot)

    return observe


def _run_task_cells(
    plan: ExperimentPlan,
    spec: TaskSpec,
    manifest: dict,
    run_dir: str,
    store,
    report: RunReport,
    say: Callable[[str], None],
    stop_rule: Optional[StoppingRule] = None,
    checkpoint_every: int = 1,
    on_snapshot=None,
    telemetry: Optional[Telemetry] = None,
) -> None:
    task_fp = spec.fingerprint()
    cell_ids = {
        algorithm: cell_id(task_fp, algorithm) for algorithm in plan.algorithms
    }
    pending = [
        algorithm
        for algorithm, cid in cell_ids.items()
        if manifest["cells"].get(cid, {}).get("status") not in ("done", "skipped")
    ]

    utility = None
    results: Dict[str, dict] = {}
    try:
        if pending:
            utility = spec.build(store)
            if plan.backend == "fleet":
                # The fleet backend is not name-constructible (it needs the
                # queue directory), so build the instance here; the oracle's
                # bind_store hook then ships the store identity to workers.
                from repro.fleet.coordinator import FleetExecutor

                utility.set_n_workers(
                    plan.n_workers,
                    FleetExecutor(
                        queue_dir=plan.queue_dir,
                        spawn_workers=plan.spawn_workers,
                        worker_backend=plan.worker_backend or "serial",
                        lease_seconds=plan.lease_seconds,
                        log=say,
                    ),
                )
            elif plan.n_workers > 1 or plan.backend is not None:
                utility.set_n_workers(plan.n_workers, plan.backend)
            if telemetry is not None:
                utility.set_telemetry(telemetry)
        for algorithm_name in plan.algorithms:
            this_cell = cell_ids[algorithm_name]
            recorded = manifest["cells"].get(this_cell)
            if recorded is not None and recorded.get("status") in ("done", "skipped"):
                if recorded["status"] == "done":
                    results[algorithm_name] = _load_cell(run_dir, recorded)
                    report.cells_resumed += 1
                else:
                    report.cells_skipped += 1
                    report.rows.append(_skip_row(spec, algorithm_name, recorded))
                continue

            algorithm = build_task_algorithm(spec, algorithm_name, utility.n_clients)
            # Fresh memory tier per cell, so one cell's hits never count for
            # another; the persistent store deliberately serves across cells,
            # making `evaluations` the cell's *incremental* training cost.
            utility.reset_cache()
            store_hits_before = utility.store_hits
            cache_hits_before = utility.cache_hits
            trainings_before = utility.evaluations
            say(f"running {spec.label()} × {algorithm_name}")
            cell_observer = on_snapshot
            telemetry_before: Optional[dict] = None
            if telemetry is not None:
                telemetry_before = telemetry.snapshot()
                cell_observer = _snapshot_interval_observer(telemetry, on_snapshot)
            cell_span = (
                telemetry.span(
                    "pipeline.cell",
                    cell=this_cell,
                    task=spec.label(),
                    algorithm=algorithm_name,
                )
                if telemetry is not None
                else nullcontext()
            )
            try:
                with cell_span:
                    result = _execute_cell(
                        algorithm,
                        utility,
                        spec,
                        algorithm_name,
                        run_dir,
                        this_cell,
                        report,
                        say,
                        stop_rule,
                        checkpoint_every,
                        cell_observer,
                    )
            except (TypeError, ValueError) as error:
                cell = {
                    "status": "skipped",
                    "algorithm": algorithm_name,
                    "task": spec.label(),
                    "task_fingerprint": task_fp,
                    "reason": str(error),
                    "error_type": type(error).__name__,
                }
                manifest["cells"][this_cell] = cell
                _write_json(os.path.join(run_dir, MANIFEST_NAME), manifest)
                _drop_checkpoint(run_dir, this_cell)
                report.cells_skipped += 1
                report.rows.append(_skip_row(spec, algorithm_name, cell))
                continue
            payload = {
                "algorithm": algorithm_name,
                "task": spec.label(),
                "task_fingerprint": task_fp,
                "result": result.to_dict(),
                "store_hits": utility.store_hits - store_hits_before,
                "completed_at": time.time(),  # repro: allow[RPR002] reason=cell telemetry
            }
            result_file = os.path.join(RESULTS_DIR, f"{this_cell}.json")
            _write_json(os.path.join(run_dir, result_file), payload)
            cell_record = {
                "status": "done",
                "algorithm": algorithm_name,
                "task": spec.label(),
                "task_fingerprint": task_fp,
                "result_file": result_file,
            }
            if telemetry is not None and telemetry_before is not None:
                # Metric deltas attributable to this cell (counters/histogram
                # counts since the cell started).  Purely descriptive — a
                # resume never reads this block back.
                cell_record["telemetry"] = telemetry.delta_since(telemetry_before)
            manifest["cells"][this_cell] = cell_record
            manifest["updated_at"] = time.time()  # repro: allow[RPR002] reason=manifest telemetry
            _write_json(os.path.join(run_dir, MANIFEST_NAME), manifest)
            if telemetry is not None:
                telemetry.flush()
            # The cell is durably recorded; its mid-run checkpoint is obsolete.
            _drop_checkpoint(run_dir, this_cell)
            report.cells_run += 1
            # `fl_trainings` must count only what THIS invocation paid.  For
            # a cell resumed from a mid-run checkpoint the result's
            # `utility_evaluations` is cumulative across invocations, so read
            # the oracle's own training counter instead.  Gradient-based
            # cells train their grand coalition outside the oracle; keep the
            # result's accounting (one FL training) for them.
            if isinstance(algorithm, ValuationAlgorithm):
                report.fl_trainings += int(utility.evaluations - trainings_before)
            else:
                report.fl_trainings += int(result.utility_evaluations)
            report.store_hits += int(payload["store_hits"])
            report.cache_hits += int(utility.cache_hits - cache_hits_before)
            results[algorithm_name] = payload
    finally:
        if utility is not None:
            for backend_name, count in getattr(utility, "batch_counts", {}).items():
                report.batch_counts[backend_name] = (
                    report.batch_counts.get(backend_name, 0) + int(count)
                )
            fallback = getattr(utility.executor, "last_fallback_reason", None)
            if fallback:
                # A requested vectorized backend that cannot engage runs the
                # serial loop instead — correct values, none of the speed.
                # Surface it so nobody benchmarks the wrong path unknowingly.
                say(
                    f"note: vectorized backend fell back to serial for "
                    f"{spec.label()}: {fallback}"
                )
            utility.close()

    report.rows.extend(_score_task_rows(spec, plan, results))


def _load_cell(run_dir: str, recorded: dict) -> dict:
    with open(os.path.join(run_dir, recorded["result_file"]), "r", encoding="utf-8") as handle:
        return json.load(handle)


def _skip_row(spec: TaskSpec, algorithm: str, cell: dict) -> dict:
    return {
        "task": spec.label(),
        "n": spec.n_clients,
        "algorithm": algorithm,
        "status": "skipped",
        "reason": cell.get("reason", ""),
    }


def _score_task_rows(
    spec: TaskSpec, plan: ExperimentPlan, results: Dict[str, dict]
) -> List[dict]:
    """Turn a task's cell payloads into report rows, scored against MC-SV.

    Errors are recomputed from the persisted value vectors, so resumed and
    fresh cells score identically — the error column never depends on which
    invocation happened to execute a cell.
    """
    exact_values = None
    if "MC-Shapley" in results:
        exact_values = np.asarray(results["MC-Shapley"]["result"]["values"], dtype=float)
    rows = []
    for algorithm_name in plan.algorithms:
        payload = results.get(algorithm_name)
        if payload is None:
            continue
        result = payload["result"]
        values = np.asarray(result["values"], dtype=float)
        is_exact = algorithm_name in ("MC-Shapley", "Perm-Shapley")
        error = None
        correlation = None
        if exact_values is not None and not is_exact:
            error = relative_error_l2(values, exact_values)
            correlation = rank_correlation(values, exact_values)
        rows.append(
            {
                "task": payload["task"],
                "n": int(result["n_clients"]),
                "algorithm": algorithm_name,
                "status": "done",
                "time_s": float(result["elapsed_seconds"]),
                "evaluations": int(result["utility_evaluations"]),
                "store_hits": int(payload.get("store_hits", 0)),
                "error_l2": error,
                "rank_correlation": correlation,
            }
        )
    return rows
