"""Plain-text rendering of experiment reports.

The paper presents results as tables (Table IV, V) and line/scatter plots
(Fig. 4, 6–10).  Without a plotting dependency we render tables as aligned
text and figures as labelled numeric series, which is enough to compare the
reproduced shape against the paper (who wins, by what factor, where the
crossovers are).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def _format_cell(value, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or 0 < abs(value) < 10**-precision:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_cell(row.get(column), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    precision: int = 4,
) -> str:
    """Render named series over a shared x-axis (a text version of a figure)."""
    rows = []
    for index, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else None
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title, precision=precision)
