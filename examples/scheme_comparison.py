"""Comparing the MC-SV and CC-SV schemes inside the stratified framework.

Section III of the paper proves (Thm. 2) that, under the same sampling
strategy, a marginal contribution ``U(S ∪ {i}) − U(S)`` has lower variance
than a complementary contribution ``U(S ∪ {i}) − U(N \\ (S ∪ {i}))`` in FL —
the reason IPSS is built on MC-SV.  This example verifies the claim
empirically on a writer-partitioned classification federation (the setting of
Fig. 10) and prints the closed-form Eq. 9 / Eq. 10 variances for an FL
linear-regression federation.

Run with::

    python examples/scheme_comparison.py
"""

from __future__ import annotations

from repro.core import (
    contribution_variance,
    empirical_scheme_variance,
    theoretical_variance_cc,
    theoretical_variance_mc,
)
from repro.core.stratified import allocate_rounds
from repro.experiments.config import ExperimentScale
from repro.experiments.tasks import build_femnist_task

N_CLIENTS = 6
GAMMA = 12
SEED = 3


def main() -> None:
    scale = ExperimentScale.tiny()
    utility, _ = build_femnist_task(n_clients=N_CLIENTS, model="mlp", scale=scale, seed=SEED)

    # 1. The quantity Theorem 2 bounds: variance of a single contribution
    #    sample, with the same random (client, coalition) pairs for both
    #    schemes.
    print("Per-contribution variance (Theorem 2's quantity), 200 paired samples:")
    per_sample = contribution_variance(utility, N_CLIENTS, n_samples=200, seed=SEED)
    print(f"  MC-SV contribution variance: {per_sample['mc_variance']:.3e}")
    print(f"  CC-SV contribution variance: {per_sample['cc_variance']:.3e}")
    print(f"  MC-SV lower, as Theorem 2 predicts: {per_sample['mc_is_lower']}")
    print()

    # 2. The end-to-end estimator variance of Alg. 1 under both schemes
    #    (the quantity plotted in Fig. 10).
    print(f"Alg. 1 estimator variance with γ={GAMMA}, 15 repetitions each:")
    comparison = empirical_scheme_variance(
        utility, n_clients=N_CLIENTS, total_rounds=GAMMA, repetitions=15, seed=SEED
    )
    print(f"  mean MC-SV estimator variance: {comparison.mean_mc_variance:.3e}")
    print(f"  mean CC-SV estimator variance: {comparison.mean_cc_variance:.3e}")
    print()

    # 3. Closed-form Eq. 9 / Eq. 10 variances for an FL linear-regression
    #    federation with equal dataset sizes (σ² = 1).
    rounds = allocate_rounds(N_CLIENTS, GAMMA)
    sizes = [40] * N_CLIENTS
    print("Closed-form variances for FL linear regression (Eq. 9 / Eq. 10, σ²=1):")
    print(f"{'client':>6} {'|D_i|':>6} {'Var MC':>12} {'Var CC':>12}")
    for client in range(N_CLIENTS):
        var_mc = theoretical_variance_mc(sizes, client, rounds)
        var_cc = theoretical_variance_cc(sizes, client, rounds)
        print(f"{client:>6} {sizes[client]:>6} {var_mc:>12.3e} {var_cc:>12.3e}")
    print()
    print("All three views favour MC-SV, which is why the paper (and this library)")
    print("build the IPSS approximation on the MC-SV computation scheme.")


if __name__ == "__main__":
    main()
