"""Detecting low-quality and free-riding clients with data valuation.

A data marketplace with ten FL clients: most hold clean data, two hold data
with heavy label noise and one is a free rider with an empty dataset.  The
script estimates every client's value with IPSS under the paper's n=10 budget
(γ=32) and shows that

* the free rider's value is (near) zero — the no-free-riders axiom,
* the noisy clients rank at the bottom, and
* the valuation-based ranking agrees with the (hidden) quality ordering.

Run with::

    python examples/noisy_client_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IPSS, rank_correlation
from repro.datasets import (
    Dataset,
    flip_labels,
    make_mnist_like,
    partition_iid,
    train_test_split,
)
from repro.experiments.config import sampling_rounds_for
from repro.fl import CoalitionUtility, FLConfig
from repro.models import MLPClassifier

N_CLIENTS = 10
NOISY_CLIENTS = {7: 0.6, 8: 0.85}  # client id -> label-flip fraction
FREE_RIDER = 9
SEED = 23


def build_federation():
    pooled = make_mnist_like(n_samples=700, image_size=8, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.2, seed=SEED)
    clients = partition_iid(train, N_CLIENTS - 1, seed=SEED)  # last slot = free rider
    for client_id, noise in NOISY_CLIENTS.items():
        clients[client_id] = flip_labels(clients[client_id], noise, seed=SEED + client_id)
    clients.append(Dataset.empty_like(test, name="free-rider"))
    return clients, test


def main() -> None:
    clients, test = build_federation()
    utility = CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        # Small batches keep the per-round SGD step count high enough that
        # coalition models actually fit their data (see DESIGN.md).
        model_factory=lambda: MLPClassifier(
            n_features=test.n_features,
            n_classes=10,
            hidden_sizes=(16,),
            learning_rate=0.5,
            batch_size=10,
        ),
        config=FLConfig(rounds=4, local_epochs=2),
        seed=SEED,
    )

    gamma = sampling_rounds_for(N_CLIENTS)
    result = IPSS(total_rounds=gamma, seed=SEED).run(utility)
    values = result.values

    print(f"IPSS with γ={gamma} used {result.utility_evaluations} FL trainings "
          f"(exact valuation would need {2 ** N_CLIENTS}).")
    print()
    print(f"{'client':>6} {'kind':<12} {'estimated value':>16}")
    for client_id in result.ranking():
        if client_id == FREE_RIDER:
            kind = "free rider"
        elif client_id in NOISY_CLIENTS:
            kind = f"noisy ({NOISY_CLIENTS[client_id]:.0%})"
        else:
            kind = "clean"
        print(f"{client_id:>6} {kind:<12} {values[client_id]:>16.4f}")

    # Hidden ground-truth quality score: clean=1, noisy=1-noise, free rider=0.
    quality = np.ones(N_CLIENTS)
    for client_id, noise in NOISY_CLIENTS.items():
        quality[client_id] = 1.0 - noise
    quality[FREE_RIDER] = 0.0
    correlation = rank_correlation(values, quality)

    print()
    print(f"Free-rider estimated value:      {values[FREE_RIDER]:+.4f}")
    print(f"Mean clean-client value:         {np.mean([values[i] for i in range(N_CLIENTS) if i not in NOISY_CLIENTS and i != FREE_RIDER]):+.4f}")
    print(f"Rank correlation with quality:   {correlation:.3f}")


if __name__ == "__main__":
    main()
