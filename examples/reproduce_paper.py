"""Command-line driver that regenerates any table or figure from the paper.

Examples
--------
Regenerate Table IV (FEMNIST-style, MLP + CNN) at the default scale::

    python examples/reproduce_paper.py table4

Regenerate Fig. 7 quickly::

    python examples/reproduce_paper.py figure7 --scale tiny

Run everything (takes a while at the default scale)::

    python examples/reproduce_paper.py all --scale tiny
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ExperimentScale, figures, tables
from repro.experiments.reporting import format_series, format_table

EXPERIMENTS = (
    "figure1b",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "table4",
    "table5",
)


def run_experiment(name: str, scale: ExperimentScale) -> str:
    """Run one experiment and return its text rendering."""
    if name == "table4":
        rows = tables.table4(scale=scale)
        return tables.render_table(rows, "Table IV — FEMNIST-style, MLP & CNN")
    if name == "table5":
        rows = tables.table5(scale=scale)
        return tables.render_table(rows, "Table V — Adult-style, MLP & XGBoost")
    if name == "figure1b":
        rows = figures.figure1b(scale=scale)
        return format_table(rows, title="Fig. 1(b) — time vs error, 10 clients")
    if name == "figure4":
        report = figures.figure4(scale=scale)
        return format_series(
            report["k"],
            {"relative_error": report["relative_error"], "evaluations": report["evaluations"]},
            x_label="K",
            title="Fig. 4 — K-Greedy error vs K",
        )
    if name == "figure6":
        rows = figures.figure6(scale=scale)
        return format_table(rows, title="Fig. 6 — synthetic setups (a)-(e)")
    if name == "figure7":
        report = figures.figure7(scale=scale)
        return format_series(
            report["gamma"], report["series"], x_label="gamma",
            title="Fig. 7 — error vs sampling rounds",
        )
    if name == "figure8":
        rows = figures.figure8(scale=scale)
        return format_table(rows, title="Fig. 8 — Pareto points (time vs error)")
    if name == "figure9":
        rows = figures.figure9(scale=scale)
        return format_table(rows, title="Fig. 9 — scalability, 20-100 clients")
    if name == "figure10":
        rows = figures.figure10(scale=scale)
        return format_table(rows, title="Fig. 10 — MC-SV vs CC-SV variance")
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "paper"),
        help="experiment scale (tiny = seconds, small = default, paper = closest to the paper)",
    )
    args = parser.parse_args(argv)
    scale = ExperimentScale.from_name(args.scale)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(f"\n=== {name} (scale: {scale.name}) ===")
        print(run_experiment(name, scale))
    return 0


if __name__ == "__main__":
    sys.exit(main())
