"""Cross-silo scenario from the paper's introduction: three hospitals.

Three hospitals with datasets of different size and quality train a joint
diagnosis model with federated learning and want their contributions valued
fairly before agreeing to share (Fig. 1a of the paper).  The script

1. builds three heterogeneous clients (large clean, medium clean, small noisy),
2. computes exact Shapley values and the IPSS approximation,
3. compares against a naive size-proportional allocation, and
4. turns the values into a payment split of a fixed collaboration budget.

Run with::

    python examples/hospital_collaboration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IPSS, MCShapley, relative_error_l2
from repro.datasets import (
    flip_labels,
    make_classification_blobs,
    partition_different_sizes,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig
from repro.models import MLPClassifier

HOSPITALS = ("General Hospital", "City Clinic", "Rural Practice")
COLLABORATION_BUDGET = 300_000  # currency units to split between hospitals
SEED = 11


def build_federation():
    """Three clients with data ratios 3:2:1; the smallest has 25% label noise."""
    pooled = make_classification_blobs(
        n_samples=360,
        n_features=12,
        n_classes=4,
        cluster_std=2.5,
        class_separation=2.0,
        seed=SEED,
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    clients = partition_different_sizes(train, 3, ratios=[3, 2, 1], seed=SEED)
    clients[2] = flip_labels(clients[2], 0.45, seed=SEED)  # noisy rural data
    return clients, test


def main() -> None:
    clients, test = build_federation()
    utility = CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=lambda: MLPClassifier(
            n_features=12, n_classes=4, hidden_sizes=(16,), epochs=2
        ),
        config=FLConfig(rounds=3, local_epochs=1),
        seed=SEED,
    )

    print("Hospital data holdings:")
    for name, dataset in zip(HOSPITALS, clients):
        print(f"  {name:<18} {len(dataset):4d} records")
    print(f"Joint model accuracy U(N) = {utility(frozenset({0, 1, 2})):.3f}")
    print(f"Baseline accuracy  U(∅)  = {utility(frozenset()):.3f}")
    print()

    exact = MCShapley().run(utility)
    utility.reset_cache()
    approx = IPSS(total_rounds=5, seed=SEED).run(utility)
    error = relative_error_l2(approx.values, exact.values)

    size_share = np.array([len(d) for d in clients], dtype=float)
    size_share /= size_share.sum()
    shapley_share = exact.normalized()
    ipss_share = approx.normalized()

    print(f"{'Hospital':<18} {'size share':>11} {'Shapley share':>14} {'IPSS share':>11}")
    for index, name in enumerate(HOSPITALS):
        print(
            f"{name:<18} {size_share[index]:>10.1%} "
            f"{shapley_share[index]:>13.1%} {ipss_share[index]:>10.1%}"
        )
    print()
    print(f"IPSS used {approx.utility_evaluations} FL trainings "
          f"vs {exact.utility_evaluations} for the exact value "
          f"(relative error {error:.3f}).")
    print()
    print("Payment split of the collaboration budget (IPSS shares):")
    for name, share in zip(HOSPITALS, ipss_share):
        print(f"  {name:<18} {share * COLLABORATION_BUDGET:>12,.0f}")
    print()
    print("Note how the noisy Rural Practice receives less than its size share —")
    print("data *quality*, not just volume, drives Shapley-based valuation.")


if __name__ == "__main__":
    main()
