"""Quickstart: value four FL clients' datasets with IPSS in under a minute.

The script builds a small synthetic classification federation, computes the
exact Shapley values (feasible for four clients), runs the paper's IPSS
approximation under a tight sampling budget, and compares the two.

Parallelism: ``CoalitionUtility`` accepts ``n_workers`` (and an ``executor``
backend — ``"serial"``, ``"thread"`` or ``"process"``).  Algorithms hand their
whole coalition plan to the oracle in one batch, so with ``n_workers > 1`` the
per-coalition FL trainings run concurrently while the estimated values stay
bitwise-identical to serial execution (per-coalition training seeds are
derived from the coalition itself, independent of evaluation order or worker
assignment).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IPSS, MCShapley, relative_error_l2
from repro.datasets import (
    make_classification_blobs,
    partition_different_sizes,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig
from repro.models import LogisticRegressionModel

N_CLIENTS = 4
SEED = 7


def main() -> None:
    # 1. Build a pooled dataset and split it across the FL clients with
    #    increasingly large shares (1:2:3:4), so the clients genuinely differ.
    pooled = make_classification_blobs(
        n_samples=400,
        n_features=10,
        n_classes=3,
        cluster_std=2.5,
        class_separation=2.0,
        seed=SEED,
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    client_datasets = partition_different_sizes(train, N_CLIENTS, seed=SEED)

    # 2. Wrap everything in a coalition-utility oracle: U(S) is the test
    #    accuracy of a model trained federatedly on the clients in S.
    #    n_workers=2 trains the coalitions of each batch concurrently
    #    (values are identical to n_workers=1, just faster on real tasks).
    utility = CoalitionUtility(
        client_datasets=client_datasets,
        test_dataset=test,
        model_factory=lambda: LogisticRegressionModel(
            n_features=10, n_classes=3, epochs=5
        ),
        config=FLConfig(rounds=3, local_epochs=1),
        seed=SEED,
        n_workers=2,
    )

    # 3. Exact Shapley values (2^4 = 16 FL trainings).
    exact = MCShapley().run(utility)
    print("Exact MC-SV values:      ", np.round(exact.values, 4))
    print("  FL trainings used:     ", exact.utility_evaluations)

    # 4. IPSS under a budget of 10 coalition evaluations.
    utility.reset_cache()
    ipss = IPSS(total_rounds=10, seed=SEED).run(utility)
    print("IPSS estimated values:   ", np.round(ipss.values, 4))
    print("  FL trainings used:     ", ipss.utility_evaluations)
    print("  k* (fully enumerated): ", ipss.metadata["k_star"])

    # 5. Compare.
    error = relative_error_l2(ipss.values, exact.values)
    print(f"Relative l2 error:        {error:.4f}")
    print("Client ranking (exact):  ", exact.ranking().tolist())
    print("Client ranking (IPSS):   ", ipss.ranking().tolist())


if __name__ == "__main__":
    main()
