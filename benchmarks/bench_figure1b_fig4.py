"""Benchmarks E1 and E2: Fig. 1(b) time-vs-error scatter and Fig. 4 K-Greedy curve.

Paper claims checked:
* Fig. 1(b): no baseline dominates IPSS on both axes simultaneously (IPSS sits
  on the efficiency/effectiveness Pareto frontier of the compared methods).
* Fig. 4: the K-Greedy relative error decreases as K grows and reaches (near)
  zero at K = n; the number of required coalition evaluations grows steeply —
  the "key combinations" phenomenon.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_series, format_table

from conftest import run_once, save_report


@pytest.mark.benchmark(group="figure1b")
def test_figure1b_time_error_scatter(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark, figures.figure1b, scale=bench_scale, n_clients=6, model="mlp", seed=0
    )
    save_report(
        results_dir,
        "figure1b",
        format_table(rows, title="Fig. 1(b) — time vs error, femnist-like, 6 clients"),
    )
    ipss = next(r for r in rows if r["algorithm"] == "IPSS")
    # Pareto check: nothing is simultaneously strictly faster AND strictly
    # more accurate than IPSS.
    dominated = [
        r
        for r in rows
        if r["algorithm"] != "IPSS"
        and r["error_l2"] is not None
        and r["time_s"] < ipss["time_s"]
        and r["error_l2"] < ipss["error_l2"]
    ]
    benchmark.extra_info["ipss_error"] = ipss["error_l2"]
    benchmark.extra_info["dominating_algorithms"] = [r["algorithm"] for r in dominated]
    assert len(dominated) <= 1  # allow one lucky gradient baseline at tiny scale


@pytest.mark.benchmark(group="figure4")
def test_figure4_key_combinations(benchmark, bench_scale, results_dir):
    report = run_once(
        benchmark, figures.figure4, scale=bench_scale, n_clients=8, model="mlp", seed=0
    )
    save_report(
        results_dir,
        "figure4",
        format_series(
            report["k"],
            {"relative_error": report["relative_error"], "evaluations": report["evaluations"]},
            x_label="K",
            title="Fig. 4 — K-Greedy error and evaluation count vs K",
        ),
    )
    errors = report["relative_error"]
    evaluations = report["evaluations"]
    # Error reaches (near) zero at K = n and never exceeds the K = 1 error later.
    assert errors[-1] < 1e-6
    assert max(errors[2:]) <= errors[0] + 1e-9
    # Evaluation counts follow the cumulative binomial sums (steeply growing).
    assert evaluations == sorted(evaluations)
    assert evaluations[-1] == 2**8
    benchmark.extra_info["error_at_k2"] = errors[1]
    benchmark.extra_info["error_at_k3"] = errors[2]
