"""Benchmark E11: numerical checks of the paper's theory (Thm. 2, Lemma 1, Thm. 3).

* Lemma 1: the expected data value under the Donahue–Kleinberg linear-regression
  model matches the exact MC-SV computed on the closed-form utility table.
* Theorem 3: the empirical truncation error of the k*-limited estimator stays
  below the analytical bound for a sweep of (n, k*).
* Theorem 2: the closed-form MC-SV variance (Eq. 9) is below the CC-SV
  variance (Eq. 10) for a sweep of dataset-size profiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KGreedy, MCShapley, theory
from repro.core.variance import theoretical_variance_cc, theoretical_variance_mc
from repro.experiments.reporting import format_table
from repro.fl import TabularUtility

from conftest import run_once, save_report


def _lemma1_check():
    rows = []
    for n, t in ((4, 60), (6, 50), (8, 40)):
        table = theory.linear_utility_table(n, t, n_features=5, noise_mean=1.0, initial_mse=10.0)
        oracle = TabularUtility(n, table)
        exact = MCShapley().run(oracle, n).values
        predicted = theory.lemma1_expected_value(n, t, 5, 1.0, 10.0)
        rows.append(
            {
                "n": n,
                "t": t,
                "exact_mean_value": float(exact.mean()),
                "lemma1_prediction": predicted,
                "abs_gap": float(abs(exact.mean() - predicted)),
            }
        )
    return rows


def _theorem3_check():
    rows = []
    n, t, x = 8, 50, 5
    table = theory.linear_utility_table(n, t, x, noise_mean=1.0, initial_mse=10.0)
    oracle = TabularUtility(n, table)
    exact = MCShapley().run(oracle, n).values
    for k_star in (1, 2, 3, 4):
        estimate = KGreedy(max_size=k_star).run(oracle, n).values
        empirical = float(abs(estimate.mean() - exact.mean()) / abs(exact.mean()))
        bound = theory.theorem3_relative_error_bound(n, k_star, t, x)
        rows.append(
            {
                "k_star": k_star,
                "empirical_relative_error": empirical,
                "theorem3_bound": bound,
                "within_bound": empirical <= bound + 0.05,
            }
        )
    return rows


def _theorem2_check():
    rows = []
    rounds = [2] * 6
    for profile_name, sizes in (
        ("equal", [50] * 6),
        ("skewed", [10, 20, 40, 80, 160, 320]),
        ("one-large", [500, 20, 20, 20, 20, 20]),
    ):
        mc = np.mean([theoretical_variance_mc(sizes, i, rounds) for i in range(6)])
        cc = np.mean([theoretical_variance_cc(sizes, i, rounds) for i in range(6)])
        rows.append(
            {
                "profile": profile_name,
                "mc_variance": float(mc),
                "cc_variance": float(cc),
                "mc_is_lower": bool(mc < cc),
            }
        )
    return rows


@pytest.mark.benchmark(group="theory")
def test_lemma1_expected_value(benchmark, results_dir):
    rows = run_once(benchmark, _lemma1_check)
    save_report(results_dir, "theory_lemma1", format_table(rows, title="Lemma 1 check"))
    for row in rows:
        assert row["abs_gap"] < 0.05 * abs(row["lemma1_prediction"]) + 1e-6


@pytest.mark.benchmark(group="theory")
def test_theorem3_error_bound(benchmark, results_dir):
    rows = run_once(benchmark, _theorem3_check)
    save_report(results_dir, "theory_theorem3", format_table(rows, title="Theorem 3 check"))
    assert all(row["within_bound"] for row in rows)
    # The bound (and the empirical error) shrink as k* grows.
    bounds = [row["theorem3_bound"] for row in rows]
    assert bounds == sorted(bounds, reverse=True)


@pytest.mark.benchmark(group="theory")
def test_theorem2_variance_comparison(benchmark, results_dir):
    rows = run_once(benchmark, _theorem2_check)
    save_report(results_dir, "theory_theorem2", format_table(rows, title="Theorem 2 check"))
    assert all(row["mc_is_lower"] for row in rows)
