"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md section 4) at a reduced scale, records the headline numbers in
``benchmark.extra_info`` and writes the full text rendering to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote it.

The benchmarks are experiment regenerations, not micro-benchmarks, so each is
run exactly once (``pedantic`` with one round).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentScale
from repro.fl import TabularUtility

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--peak-rss",
        action="store_true",
        default=False,
        help="capture OS-level peak RSS (ru_maxrss) alongside tracemalloc "
        "peaks in benchmarks that measure memory",
    )


@pytest.fixture(scope="session")
def peak_rss(request) -> bool:
    """Whether ``--peak-rss`` capture was requested for this run."""
    return bool(request.config.getoption("--peak-rss"))


def monotone_game(n_clients: int, seed: int = 0, concavity: float = 0.6) -> TabularUtility:
    """A saturating utility game standing in for an FL accuracy oracle.

    Mirrors ``tests.helpers.monotone_game``; duplicated here so the benchmark
    suite stays importable when only ``benchmarks/`` is collected.
    """
    generator = np.random.default_rng(seed)
    weights = generator.uniform(0.2, 1.0, size=n_clients)
    total = weights.sum() ** concavity

    def function(coalition: frozenset) -> float:
        if not coalition:
            return 0.1
        mass = sum(weights[i] for i in coalition) ** concavity
        return 0.1 + 0.85 * mass / total

    return TabularUtility.from_function(n_clients, function)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale used across the benchmark suite.

    ``small`` keeps each coalition training around 10-20 ms so even the exact
    MC-Shapley ground truth for ten clients (2^10 trainings) finishes in tens
    of seconds; the scalability benchmarks (Fig. 9/10) override this with the
    ``tiny`` scale because they involve up to 50 clients.
    """
    return ExperimentScale.small()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered report next to the benchmark results."""
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
