"""Benchmark E14: scenario-robustness campaign, cold vs warm.

Runs the robustness harness over a slice of the built-in scenario catalog —
each scenario next to its clean counterpart, exact MC-Shapley plus IPSS —
twice against one persistent store, and checks the claims the scenario
engine makes:

* exact Shapley ranks injected free riders and fully-flipped label poisoners
  **strictly last** (precision@k = 1.0), and
* the warm rerun of the whole campaign performs **zero** FL trainings.

The saved report is the robustness summary table for EXPERIMENTS.md.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.experiments.tables import robustness_table
from repro.scenarios import run_robustness

from conftest import run_once, save_report

SCENARIOS = ("free-rider", "label-flippers", "duplicators", "stragglers")
ALGORITHMS = ("MC-Shapley", "IPSS")
SEED = 0


def _run_cold_then_warm():
    with tempfile.TemporaryDirectory() as tmp:
        store = str(Path(tmp) / "store.sqlite")
        cold = run_robustness(
            SCENARIOS,
            run_dir=str(Path(tmp) / "cold"),
            algorithms=ALGORITHMS,
            scale="tiny",
            seed=SEED,
            store=store,
        )
        warm = run_robustness(
            SCENARIOS,
            run_dir=str(Path(tmp) / "warm"),
            algorithms=ALGORITHMS,
            scale="tiny",
            seed=SEED,
            store=store,
        )
    return cold, warm


@pytest.mark.benchmark(group="scenarios")
def test_scenario_robustness_campaign(benchmark, results_dir):
    cold, warm = run_once(benchmark, _run_cold_then_warm)
    save_report(
        results_dir,
        "scenario_robustness",
        robustness_table(
            cold.rows,
            title=f"Scenario robustness — {len(SCENARIOS)} scenarios × "
            f"{len(ALGORITHMS)} algorithms (tiny scale)",
        ),
    )
    benchmark.extra_info["cold_trainings"] = cold.fl_trainings
    benchmark.extra_info["warm_trainings"] = warm.fl_trainings
    benchmark.extra_info["warm_store_hits"] = warm.store_hits

    # Acceptance: exact Shapley puts free riders / heavy flippers strictly last.
    for scenario in ("free-rider", "label-flippers"):
        row = cold.row(scenario, "MC-Shapley")
        assert row["strictly_last"], row
        assert row["precision_at_k"] == 1.0, row
    # Acceptance: the warm campaign never trains a coalition.
    assert cold.fl_trainings > 0
    assert warm.fl_trainings == 0
    for cold_row, warm_row in zip(cold.rows, warm.rows):
        assert cold_row["values"] == warm_row["values"], "store changed values"
