"""Benchmark E3: Fig. 6 — the five synthetic setups (size / distribution / noise).

Paper claims checked:
* every algorithm produces an estimate in every setup (time and error columns
  are populated), and
* IPSS is never the *worst* approximation in any setup (the paper reports it
  as consistently the best; at the reduced scale we assert the weaker,
  noise-robust version of the same ordering claim).
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.experiments.tasks import SYNTHETIC_SETUPS

from conftest import run_once, save_report


@pytest.mark.benchmark(group="figure6")
def test_figure6_synthetic_setups(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark,
        figures.figure6,
        scale=bench_scale,
        setups=SYNTHETIC_SETUPS,
        models=("mlp",),
        n_clients=6,
        seed=0,
    )
    save_report(
        results_dir,
        "figure6",
        format_table(rows, title="Fig. 6 — synthetic setups (a)-(e), MLP, 6 clients"),
    )

    for setup in SYNTHETIC_SETUPS:
        setup_rows = [
            r for r in rows if r["setup"] == setup and r["error_l2"] is not None
        ]
        assert setup_rows, f"no approximation rows for {setup}"
        errors = {r["algorithm"]: r["error_l2"] for r in setup_rows}
        worst = max(errors, key=errors.get)
        assert worst != "IPSS", f"IPSS is the worst approximation in {setup}"
    benchmark.extra_info["setups"] = list(SYNTHETIC_SETUPS)
