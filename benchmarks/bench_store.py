"""Benchmark E13: cold-vs-warm campaigns through the persistent utility store.

Per-coalition FL training (the paper's τ) dominates every campaign, and the
:mod:`repro.store` tier is supposed to eliminate it entirely on reruns.  This
benchmark runs the same single-task plan twice — a cold run into an empty
SQLite store, then a warm run against the populated one — with a modeled τ
per coalition, and checks the claims that matter:

* the warm run performs **zero** FL trainings (all utilities served from the
  store), and
* the warm-run values are bitwise-identical to the cold run's.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import IPSS, MCShapley
from repro.experiments.reporting import format_table
from repro.parallel import BatchUtilityOracle
from repro.store import SqliteUtilityStore

from conftest import monotone_game, run_once, save_report
from harness import BenchResult, save_bench_json

N_CLIENTS = 8
SEED = 7
#: modeled per-coalition training cost τ (seconds)
TAU = 0.005


class ModeledCostGame:
    """Synthetic utility with an explicit per-coalition cost τ (picklable)."""

    def __init__(self, n_clients: int, tau: float, seed: int) -> None:
        self.n_clients = n_clients
        self.tau = tau
        self._game = monotone_game(n_clients, seed=seed)

    def __call__(self, coalition) -> float:
        time.sleep(self.tau)
        return self._game(coalition)


def _campaign(store_path: str):
    """One run of the MC-Shapley + IPSS line-up against the given store."""
    algorithms = [MCShapley(seed=SEED), IPSS(total_rounds=24, seed=SEED)]
    rows = []
    all_values = {}
    with SqliteUtilityStore(store_path) as store:
        oracle = BatchUtilityOracle(
            ModeledCostGame(N_CLIENTS, TAU, SEED),
            n_clients=N_CLIENTS,
            store=store,
            store_namespace="bench-store",
        )
        for algorithm in algorithms:
            oracle.reset_cache()
            start = time.perf_counter()
            result = algorithm.run(oracle, N_CLIENTS)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "algorithm": result.algorithm,
                    "time_s": elapsed,
                    "trainings": result.utility_evaluations,
                    "store_hits": oracle.store_hits,
                }
            )
            all_values[result.algorithm] = result.values
    return rows, all_values


def _run_cold_then_warm():
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "store.sqlite")
        cold_rows, cold_values = _campaign(store_path)
        warm_rows, warm_values = _campaign(store_path)
    rows = [{"run": "cold", **row} for row in cold_rows]
    rows += [{"run": "warm", **row} for row in warm_rows]
    for name, values in cold_values.items():
        assert np.array_equal(values, warm_values[name]), "store changed values"
    return rows


@pytest.mark.benchmark(group="store")
def test_store_rerun_is_training_free(benchmark, results_dir):
    rows = run_once(benchmark, _run_cold_then_warm)
    save_report(
        results_dir,
        "store_rerun",
        format_table(
            rows,
            columns=["run", "algorithm", "time_s", "trainings", "store_hits"],
            title=f"Persistent-store rerun — {N_CLIENTS} clients, modeled τ = {TAU}s",
        ),
    )
    save_bench_json(
        results_dir,
        "store_rerun",
        [
            BenchResult(
                name=f"{row['run']}-{row['algorithm']}",
                config={
                    "run": row["run"],
                    "algorithm": row["algorithm"],
                    "n_clients": N_CLIENTS,
                    "tau": TAU,
                },
                wall_time_s=row["time_s"],
                baseline=f"cold-{row['algorithm']}" if row["run"] == "warm" else None,
                metrics={
                    "trainings": row["trainings"],
                    "store_hits": row["store_hits"],
                },
            )
            for row in rows
        ],
    )
    cold_trainings = sum(r["trainings"] for r in rows if r["run"] == "cold")
    warm_trainings = sum(r["trainings"] for r in rows if r["run"] == "warm")
    benchmark.extra_info["cold_trainings"] = cold_trainings
    benchmark.extra_info["warm_trainings"] = warm_trainings
    # Acceptance: the warm campaign never trains a coalition.
    assert cold_trainings > 0
    assert warm_trainings == 0
