"""Shared machine-readable benchmark results (the BENCH format).

Every benchmark in this suite renders a human-readable table into
``benchmarks/results/<name>.txt`` (see :func:`conftest.save_report`); this
module adds the machine-readable counterpart so the performance trajectory
can be tracked across PRs: ``benchmarks/results/<name>.json`` files in a
stable schema.

BENCH format (version 1)::

    {
      "bench_format": 1,
      "name": "<benchmark name>",
      "created_at": <unix timestamp>,
      "results": [
        {
          "name": "<row name>",
          "config": {...},          # what was measured (task, backend, ...)
          "wall_time_s": <float>,
          "speedup": <float|null>,  # vs the named baseline row, if any
          "baseline": "<row name|null>",
          "metrics": {...}          # free-form extras (evaluations, ...)
        },
        ...
      ]
    }

Rows are :class:`BenchResult` instances; :func:`save_bench_json` writes the
file atomically so an interrupted benchmark run never leaves a truncated
JSON behind.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

try:
    import resource
except ImportError:  # non-POSIX platforms: RSS capture degrades to None
    resource = None  # type: ignore[assignment]

BENCH_FORMAT_VERSION = 1


@dataclass
class BenchResult:
    """One measured configuration of a benchmark."""

    name: str
    config: dict
    wall_time_s: float
    speedup: Optional[float] = None
    baseline: Optional[str] = None
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["wall_time_s"] = float(self.wall_time_s)
        if self.speedup is not None:
            payload["speedup"] = float(self.speedup)
        return payload


@dataclass
class PeakMemory:
    """Peak memory of one measured call (see :func:`measure_peak_memory`)."""

    #: tracemalloc high-water mark of Python allocations during the call —
    #: per-call, so it is the right series for scaling curves
    traced_bytes: int
    #: ``ru_maxrss`` after the call, in bytes (``None`` off-POSIX).  A
    #: process-lifetime high-water mark: monotone across calls, so within a
    #: sweep it only bounds, never isolates, a single configuration
    rss_bytes: Optional[int]


def measure_peak_memory(function, *args, **kwargs):
    """Run ``function`` and capture its peak memory → ``(result, PeakMemory)``.

    Used by the ``--peak-rss`` benchmark option: ``traced_bytes`` is the
    tracemalloc peak attributable to the call itself, ``rss_bytes`` the
    OS-level resident high-water mark of the whole process.
    """
    tracemalloc.start()
    try:
        result = function(*args, **kwargs)
        _, traced = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    rss_bytes = None
    if resource is not None:
        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rss_bytes = int(rss_kib) * 1024
    return result, PeakMemory(traced_bytes=int(traced), rss_bytes=rss_bytes)


def save_bench_json(
    results_dir: Path, name: str, results: Sequence[BenchResult]
) -> Path:
    """Write ``<results_dir>/<name>.json`` in BENCH format, atomically."""
    path = Path(results_dir) / f"{name}.json"
    payload = {
        "bench_format": BENCH_FORMAT_VERSION,
        "name": name,
        "created_at": time.time(),
        "results": [result.to_dict() for result in results],
    }
    tmp_path = str(path) + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def load_bench_json(path) -> list[BenchResult]:
    """Read a BENCH-format file back into :class:`BenchResult` rows."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("bench_format") != BENCH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bench_format in {path}: {payload.get('bench_format')!r}"
        )
    return [BenchResult(**row) for row in payload["results"]]
