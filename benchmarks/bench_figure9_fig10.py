"""Benchmarks E8 and E9: Fig. 9 (scalability) and Fig. 10 (MC vs CC variance).

Paper claims checked:
* Fig. 9: with γ = n·log n, IPSS scales to tens of clients — its running time
  grows far slower than the 2^n exact cost — and its fairness-proxy error
  (no-free-riders + symmetric-fairness violations) stays among the smallest.
* Fig. 10: the MC-SV scheme has lower per-contribution variance than the
  CC-SV scheme (Theorem 2), on the same FL task and the same sampled pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_table

from conftest import run_once, save_report


@pytest.mark.benchmark(group="figure9")
def test_figure9_scalability(benchmark, results_dir):
    from repro.experiments import ExperimentScale

    rows = run_once(
        benchmark,
        figures.figure9,
        # Tiny scale and 20 clients keep this under a minute on CPU; the
        # figure9() harness itself supports the paper's 20-100 client sweep
        # (run it via examples/reproduce_paper.py figure9 --scale tiny).
        scale=ExperimentScale.tiny(),
        client_counts=(20,),
        model="logistic",
        seed=0,
    )
    save_report(
        results_dir,
        "figure9",
        format_table(rows, title="Fig. 9 — scalability with null/duplicate clients"),
    )
    ipss_rows = [r for r in rows if r["algorithm"] == "IPSS"]
    assert {r["n"] for r in ipss_rows} == {20}
    for row in ipss_rows:
        assert row["evaluations"] <= row["gamma"]
        assert np.isfinite(row["fairness_error"])
    # IPSS fairness error is not the worst at the largest client count.
    largest = [r for r in rows if r["n"] == max(r["n"] for r in rows)]
    worst = max(largest, key=lambda r: r["fairness_error"])
    assert worst["algorithm"] != "IPSS"
    benchmark.extra_info["ipss_fairness_errors"] = [
        float(r["fairness_error"]) for r in ipss_rows
    ]


@pytest.mark.benchmark(group="figure10")
def test_figure10_scheme_variance(benchmark, results_dir):
    from repro.experiments import ExperimentScale

    rows = run_once(
        benchmark,
        figures.figure10,
        scale=ExperimentScale.tiny(),
        client_counts=(4, 6),
        gammas=(8, 16),
        repetitions=8,
        contribution_samples=150,
        seed=0,
    )
    save_report(
        results_dir,
        "figure10",
        format_table(rows, title="Fig. 10 — MC-SV vs CC-SV variance, femnist-like / MLP"),
    )
    # Theorem 2's quantity: per-contribution variance favours MC-SV for every n.
    for n in (4, 6):
        n_rows = [r for r in rows if r["n"] == n]
        assert n_rows[0]["mc_contribution_variance"] <= n_rows[0]["cc_contribution_variance"]
    benchmark.extra_info["rows"] = [
        {k: (float(v) if isinstance(v, (int, float)) else v) for k, v in r.items()}
        for r in rows
    ]
